"""Tests for the neural substrate: autograd, modules, training, decoding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import (
    AdamW,
    Seq2SeqConfig,
    Seq2SeqModel,
    Seq2SeqTrainer,
    TrainerConfig,
    Tensor,
    Vocabulary,
    WordTokenizer,
    beam_search,
    diverse_beam_search,
    greedy_decode,
    pad_batch,
)
from repro.nn.modules import Embedding, Linear
from repro.nn.optim import LinearSchedule, clip_gradients
from repro.nn.tokenizer import build_vocabulary
from repro.utils.rng import SeededRng


def numeric_gradient(function, array, epsilon=1e-6):
    """Central-difference gradient of a scalar function of a numpy array."""
    gradient = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = gradient.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = function()
        flat[index] = original - epsilon
        minus = function()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * epsilon)
    return gradient


class TestAutograd:
    def test_add_mul_broadcast_gradients(self):
        a = Tensor(np.random.default_rng(0).normal(size=(3, 4)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(4,)), requires_grad=True)
        loss = ((a + b) * a).sum()
        loss.backward()
        numeric = numeric_gradient(lambda: float(((a.data + b.data) * a.data).sum()), a.data)
        assert np.allclose(a.grad, numeric, atol=1e-5)
        numeric_b = numeric_gradient(lambda: float(((a.data + b.data) * a.data).sum()), b.data)
        assert np.allclose(b.grad, numeric_b, atol=1e-5)

    def test_matmul_gradient(self):
        a = Tensor(np.random.default_rng(2).normal(size=(2, 3)), requires_grad=True)
        b = Tensor(np.random.default_rng(3).normal(size=(3, 4)), requires_grad=True)
        (a @ b).sum().backward()
        numeric = numeric_gradient(lambda: float((a.data @ b.data).sum()), a.data)
        assert np.allclose(a.grad, numeric, atol=1e-5)

    def test_bmm_gradient(self):
        a = Tensor(np.random.default_rng(4).normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(np.random.default_rng(5).normal(size=(2, 4, 5)), requires_grad=True)
        a.bmm(b).sum().backward()
        numeric = numeric_gradient(lambda: float(np.matmul(a.data, b.data).sum()), b.data)
        assert np.allclose(b.grad, numeric, atol=1e-5)

    def test_tanh_sigmoid_softmax_gradients(self):
        x = Tensor(np.random.default_rng(6).normal(size=(4, 5)), requires_grad=True)
        loss = (x.tanh() * x.sigmoid() + x.softmax(axis=-1)).sum()
        loss.backward()

        def forward():
            data = x.data
            soft = np.exp(data - data.max(axis=-1, keepdims=True))
            soft = soft / soft.sum(axis=-1, keepdims=True)
            return float((np.tanh(data) * (1 / (1 + np.exp(-data))) + soft).sum())

        numeric = numeric_gradient(forward, x.data)
        assert np.allclose(x.grad, numeric, atol=1e-5)

    def test_embedding_lookup_gradient(self):
        table = Tensor(np.random.default_rng(7).normal(size=(6, 3)), requires_grad=True)
        indices = np.array([[0, 2], [2, 5]])
        table.embedding_lookup(indices).sum().backward()
        expected = np.zeros((6, 3))
        for index in indices.reshape(-1):
            expected[index] += 1.0
        assert np.allclose(table.grad, expected)

    def test_cross_entropy_gradient_and_masking(self):
        logits = Tensor(np.random.default_rng(8).normal(size=(3, 4)), requires_grad=True)
        targets = np.array([0, 1, 2])
        mask = np.array([1.0, 1.0, 0.0])
        loss = logits.cross_entropy(targets, mask)
        loss.backward()
        # Masked row contributes no gradient.
        assert np.allclose(logits.grad[2], 0.0)
        numeric = numeric_gradient(
            lambda: _reference_ce(logits.data, targets, mask), logits.data)
        assert np.allclose(logits.grad, numeric, atol=1e-5)

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (x + 1).backward()

    def test_concat_gradient(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        Tensor.concat([a, b], axis=-1).sum().backward()
        assert a.grad.shape == (2, 2) and b.grad.shape == (2, 3)

    @given(st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_mean_over_axis_matches_numpy(self, rows, cols):
        data = np.arange(rows * cols, dtype=float).reshape(rows, cols)
        assert np.allclose(Tensor(data).mean_over_axis(1).data, data.mean(axis=1))


def _reference_ce(logits, targets, mask):
    shifted = logits - logits.max(axis=1, keepdims=True)
    probabilities = np.exp(shifted) / np.exp(shifted).sum(axis=1, keepdims=True)
    picked = probabilities[np.arange(len(targets)), targets]
    return float((-np.log(picked) * mask).sum() / mask.sum())


class TestModulesAndOptim:
    def test_linear_shapes(self):
        rng = SeededRng(0)
        layer = Linear(4, 3, rng)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)
        out3 = layer(Tensor(np.ones((2, 5, 4))))
        assert out3.shape == (2, 5, 3)

    def test_embedding_shapes(self):
        layer = Embedding(10, 6, SeededRng(0))
        assert layer(np.array([[1, 2, 3]])).shape == (1, 3, 6)

    def test_state_dict_roundtrip(self):
        model = Seq2SeqModel(Seq2SeqConfig(10, 10, embedding_dim=4, hidden_dim=6))
        state = model.state_dict()
        other = Seq2SeqModel(Seq2SeqConfig(10, 10, embedding_dim=4, hidden_dim=6, seed=99))
        other.load_state_dict(state)
        for name, parameter in other.named_parameters():
            assert np.allclose(parameter.data, state[name])

    def test_state_dict_shape_mismatch(self):
        model = Seq2SeqModel(Seq2SeqConfig(10, 10, embedding_dim=4, hidden_dim=6))
        other = Seq2SeqModel(Seq2SeqConfig(10, 10, embedding_dim=4, hidden_dim=8))
        with pytest.raises(ValueError):
            other.load_state_dict(model.state_dict())

    def test_adamw_reduces_quadratic(self):
        from repro.nn.modules import Parameter

        parameter = Parameter(np.array([5.0, -3.0]))
        optimizer = AdamW([parameter], learning_rate=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            parameter.grad = 2 * parameter.data
            optimizer.step()
        assert np.abs(parameter.data).max() < 0.5

    def test_linear_schedule_decays(self):
        schedule = LinearSchedule(1.0, 100)
        assert schedule.learning_rate(0) == pytest.approx(1.0)
        assert schedule.learning_rate(50) == pytest.approx(0.5)
        assert schedule.learning_rate(1000) >= 0.0

    def test_clip_gradients(self):
        from repro.nn.modules import Parameter

        parameter = Parameter(np.zeros(3))
        parameter.grad = np.array([3.0, 4.0, 0.0])
        norm = clip_gradients([parameter], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(parameter.grad) <= 1.0 + 1e-9


class TestTokenizerAndData:
    def test_vocabulary_specials(self):
        vocabulary = Vocabulary()
        assert vocabulary.pad_id == 0
        assert vocabulary.id_of("unknown-token") == vocabulary.unk_id

    def test_build_vocabulary_and_encode(self):
        vocabulary = build_vocabulary(["which singer held concerts"])
        tokenizer = WordTokenizer(vocabulary)
        ids = tokenizer.encode_text("which singer")
        assert len(ids) == 2 and vocabulary.unk_id not in ids

    def test_encode_tokens_adds_bos_eos(self):
        vocabulary = build_vocabulary([], extra_tokens=["a", "b"])
        tokenizer = WordTokenizer(vocabulary)
        ids = tokenizer.encode_tokens(["a", "b"])
        assert ids[0] == vocabulary.bos_id and ids[-1] == vocabulary.eos_id

    def test_decode_skips_specials_keeps_sep(self):
        vocabulary = build_vocabulary([], extra_tokens=["a"])
        tokenizer = WordTokenizer(vocabulary)
        tokens = tokenizer.decode([vocabulary.bos_id, vocabulary.id_of("a"),
                                   vocabulary.sep_id, vocabulary.eos_id])
        assert tokens == ["a", vocabulary.specials.sep]

    def test_pad_batch(self):
        batch = pad_batch([([1, 2], [3]), ([4], [5, 6, 7])], pad_id=0)
        assert batch.source_ids.shape == (2, 2)
        assert batch.target_ids.shape == (2, 3)
        assert batch.source_mask.sum() == 3
        with pytest.raises(ValueError):
            pad_batch([], pad_id=0)


class TestSeq2SeqAndDecoding:
    @pytest.fixture(scope="class")
    def toy_setup(self):
        source_vocab = build_vocabulary(["alpha beta", "gamma delta", "epsilon zeta"])
        target_vocab = build_vocabulary([], extra_tokens=["one", "two", "three", "four"])
        source_tokenizer = WordTokenizer(source_vocab)
        target_tokenizer = WordTokenizer(target_vocab)
        data = [("alpha beta", ["one", "two"]),
                ("gamma delta", ["three"]),
                ("epsilon zeta", ["four", "one"])]
        pairs = [(source_tokenizer.encode_text(question), target_tokenizer.encode_tokens(target))
                 for question, target in data]
        model = Seq2SeqModel(Seq2SeqConfig(len(source_vocab), len(target_vocab),
                                           embedding_dim=16, hidden_dim=24, seed=1))
        history = Seq2SeqTrainer(model, TrainerConfig(epochs=80, batch_size=3,
                                                      learning_rate=0.02, seed=1)).train(pairs)
        return model, source_tokenizer, target_tokenizer, data, history

    def test_training_loss_decreases(self, toy_setup):
        _, _, _, _, history = toy_setup
        assert history.final_loss < history.epoch_losses[0] * 0.2

    def test_greedy_memorises_training_pairs(self, toy_setup):
        model, source_tokenizer, target_tokenizer, data, _ = toy_setup
        vocabulary = target_tokenizer.vocabulary
        for question, target in data:
            hypothesis = greedy_decode(model, source_tokenizer.encode_text(question),
                                       vocabulary.bos_id, vocabulary.eos_id)
            assert target_tokenizer.decode(hypothesis.tokens) == target

    def test_beam_contains_greedy(self, toy_setup):
        model, source_tokenizer, target_tokenizer, data, _ = toy_setup
        vocabulary = target_tokenizer.vocabulary
        source = source_tokenizer.encode_text(data[0][0])
        greedy = greedy_decode(model, source, vocabulary.bos_id, vocabulary.eos_id)
        beams = beam_search(model, source, vocabulary.bos_id, vocabulary.eos_id, beam_size=4)
        assert greedy.tokens in [hypothesis.tokens for hypothesis in beams]

    def test_diverse_beam_produces_distinct_hypotheses(self, toy_setup):
        model, source_tokenizer, target_tokenizer, data, _ = toy_setup
        vocabulary = target_tokenizer.vocabulary
        hypotheses = diverse_beam_search(model, source_tokenizer.encode_text(data[0][0]),
                                         vocabulary.bos_id, vocabulary.eos_id,
                                         num_beams=4, num_groups=2, diversity_penalty=2.0)
        sequences = [tuple(hypothesis.tokens) for hypothesis in hypotheses]
        assert len(sequences) == len(set(sequences))

    def test_constraint_restricts_tokens(self, toy_setup):
        model, source_tokenizer, target_tokenizer, data, _ = toy_setup
        vocabulary = target_tokenizer.vocabulary
        allowed_id = vocabulary.id_of("two")

        def constraint(prefix):
            return {allowed_id}

        hypothesis = greedy_decode(model, source_tokenizer.encode_text(data[0][0]),
                                   vocabulary.bos_id, vocabulary.eos_id,
                                   max_length=3, constraint=constraint)
        assert set(hypothesis.tokens) <= {allowed_id}

    def test_invalid_beam_configuration(self, toy_setup):
        model, source_tokenizer, _, data, _ = toy_setup
        with pytest.raises(ValueError):
            diverse_beam_search(model, [1], 1, 2, num_beams=5, num_groups=3)

    def test_batch_kernel_row_and_padding_invariance(self, toy_setup):
        """The bit-exactness contract of ``decode_step_numpy_batch``: each row
        is unaffected by the other rows in the stack and by zero-padding."""
        model, source_tokenizer, _, data, _ = toy_setup
        encoded = model.encode_numpy_batch(
            [source_tokenizer.encode_text(question) for question, _ in data])
        hidden = model.config.hidden_dim
        padded_length = max(item.memory.shape[0] for item in encoded) + 3
        rows = len(encoded)
        memory = np.zeros((rows, padded_length, hidden))
        memory_mask = np.zeros((rows, padded_length), dtype=bool)
        for row, item in enumerate(encoded):
            memory[row, : item.memory.shape[0]] = item.memory
            memory_mask[row, : item.memory.shape[0]] = True
        states = np.stack([item.state for item in encoded])
        previous = np.arange(rows, dtype=np.int64) % model.config.target_vocab_size
        log_probs, new_states = model.decode_step_numpy_batch(
            memory, memory_mask, states, previous)
        for row, item in enumerate(encoded):
            single_log_probs, single_state = model.decode_step_numpy(
                item, item.state, int(previous[row]))
            assert np.array_equal(log_probs[row], single_log_probs)
            assert np.array_equal(new_states[row], single_state)

    def test_encode_empty_source_uses_pad_token(self, toy_setup):
        model, _, _, _, _ = toy_setup
        empty = model.encode_numpy([])
        pad = model.encode_numpy([0])
        assert np.array_equal(empty.memory, pad.memory)
        assert np.array_equal(empty.state, pad.state)
        explicit = model.encode_numpy([], pad_id=2)
        assert np.array_equal(explicit.memory, model.encode_numpy([2]).memory)
        batched = model.encode_numpy_batch([[], [1, 2]])
        assert np.array_equal(batched[0].memory, pad.memory)
        assert np.array_equal(batched[0].state, pad.state)

    def test_trainer_requires_data(self, toy_setup):
        model, _, _, _, _ = toy_setup
        with pytest.raises(ValueError):
            Seq2SeqTrainer(model).train([])
