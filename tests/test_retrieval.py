"""Tests for the retrieval baselines and routing metrics."""

from __future__ import annotations

import pytest

from repro.retrieval import (
    BM25Retriever,
    ContrastiveTableRetriever,
    CrushRetriever,
    DenseRetriever,
    RankedTable,
    RoutingPrediction,
    SchemaHallucinator,
    build_table_documents,
    database_recall_at_k,
    evaluate_routing,
    mean_average_precision,
    prediction_from_table_ranking,
    table_recall_at_k,
)
from repro.retrieval.base import CandidateSchema


@pytest.fixture
def documents(small_catalog):
    return build_table_documents(small_catalog)


class TestDocuments:
    def test_one_document_per_table(self, documents, small_catalog):
        assert len(documents) == small_catalog.num_tables

    def test_document_text_contains_columns(self, documents):
        by_key = documents.by_key()
        singer = by_key[("concert_singer", "singer")]
        assert "country" in singer.tokens()

    def test_expansion(self, documents):
        expanded = documents.expand({("concert_singer", "singer"): ["who sings the most"]})
        assert "sings" in expanded.by_key()[("concert_singer", "singer")].tokens()


class TestRetrievers:
    @pytest.mark.parametrize("retriever_factory", [
        BM25Retriever,
        DenseRetriever,
        lambda: CrushRetriever(BM25Retriever()),
        ContrastiveTableRetriever,
    ])
    def test_gold_table_is_retrieved_for_obvious_question(self, documents, retriever_factory):
        retriever = retriever_factory()
        retriever.index(documents)
        ranked = retriever.rank_tables("how many cities are in each country", top_k=5)
        assert ("world", "city") in [item.key for item in ranked] or \
               ("world", "country") in [item.key for item in ranked]

    def test_rank_before_index_raises(self):
        with pytest.raises(RuntimeError):
            BM25Retriever().rank_tables("anything")
        with pytest.raises(RuntimeError):
            DenseRetriever().rank_tables("anything")

    def test_bm25_prefers_lexical_match(self, documents):
        retriever = BM25Retriever()
        retriever.index(documents)
        top = retriever.rank_tables("singer age country", top_k=1)[0]
        assert top.key == ("concert_singer", "singer")

    def test_dense_maps_known_paraphrases_to_concepts(self, documents):
        from repro.retrieval.dense import _CONCEPT_MAP, map_to_concepts

        # Pick a paraphrase word the encoder's (partial) lexicon actually knows
        # and check it collapses onto its canonical schema word.
        paraphrase, canonical = next(
            (word, concept) for word, concept in _CONCEPT_MAP.items() if word != concept)
        assert map_to_concepts([paraphrase]) == [canonical]
        retriever = DenseRetriever()
        retriever.index(documents)
        assert len(retriever.rank_tables("which singer is the oldest", top_k=3)) == 3

    def test_crush_hallucinator_normalises_paraphrases(self):
        elements = SchemaHallucinator().hallucinate("which vocalist held a show")
        assert elements  # never empty
        assert all(element not in ("which", "a") for element in elements)

    def test_crush_accumulates_cost(self, documents):
        retriever = CrushRetriever(BM25Retriever())
        retriever.index(documents)
        retriever.rank_tables("how many cities are there")
        assert retriever.total_cost > 0

    def test_dtr_fine_tune_requires_pairs(self, documents):
        retriever = ContrastiveTableRetriever()
        retriever.index(documents)
        with pytest.raises(ValueError):
            retriever.fine_tune([("q", ("missing_db", "missing_table"))])

    def test_dtr_fine_tuning_changes_embeddings(self, documents):
        retriever = ContrastiveTableRetriever()
        retriever.index(documents)
        before = retriever._document_embeddings.copy()
        pairs = [("which singers perform", ("concert_singer", "singer")),
                 ("how many concerts", ("concert_singer", "concert")),
                 ("population of cities", ("world", "city")),
                 ("countries by continent", ("world", "country"))] * 4
        losses = retriever.fine_tune(pairs)
        assert len(losses) == retriever.config.epochs
        assert retriever._document_embeddings.shape[1] == retriever.config.embedding_dim
        assert before.shape != retriever._document_embeddings.shape or \
               not (before == retriever._document_embeddings).all()


class TestRanking:
    def test_database_ranking_by_mean_score(self):
        ranked = [
            RankedTable("db_a", "t1", 3.0),
            RankedTable("db_b", "t2", 2.5),
            RankedTable("db_b", "t3", 2.4),
            RankedTable("db_a", "t4", 0.1),
        ]
        prediction = prediction_from_table_ranking(ranked, max_candidates=2)
        assert prediction.ranked_databases[0] == "db_b"  # mean 2.45 > mean 1.55
        assert prediction.candidate_schemas[0].database == "db_b"
        assert prediction.candidate_schemas[0].tables == ("t2", "t3")

    def test_prediction_helpers(self):
        prediction = RoutingPrediction(
            ranked_databases=["a", "b"],
            ranked_tables=[RankedTable("a", "t", 1.0)],
            candidate_schemas=[CandidateSchema("a", ("t",), 1.0)],
        )
        assert prediction.top_databases(1) == ["a"]
        assert prediction.top_tables(5) == [("a", "t")]
        assert prediction.best_schema.database == "a"


class TestMetrics:
    @pytest.fixture
    def prediction(self):
        return RoutingPrediction(
            ranked_databases=["gold_db", "other"],
            ranked_tables=[
                RankedTable("gold_db", "a", 3.0),
                RankedTable("other", "x", 2.0),
                RankedTable("gold_db", "b", 1.0),
            ],
            candidate_schemas=[CandidateSchema("gold_db", ("a", "b"), 3.0)],
        )

    def test_database_recall(self, prediction):
        assert database_recall_at_k(prediction, "gold_db", 1) == 1.0
        assert database_recall_at_k(prediction, "other", 1) == 0.0
        assert database_recall_at_k(prediction, "other", 5) == 1.0

    def test_table_recall(self, prediction):
        assert table_recall_at_k(prediction, "gold_db", ["a", "b"], 1) == 0.5
        assert table_recall_at_k(prediction, "gold_db", ["a", "b"], 3) == 1.0
        assert table_recall_at_k(prediction, "gold_db", [], 3) == 1.0

    def test_mean_average_precision(self, prediction):
        # a at rank 1 (precision 1), b at rank 3 (precision 2/3) -> AP = 5/6.
        assert mean_average_precision(prediction, "gold_db", ["a", "b"]) == pytest.approx(5 / 6)
        assert mean_average_precision(prediction, "gold_db", []) == 1.0

    def test_evaluate_routing_aggregates(self, prediction):
        scores = evaluate_routing([prediction, prediction], ["gold_db", "other"],
                                  [["a", "b"], ["x"]])
        assert scores.count == 2
        assert scores.database_recall[1] == 0.5
        row = scores.as_row()
        assert "db_recall@1" in row and "table_map" in row

    def test_evaluate_routing_validates_alignment(self, prediction):
        with pytest.raises(ValueError):
            evaluate_routing([prediction], ["a", "b"], [["t"]])

    def test_evaluate_routing_empty(self):
        assert evaluate_routing([], [], []).count == 0
