"""Tests for the in-memory relational engine."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.engine import (
    DatabaseInstance,
    Relation,
    compare_values,
    results_equivalent,
)
from repro.engine.values import canonical, coerce_value, values_equal
from repro.schema import ColumnType


class TestValues:
    def test_coerce_integer(self):
        assert coerce_value("5", ColumnType.INTEGER) == 5
        assert coerce_value(True, ColumnType.INTEGER) == 1

    def test_coerce_boolean_strings(self):
        assert coerce_value("yes", ColumnType.BOOLEAN) is True
        assert coerce_value("0", ColumnType.BOOLEAN) is False
        with pytest.raises(ValueError):
            coerce_value("maybe", ColumnType.BOOLEAN)

    def test_none_stays_none(self):
        assert coerce_value(None, ColumnType.INTEGER) is None

    def test_compare_nulls_first(self):
        assert compare_values(None, 1) == -1
        assert compare_values(1, None) == 1
        assert compare_values(None, None) == 0

    def test_values_equal_null_semantics(self):
        assert not values_equal(None, None)
        assert values_equal(3, 3.0)

    def test_canonical_collapses_integral_floats(self):
        assert canonical(3.0) == canonical(3)
        assert canonical(True) == canonical(1)

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_compare_is_antisymmetric(self, a, b):
        assert compare_values(a, b) == -compare_values(b, a)


class TestRelation:
    @pytest.fixture
    def relation(self):
        return Relation(["t.a", "t.b"], [(1, "x"), (2, "y"), (2, "z")])

    def test_row_width_validated(self):
        with pytest.raises(ValueError):
            Relation(["a"], [(1, 2)])

    def test_column_index_qualified_and_bare(self, relation):
        assert relation.column_index("t.a") == 0
        assert relation.column_index("b") == 1
        with pytest.raises(KeyError):
            relation.column_index("missing")

    def test_ambiguous_bare_name(self):
        relation = Relation(["x.a", "y.a"], [])
        with pytest.raises(KeyError):
            relation.column_index("a")

    def test_filter_and_project(self, relation):
        filtered = relation.filter(lambda row: row[0] == 2)
        assert len(filtered) == 2
        projected = filtered.project([1], ["b"])
        assert projected.rows == [("y",), ("z",)]

    def test_hash_join_skips_nulls(self):
        left = Relation(["l.k"], [(1,), (None,)])
        right = Relation(["r.k", "r.v"], [(1, "a"), (1, "b")])
        joined = left.hash_join(right, "l.k", "r.k")
        assert len(joined) == 2

    def test_sort_and_limit(self, relation):
        ordered = relation.sort([("t.a", True)])
        assert [row[0] for row in ordered.rows] == [2, 2, 1]
        assert len(ordered.limit(1)) == 1
        assert len(ordered.limit(None, offset=1)) == 2

    def test_distinct(self):
        relation = Relation(["a"], [(1,), (1,), (2,)])
        assert len(relation.distinct()) == 2

    def test_group_rows_stable_order(self, relation):
        groups = relation.group_rows(["t.a"])
        assert [key for key, _ in groups] == [(1,), (2,)]
        assert len(groups[1][1]) == 2

    def test_cross_join(self):
        a = Relation(["a.x"], [(1,), (2,)])
        b = Relation(["b.y"], [(3,)])
        assert len(a.cross_join(b)) == 2


class TestDatabaseInstance:
    def test_insert_validates_arity(self, concert_database):
        instance = DatabaseInstance(schema=concert_database)
        with pytest.raises(ValueError):
            instance.insert("singer", (1, "Alice"))

    def test_insert_unknown_table(self, concert_database):
        instance = DatabaseInstance(schema=concert_database)
        with pytest.raises(KeyError):
            instance.schema.table("missing")

    def test_scan_uses_alias(self, concert_instance):
        relation = concert_instance.scan("singer", alias="s")
        assert relation.columns[0] == "s.singer_id"
        assert len(relation) == 3

    def test_column_values(self, concert_instance):
        values = concert_instance.column_values()
        assert values["singer"]["name"] == ["Alice", "Bob", "Carol"]


class TestResultComparison:
    def test_order_insensitive_by_default(self):
        a = Relation(["x"], [(1,), (2,)])
        b = Relation(["x"], [(2,), (1,)])
        assert results_equivalent(a, b)
        assert not results_equivalent(a, b, order_sensitive=True)

    def test_multiset_semantics(self):
        a = Relation(["x"], [(1,), (1,)])
        b = Relation(["x"], [(1,)])
        assert not results_equivalent(a, b)

    def test_failed_execution_never_matches(self):
        a = Relation(["x"], [(1,)])
        assert not results_equivalent(None, a)
        assert not results_equivalent(None, None)

    def test_numeric_normalisation(self):
        a = Relation(["x"], [(2.0,)])
        b = Relation(["x"], [(2,)])
        assert results_equivalent(a, b)

    def test_arity_mismatch(self):
        a = Relation(["x"], [(1,)])
        b = Relation(["x", "y"], [(1, 2)])
        assert not results_equivalent(a, b)
