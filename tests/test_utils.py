"""Tests for the shared utilities."""

from __future__ import annotations

import time

import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    ResultTable,
    SeededRng,
    Stopwatch,
    camel_to_snake,
    derive_seed,
    normalize_identifier,
    normalize_whitespace,
    pluralize,
    singularize,
    tokenize_text,
)


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = [SeededRng(5).randint(0, 100) for _ in range(10)]
        b = [SeededRng(5).randint(0, 100) for _ in range(10)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [SeededRng(1).randint(0, 10**6) for _ in range(5)]
        b = [SeededRng(2).randint(0, 10**6) for _ in range(5)]
        assert a != b

    def test_child_streams_are_independent(self):
        parent = SeededRng(3)
        child_a = parent.child("a")
        child_b = parent.child("b")
        assert [child_a.randint(0, 100) for _ in range(5)] != \
               [child_b.randint(0, 100) for _ in range(5)]

    def test_child_is_deterministic(self):
        assert SeededRng(3).child("x").randint(0, 10**6) == \
               SeededRng(3).child("x").randint(0, 10**6)

    def test_derive_seed_stable(self):
        assert derive_seed(10, "router") == derive_seed(10, "router")
        assert derive_seed(10, "router") != derive_seed(10, "questioner")

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            SeededRng(0).choice([])

    def test_sample_clamps_to_population(self):
        assert sorted(SeededRng(0).sample([1, 2, 3], 10)) == [1, 2, 3]

    def test_shuffled_preserves_elements(self):
        items = list(range(20))
        shuffled = SeededRng(1).shuffled(items)
        assert sorted(shuffled) == items
        assert items == list(range(20))  # input untouched

    def test_weighted_choice_respects_weights(self):
        rng = SeededRng(4)
        picks = {rng.weighted_choice(["a", "b"], [0.0, 1.0]) for _ in range(20)}
        assert picks == {"b"}

    def test_coin_probability_bounds(self):
        rng = SeededRng(9)
        assert not any(rng.coin(0.0) for _ in range(50))
        assert all(rng.coin(1.0) for _ in range(50))


class TestText:
    @pytest.mark.parametrize("raw, expected", [
        ("CamelCase", "camel_case"),
        ("mixedCaseName", "mixed_case_name"),
        ("already_snake", "already_snake"),
    ])
    def test_camel_to_snake(self, raw, expected):
        assert camel_to_snake(raw) == expected

    @pytest.mark.parametrize("raw, expected", [
        ("Singer In Concert", "singer_in_concert"),
        ("singer-in-concert", "singer_in_concert"),
        ("  WeirdName!! ", "weird_name"),
    ])
    def test_normalize_identifier(self, raw, expected):
        assert normalize_identifier(raw) == expected

    def test_normalize_whitespace(self):
        assert normalize_whitespace("  a \n b\t c ") == "a b c"

    def test_tokenize_splits_identifiers(self):
        assert tokenize_text("singer_in_concert") == ["singer", "in", "concert"]

    @pytest.mark.parametrize("word, plural", [
        ("singer", "singers"),
        ("city", "cities"),
        ("match", "matches"),
        ("person", "people"),
        ("series", "series"),
    ])
    def test_pluralize(self, word, plural):
        assert pluralize(word) == plural

    @pytest.mark.parametrize("word", ["singer", "city", "match", "country", "company"])
    def test_singularize_inverts_pluralize(self, word):
        assert singularize(pluralize(word)) == word

    @given(st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=127),
                   min_size=1, max_size=20))
    def test_normalize_identifier_is_idempotent(self, raw):
        normalized = normalize_identifier(raw)
        if normalized:
            assert normalize_identifier(normalized) == normalized


class TestResultTable:
    def test_add_row_and_render(self):
        table = ResultTable(title="T", columns=["a", "b"])
        table.add_row("x", 1.234)
        rendered = table.render()
        assert "T" in rendered and "1.23" in rendered

    def test_add_row_wrong_arity(self):
        table = ResultTable(title="T", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only one")

    def test_to_records(self):
        table = ResultTable(title="T", columns=["a", "b"])
        table.add_row("x", 2)
        assert table.to_records() == [{"a": "x", "b": "2"}]


class TestStopwatch:
    def test_measure_accumulates(self):
        stopwatch = Stopwatch()
        with stopwatch.measure("step"):
            time.sleep(0.01)
        with stopwatch.measure("step"):
            time.sleep(0.01)
        assert stopwatch.total("step") >= 0.02
        assert stopwatch.counts["step"] == 2
        assert stopwatch.mean("step") > 0

    def test_unknown_section_is_zero(self):
        assert Stopwatch().total("missing") == 0.0

    def test_throughput(self):
        stopwatch = Stopwatch()
        with stopwatch.measure("work"):
            time.sleep(0.01)
        assert stopwatch.throughput("work", 10) > 0
