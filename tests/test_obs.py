"""Observability layer: tracer/span/journal, window QPS, and the exporters.

Everything here runs on injectable fake clocks -- no sleeps, no wall-clock
flakiness.  The contracts:

* spans nest under the trace root (or an explicit parent), close exactly
  once, and feed per-stage metrics as they close;
* ``finish()`` force-closes abandoned child spans with an error status, so
  the journal never leaks open traces (the kill-mid-batch guarantee);
* remote span payloads rebase onto the ``wire`` anchor span and stitch in
  under the parent trace id;
* the journal retains only the N slowest traces, slowest first;
* ``window_qps`` recovers when fresh load hits a long-idle service while
  lifetime ``qps`` stays diluted;
* Prometheus text and JSON lines both parse back to the exact flattened
  sample list -- the two export paths provably carry the same numbers.
"""

from __future__ import annotations

import json

import pytest

from test_serving import _serving_catalog

from repro.core import (
    RouterConfig,
    SchemaGraph,
    SchemaRouter,
    SchemaSampler,
    SynthesisConfig,
    TemplateQuestioner,
    synthesize_training_data,
)
from repro.obs import (
    TraceJournal,
    Tracer,
    distinct_traces,
    flatten_snapshot,
    maybe_span,
    parse_json_lines,
    parse_prometheus,
    stage_spans,
    to_json_lines,
    to_prometheus,
)
from repro.obs.export import main as export_main
from repro.serving.metrics import QPS_WINDOW_SECONDS, MetricsRegistry


@pytest.fixture(scope="module")
def trained_router() -> SchemaRouter:
    catalog = _serving_catalog()
    graph = SchemaGraph.from_catalog(catalog)
    questioner = TemplateQuestioner(catalog=catalog, seed=11)
    sampler = SchemaSampler(graph, seed=11)
    report = synthesize_training_data(sampler, questioner,
                                      SynthesisConfig(num_samples=250))
    router = SchemaRouter(graph=graph, config=RouterConfig(
        epochs=10, embedding_dim=24, hidden_dim=40, num_beams=4, beam_groups=2,
        seed=11))
    router.fit(report.examples)
    return router


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- spans and contexts --------------------------------------------------------
class TestTraceContext:
    def test_spans_nest_under_the_root_and_time_with_the_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        trace = tracer.start_trace("request", question_chars=17)
        clock.advance(0.5)
        with trace.span("encode", questions=2) as encode:
            clock.advance(0.25)
        child = trace.start_span("decode", parent=encode)
        clock.advance(1.0)
        child.end()
        trace.finish()

        assert trace.root.name == "request"
        assert trace.root.attributes == {"question_chars": 17}
        assert encode.parent_id == trace.root.span_id
        assert child.parent_id == encode.span_id
        assert encode.duration_seconds == pytest.approx(0.25)
        assert child.duration_seconds == pytest.approx(1.0)
        assert trace.duration_seconds() == pytest.approx(1.75)
        assert all(span.trace_id == trace.trace_id for span in trace.spans())

    def test_span_end_is_idempotent_and_exceptions_mark_errors(self):
        clock = FakeClock()
        trace = Tracer(clock=clock).start_trace()
        with pytest.raises(RuntimeError):
            with trace.span("decode"):
                raise RuntimeError("kernel divergence")
        (span,) = trace.find_spans("decode")
        assert span.status == "error"
        assert "kernel divergence" in span.error
        first_end = span.ended
        clock.advance(5.0)
        span.end()  # second close must not move the clock or clear the error
        assert span.ended == first_end
        assert span.status == "error"

    def test_finish_force_closes_abandoned_spans_as_errors(self):
        """The leak guard: a scatter arm whose worker died mid-batch never
        calls ``end()``; finish() closes it with an error so the journal
        shows zero open traces."""
        tracer = Tracer(clock=FakeClock())
        trace = tracer.start_trace()
        abandoned = trace.start_span("scatter", shard=0)
        trace.finish()

        assert abandoned.ended is not None
        assert abandoned.status == "error"
        assert abandoned.error == "abandoned"
        assert trace.root.status == "ok"  # the request itself succeeded
        assert trace.open_span_count() == 0
        assert tracer.journal.open_trace_count() == 0
        assert tracer.journal.open_span_count() == 0

    def test_spans_started_after_finish_are_detached(self):
        """A timed-out runner thread that wakes up late must not corrupt the
        completed record."""
        tracer = Tracer(clock=FakeClock())
        trace = tracer.start_trace()
        trace.finish()
        late = trace.start_span("scatter", shard=1)
        late.end()
        assert late not in trace.spans()
        assert trace.open_span_count() == 0

    def test_scoped_view_parents_spans_under_its_anchor(self):
        trace = Tracer(clock=FakeClock()).start_trace()
        with trace.span("escalation") as anchor:
            scope = trace.scoped(anchor)
            assert scope.trace_id == trace.trace_id
            with scope.span("scatter", shard=0) as nested:
                pass
        assert nested.parent_id == anchor.span_id
        assert scope.wire_context()["parent_span_id"] == anchor.span_id

    def test_disabled_tracer_returns_none_and_helpers_noop(self):
        tracer = Tracer(enabled=False, clock=FakeClock())
        assert tracer.start_trace() is None
        with maybe_span(None, "encode") as span:
            assert span is None
        assert distinct_traces(None) == []
        assert distinct_traces([None, None]) == []

    def test_distinct_traces_collapses_repeats_by_identity(self):
        tracer = Tracer(clock=FakeClock())
        a = tracer.start_trace()
        b = tracer.start_trace()
        assert distinct_traces([a, a, None, b, a]) == [a, b]
        with stage_spans([a, b], "decode", backend="fast") as spans:
            assert [span.name for span in spans] == ["decode", "decode"]
        assert all(span.ended is not None for span in spans)
        a.finish()
        b.finish()


class TestRemoteStitching:
    def test_remote_spans_rebase_into_the_wire_window(self):
        """A child on a wildly different monotonic epoch stitches in centered
        inside the parent's wire span, keeping its own internal layout."""
        clock = FakeClock(start=1000.0)
        tracer = Tracer(clock=clock)
        trace = tracer.start_trace()
        wire = trace.start_span("wire", shard=0)
        clock.advance(4.0)
        wire.end()

        # the worker's clock started near zero: epochs share nothing
        worker_payloads = [
            {"trace_id": trace.trace_id, "span_id": "w" * 16, "parent_id": None,
             "name": "worker", "started": 7.0, "ended": 9.0, "status": "ok",
             "error": None, "attributes": {"shard": 0}, "remote": False},
            {"trace_id": trace.trace_id, "span_id": "d" * 16,
             "parent_id": "w" * 16, "name": "decode", "started": 7.5,
             "ended": 8.5, "status": "ok", "error": None,
             "attributes": {"steps": 12}, "remote": False},
        ]
        added = trace.add_remote_spans(worker_payloads, anchor=wire)
        trace.finish()

        worker, decode = added
        assert all(span.remote for span in added)
        assert worker.parent_id == wire.span_id  # parentless hangs off anchor
        assert decode.parent_id == worker.span_id
        # rebased midpoint of the remote window == midpoint of the wire span
        assert (worker.started + worker.ended) / 2 == pytest.approx(1002.0)
        assert worker.duration_seconds == pytest.approx(2.0)  # layout kept
        assert decode.started - worker.started == pytest.approx(0.5)
        assert decode.attributes == {"steps": 12}
        assert {span.trace_id for span in trace.spans()} == {trace.trace_id}

    def test_adopt_joins_a_trace_even_when_disabled(self):
        """A wire frame carrying a trace id *is* the instruction to trace --
        the child-side tracer's enabled flag is irrelevant."""
        tracer = Tracer(enabled=False, clock=FakeClock())
        context = tracer.adopt("abc123", "parentspan", name="worker", shard=1)
        assert context.trace_id == "abc123"
        assert context.root.parent_id == "parentspan"
        context.finish()
        assert tracer.journal.completed == 1

    def test_garbage_remote_payloads_are_ignored(self):
        trace = Tracer(clock=FakeClock()).start_trace()
        wire = trace.start_span("wire")
        wire.end()
        assert trace.add_remote_spans([], anchor=wire) == []
        assert trace.add_remote_spans([None, "junk"], anchor=wire) == []
        trace.finish()


class TestTraceJournal:
    def test_retains_only_the_slowest_traces(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock, max_slow_traces=2)
        for duration in (0.1, 0.9, 0.3, 0.7):
            trace = tracer.start_trace("request", ms=duration)
            clock.advance(duration)
            trace.finish()
        journal = tracer.journal
        assert journal.completed == 4
        retained = journal.slowest()
        assert [record["duration_ms"] for record in retained] == [900.0, 700.0]
        assert all(record["spans"] for record in retained)
        assert journal.find(retained[0]["trace_id"]) is retained[0] \
            or journal.find(retained[0]["trace_id"])["trace_id"] \
            == retained[0]["trace_id"]
        assert journal.find("no-such-trace") is None

    def test_stats_counts_errors_and_round_trips_as_json(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        ok = tracer.start_trace()
        clock.advance(0.2)
        ok.finish()
        bad = tracer.start_trace()
        bad.finish(status="error", error="boom")
        open_trace = tracer.start_trace()
        open_trace.start_span("scatter")

        stats = tracer.journal.stats()
        assert stats["open_traces"] == 1
        assert stats["open_spans"] == 2  # the open root + its scatter child
        assert stats["completed"] == 2
        assert stats["errors"] == 1
        assert stats["retained"] == 2
        assert stats == json.loads(json.dumps(stats))
        open_trace.finish()

    def test_zero_retention_is_allowed(self):
        tracer = Tracer(clock=FakeClock(), max_slow_traces=0)
        trace = tracer.start_trace()
        trace.finish()
        assert tracer.journal.slowest() == []
        assert tracer.journal.stats()["retained"] == 0
        with pytest.raises(ValueError):
            TraceJournal(max_slow_traces=-1)


class TestStageMetrics:
    def test_closed_spans_feed_stage_recorders(self):
        clock = FakeClock()
        metrics = MetricsRegistry(clock=clock)
        tracer = Tracer(metrics=metrics, clock=clock)
        trace = tracer.start_trace()
        with trace.span("encode"):
            clock.advance(0.010)
        with trace.span("decode"):
            clock.advance(0.040)
        trace.finish()

        stages = metrics.snapshot()["stages"]
        assert set(stages) == {"encode", "decode", "request"}
        assert stages["encode"]["count"] == 1
        assert stages["encode"]["p50_ms"] == pytest.approx(10.0)
        assert stages["decode"]["p50_ms"] == pytest.approx(40.0)
        assert stages["request"]["p50_ms"] == pytest.approx(50.0)

    def test_remote_spans_do_not_feed_local_stage_metrics(self):
        """The worker already recorded its stages against its own registry;
        double-counting them here would skew the parent's percentiles."""
        clock = FakeClock()
        metrics = MetricsRegistry(clock=clock)
        trace = Tracer(metrics=metrics, clock=clock).start_trace()
        wire = trace.start_span("wire")
        clock.advance(1.0)
        wire.end()
        trace.add_remote_spans(
            [{"name": "decode", "started": 1.0, "ended": 2.0}], anchor=wire)
        trace.finish()
        assert "decode" not in metrics.stage_summaries()
        assert "wire" in metrics.stage_summaries()


# -- the sliding QPS window ----------------------------------------------------
class TestWindowQps:
    def test_window_qps_recovers_after_a_long_idle_stretch(self):
        clock = FakeClock(start=0.0)
        metrics = MetricsRegistry(clock=clock)
        for _ in range(100):
            metrics.increment("requests")
        clock.advance(3600.0)  # an hour of silence
        for _ in range(120):
            metrics.increment("requests")

        snapshot = metrics.snapshot()
        # lifetime QPS is diluted by the idle hour...
        assert snapshot["qps"] == pytest.approx(220 / 3600.0, abs=0.01)
        # ...but the window sees only the fresh burst over its 60s horizon
        assert snapshot["qps_window"] == pytest.approx(120 / 60.0, abs=0.01)
        assert snapshot["qps_window_seconds"] == QPS_WINDOW_SECONDS

    def test_young_registry_is_not_wildly_extrapolated(self):
        clock = FakeClock(start=50.0)
        metrics = MetricsRegistry(clock=clock)
        clock.advance(0.010)  # ten milliseconds old
        metrics.increment("requests", amount=5)
        # naive 5 / 0.01 would claim 500 qps; the 1s floor keeps it honest
        assert metrics.window_qps() == pytest.approx(5.0)

    def test_old_buckets_are_pruned(self):
        clock = FakeClock(start=0.0)
        metrics = MetricsRegistry(clock=clock)
        metrics.increment("requests", amount=30)
        clock.advance(QPS_WINDOW_SECONDS + 1.0)
        metrics.increment("requests")  # triggers the prune
        assert len(metrics._request_buckets) == 1
        assert metrics.window_qps() == pytest.approx(1 / 60.0, abs=1e-6)


# -- the exporters -------------------------------------------------------------
SNAPSHOT = {
    "uptime_seconds": 12.5,
    "qps": 3.25,
    "counters": {"requests": 40, "cache_hits": 10},
    "latency": {"count": 40, "p50_ms": 1.5, "p99_ms": 9.75},
    "batch_size_histogram": {"1": 12, "8": 3},  # digit keys become labels
    "batching": {"enabled": True},
    "stages": {"decode": {"count": 40, "p50_ms": 1.25}},
    "shards": [{"shard_id": 0, "databases": 3}, {"shard_id": 1, "databases": 2}],
    "worker_backend": "subprocess",  # strings carry no numeric value
    "checkpoint": None,
}


class TestExporters:
    def test_flatten_produces_numeric_samples_with_labels(self):
        samples = flatten_snapshot(SNAPSHOT)
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        assert by_name["repro_uptime_seconds"] == [({}, 12.5)]
        assert by_name["repro_counters_requests"] == [({}, 40.0)]
        assert by_name["repro_batching_enabled"] == [({}, 1.0)]  # bool -> 1.0
        assert by_name["repro_stages_decode_p50_ms"] == [({}, 1.25)]
        # digit-leading histogram keys become labels on the enclosing field
        assert sorted(by_name["repro_batch_size_histogram"],
                      key=lambda sample: sorted(sample[0].items())) == [
            ({"batch_size_histogram": "1"}, 12.0),
            ({"batch_size_histogram": "8"}, 3.0),
        ]
        # list items are labelled by index
        assert sorted(by_name["repro_shards_shard_id"],
                      key=lambda sample: sorted(sample[0].items())) == [
            ({"shards_index": "0"}, 0.0), ({"shards_index": "1"}, 1.0)]
        # strings and None never become samples
        assert "repro_worker_backend" not in by_name
        assert "repro_checkpoint" not in by_name

    def test_prometheus_and_jsonl_round_trip_identically(self):
        """The acceptance contract: both renderings parse back to the exact
        flattened sample list, so the two export paths carry the same
        numbers (including awkward floats)."""
        snapshot = dict(SNAPSHOT, awkward=0.1 + 0.2)  # not exactly 0.3
        expected = [(name, {str(k): str(v) for k, v in labels.items()}, value)
                    for name, labels, value in flatten_snapshot(snapshot)]
        assert parse_prometheus(to_prometheus(snapshot)) == expected
        assert parse_json_lines(to_json_lines(snapshot)) == expected

    def test_prometheus_text_shape(self):
        text = to_prometheus({"qps": 2.0, "cache": {"hits": 3}}, prefix="svc")
        lines = text.splitlines()
        assert "# TYPE svc_qps gauge" in lines
        assert "svc_qps 2.0" in lines
        assert "svc_cache_hits 3.0" in lines
        assert text.endswith("\n")
        with pytest.raises(ValueError):
            parse_prometheus("{not a series}")

    def test_counter_and_histogram_type_lines(self):
        snapshot = {
            "counters": {"requests": 40, "errors": 2},
            "cache": {"hits": 5, "misses": 2, "hit_rate": 0.71},
            "latency": {"count": 2, "total_seconds": 0.3, "p95_ms": 200.0,
                        "buckets": {"0.1": 1, "0.25": 2, "+Inf": 2}},
        }
        text = to_prometheus(snapshot)
        lines = text.splitlines()
        # monotonic counters are typed honestly, ratios stay gauges
        assert "# TYPE repro_counters_requests counter" in lines
        assert "# TYPE repro_cache_hits counter" in lines
        assert "# TYPE repro_cache_hit_rate gauge" in lines
        # the recorder summary yields one histogram family, typed once...
        assert lines.count("# TYPE repro_latency_seconds histogram") == 1
        assert not any(line.startswith("# TYPE repro_latency_seconds_bucket")
                       for line in lines)
        # ...with cumulative le-labelled buckets plus _sum/_count series
        assert 'repro_latency_seconds_bucket{le="0.1"} 1.0' in lines
        assert 'repro_latency_seconds_bucket{le="+Inf"} 2.0' in lines
        assert "repro_latency_seconds_sum 0.3" in lines
        assert "repro_latency_seconds_count 2.0" in lines
        # typing never broke the round-trip contract
        assert parse_prometheus(text) == [
            (name, {str(key): str(val) for key, val in labels.items()}, value)
            for name, labels, value in flatten_snapshot(snapshot)]

    def test_live_latency_summary_exports_histogram_series(self, trained_router):
        from repro.serving import RoutingService, ServingConfig

        service = RoutingService(trained_router,
                                 config=ServingConfig(enable_batching=False))
        try:
            service.submit("Which databases mention concerts?")
            text = to_prometheus(service.stats())
        finally:
            service.close()
        samples = parse_prometheus(text)
        bucket_counts = [value for name, labels, value in samples
                         if name == "repro_latency_seconds_bucket"]
        assert bucket_counts == sorted(bucket_counts)  # cumulative
        assert bucket_counts[-1] == 1.0  # +Inf bucket counts every request
        assert ("repro_latency_seconds_count", {}, 1.0) in samples

    def test_label_escaping_round_trips(self):
        # a digit-leading key cannot extend the metric name, so it becomes a
        # label -- whose value needs quote/backslash/newline escaping
        snapshot = {"weird": {'9"x\\y\nz': 1.0}}
        samples = parse_prometheus(to_prometheus(snapshot))
        assert samples == [("repro_weird", {"weird": '9"x\\y\nz'}, 1.0)]

    def test_live_service_snapshot_exports_cleanly(self, trained_router):
        """A real ``stats()`` dict (traces, stages, cache and all) flattens
        and round-trips without special-casing."""
        from repro.serving import RoutingService, ServingConfig

        service = RoutingService(trained_router,
                                 config=ServingConfig(enable_batching=False))
        try:
            service.submit("Which databases mention concerts?")
            snapshot = service.stats()
        finally:
            service.close()
        samples = flatten_snapshot(snapshot)
        assert any(name == "repro_counters_requests" for name, _, _ in samples)
        assert any(name.startswith("repro_stages_") for name, _, _ in samples)
        assert any(name == "repro_traces_completed" for name, _, _ in samples)
        expected = [(name, {str(k): str(v) for k, v in labels.items()}, value)
                    for name, labels, value in samples]
        assert parse_prometheus(to_prometheus(snapshot)) == expected
        assert parse_json_lines(to_json_lines(snapshot)) == expected


class TestExportCli:
    def test_input_file_to_prometheus(self, tmp_path, capsys):
        path = tmp_path / "snapshot.json"
        path.write_text(json.dumps({"qps": 4.5, "counters": {"requests": 9}}))
        assert export_main(["--input", str(path)]) == 0
        out = capsys.readouterr().out
        assert parse_prometheus(out) == [("repro_qps", {}, 4.5),
                                         ("repro_counters_requests", {}, 9.0)]

    def test_input_file_to_jsonl_with_prefix(self, tmp_path, capsys):
        path = tmp_path / "snapshot.json"
        path.write_text(json.dumps({"qps": 4.5}))
        assert export_main(["--input", str(path), "--format", "jsonl",
                            "--prefix", "router"]) == 0
        assert parse_json_lines(capsys.readouterr().out) \
            == [("router_qps", {}, 4.5)]

    def test_stdin_input(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(json.dumps({"qps": 1.0})))
        assert export_main(["--input", "-"]) == 0
        assert parse_prometheus(capsys.readouterr().out) \
            == [("repro_qps", {}, 1.0)]

    def test_probe_requires_checkpoint(self, capsys):
        with pytest.raises(SystemExit):
            export_main(["--input", "x.json", "--probe", "q"])

    def test_checkpoint_boot_and_probe(self, trained_router, tmp_path, capsys):
        from repro.serving import save_router

        ckpt = save_router(trained_router, tmp_path / "ckpt")
        assert export_main(["--checkpoint", str(ckpt), "--probe",
                            "Which databases mention concerts?"]) == 0
        samples = dict(((name, tuple(sorted(labels.items()))), value)
                       for name, labels, value in
                       parse_prometheus(capsys.readouterr().out))
        assert samples[("repro_counters_requests", ())] >= 1.0
