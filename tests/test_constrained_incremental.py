"""Differential tests: incremental constraint states vs the prefix-walk oracle.

The contract under test is *exact equivalence*: for any prefix -- legal,
junk, separator-riddled, or EOS-bearing -- the state reached by threading
``GraphConstrainedDecoding.advance`` token by token must parse identically to
a fresh ``interpret`` of the whole prefix, and
``allowed_mask_for_state(state)`` must equal ``allowed_mask(prefix)``
bit-for-bit.  The vectorized decode backend's bit-identity with the loop
reference (``tests/test_decode_backends.py``) rides entirely on this
equivalence, so it is exercised here directly: random catalogs, random
walks, terminal/EOS paths, and mask-cache eviction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.constrained import ConstraintState, GraphConstrainedDecoding
from repro.core.graph import SchemaGraph
from repro.core.serialization import ELEMENT_SEPARATOR
from repro.datasets import CollectionConfig, build_collection
from repro.nn.tokenizer import Vocabulary


def _build(seed: int, num_databases: int) -> GraphConstrainedDecoding:
    dataset = build_collection(CollectionConfig(
        name=f"inc-{seed}", num_databases=num_databases, rows_per_table=4,
        examples_per_database=4, seed=seed))
    graph = SchemaGraph.from_catalog(dataset.catalog)
    vocabulary = Vocabulary()
    vocabulary.add(ELEMENT_SEPARATOR)
    for database in graph.databases():
        vocabulary.add_text(database)
        for table in graph.tables_of(database):
            vocabulary.add_text(table)
    return GraphConstrainedDecoding(graph, vocabulary)


def _assert_state_matches_oracle(constrained: GraphConstrainedDecoding,
                                 state: ConstraintState,
                                 prefix: list[int]) -> None:
    oracle = constrained.interpret(prefix)
    assert (state.database, state.tables, state.current_words, state.complete) \
        == (oracle.database, oracle.tables, oracle.current_words, oracle.complete), \
        f"state diverged from interpret() at prefix {prefix}"
    incremental_mask = constrained.allowed_mask_for_state(state)
    oracle_mask = constrained.allowed_mask(tuple(prefix))
    assert np.array_equal(incremental_mask, oracle_mask), \
        f"mask diverged from allowed_mask() at prefix {prefix}"


def _random_walk(constrained: GraphConstrainedDecoding, rng, max_steps: int,
                 junk_rate: float) -> None:
    """Walk random (mostly legal) prefixes, asserting equivalence per token."""
    size = len(constrained.vocabulary)
    prefix: list[int] = []
    state = constrained.initial_state()
    for _ in range(max_steps):
        mask = constrained.allowed_mask(tuple(prefix))
        allowed = np.flatnonzero(mask)
        if rng.random() >= junk_rate and allowed.size:
            token = int(rng.choice(allowed))
        else:
            token = int(rng.integers(0, size))
        prefix.append(token)
        state = constrained.advance(state, token)
        _assert_state_matches_oracle(constrained, state, prefix)


class TestAdvanceMatchesInterpret:
    @pytest.mark.parametrize("seed,num_databases", [(3, 4), (11, 7), (23, 10)])
    def test_legal_walks(self, seed, num_databases):
        constrained = _build(seed, num_databases)
        rng = np.random.default_rng(seed)
        for _ in range(25):
            _random_walk(constrained, rng, max_steps=int(rng.integers(2, 24)),
                         junk_rate=0.0)

    @pytest.mark.parametrize("seed", [5, 17])
    def test_walks_with_junk_tokens(self, seed):
        """Off-trie tokens (dead cursors) must parse like failed node walks."""
        constrained = _build(seed, 6)
        rng = np.random.default_rng(seed)
        for _ in range(25):
            _random_walk(constrained, rng, max_steps=int(rng.integers(2, 20)),
                         junk_rate=0.3)

    def test_separator_edge_cases(self):
        """Leading, doubled, and trailing separators mirror interpret()."""
        constrained = _build(7, 5)
        separator = constrained.vocabulary.sep_id
        database = next(iter(constrained.graph.databases()))
        words = list(constrained._word_ids(database))
        for prefix in ([separator], [separator, separator],
                       words + [separator],
                       [separator] + words + [separator, separator],
                       words + [separator] + words):
            state = constrained.initial_state()
            for token in prefix:
                state = constrained.advance(state, token)
            _assert_state_matches_oracle(constrained, state, list(prefix))

    def test_eos_and_terminal_paths(self):
        """EOS rides through advance() as an ordinary element token, and a
        fully-decoded database.table prefix allows EOS exactly like the
        oracle says."""
        constrained = _build(13, 5)
        vocabulary = constrained.vocabulary
        separator, eos = vocabulary.sep_id, vocabulary.eos_id
        database = next(iter(constrained.graph.databases()))
        table = next(iter(constrained.graph.tables_of(database)))
        prefix = (list(constrained._word_ids(database)) + [separator]
                  + list(constrained._word_ids(table)) + [separator])
        state = constrained.initial_state()
        for token in prefix:
            state = constrained.advance(state, token)
        _assert_state_matches_oracle(constrained, state, list(prefix))
        # A complete schema may stop: EOS must be allowed here.
        assert constrained.allowed_mask_for_state(state)[eos]
        # Advancing over EOS itself still matches the oracle (it becomes part
        # of the current element, exactly as interpret() treats it).
        state = constrained.advance(state, eos)
        _assert_state_matches_oracle(constrained, state, list(prefix) + [eos])

    def test_advance_transitions_are_memoized(self):
        constrained = _build(19, 4)
        state = constrained.initial_state()
        token = int(np.flatnonzero(constrained.allowed_mask(()))[0])
        first = constrained.advance(state, token)
        assert constrained.advance(state, token) is first

    def test_states_are_shared_safely(self):
        """advance() never mutates its input state (beams share states)."""
        constrained = _build(29, 4)
        state = constrained.initial_state()
        snapshot = (state.database, state.tables, state.current_words,
                    state.complete)
        token = int(np.flatnonzero(constrained.allowed_mask(()))[0])
        constrained.advance(state, token)
        assert (state.database, state.tables, state.current_words,
                state.complete) == snapshot


class TestMaskCache:
    def test_eviction_keeps_masks_correct(self):
        """With a tiny mask-cache bound, eviction churns constantly and the
        incremental masks must still match fresh oracle masks."""
        constrained = _build(31, 6)
        constrained.max_cached_masks = 2
        rng = np.random.default_rng(31)
        for _ in range(20):
            _random_walk(constrained, rng, max_steps=12, junk_rate=0.1)
        assert len(constrained._mask_cache) <= 2

    def test_states_keep_masks_across_eviction(self):
        """A state's memoized mask survives cache eviction (the shared cache
        bounds memory; live beams keep their own reference)."""
        constrained = _build(37, 5)
        constrained.max_cached_masks = 1
        state = constrained.initial_state()
        mask = constrained.allowed_mask_for_state(state)
        # Flood the cache with other states' masks.
        rng = np.random.default_rng(37)
        _random_walk(constrained, rng, max_steps=10, junk_rate=0.0)
        assert constrained.allowed_mask_for_state(state) is mask

    def test_allowed_tokens_reuses_cached_mask(self):
        """The set face derives from the cached mask entry -- one set build
        per interpreter state, identical content to the mask."""
        constrained = _build(41, 5)
        database = next(iter(constrained.graph.databases()))
        prefix = tuple(constrained._word_ids(database))
        tokens_first = constrained.allowed_tokens(prefix)
        tokens_second = constrained.allowed_tokens(prefix)
        assert tokens_first is tokens_second  # cached, not rebuilt
        mask = constrained.allowed_mask(prefix)
        assert tokens_first == frozenset(np.flatnonzero(mask).tolist())

    def test_masks_are_read_only(self):
        constrained = _build(43, 4)
        mask = constrained.allowed_mask_for_state(constrained.initial_state())
        with pytest.raises(ValueError):
            mask[0] = True
