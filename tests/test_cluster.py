"""Tests for the cluster subsystem: partitioning, dispatch, replicas,
rebalancing, and whole-cluster checkpoints."""

from __future__ import annotations

import json
import time

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterDispatcher,
    ClusterError,
    ClusterRebalancer,
    ClusterRoutingService,
    RebalanceError,
    ReplicaSet,
    ShardAssignment,
    ShardTimeoutError,
    ShardWorker,
    load_cluster,
    load_cluster_manifest,
    partition_catalog,
    project_router,
    save_cluster,
)
from repro.core import (
    RouterConfig,
    SchemaGraph,
    SchemaRoute,
    SchemaRouter,
    SchemaSampler,
    SynthesisConfig,
    TemplateQuestioner,
    merge_route_lists,
    normalize_route_scores,
    synthesize_training_data,
)
from repro.schema import Catalog, Column, ColumnType, Database, ForeignKey, Table
from repro.serving.checkpoint import CheckpointError


def _database(name: str, tables: dict[str, list[str]],
              foreign_keys: list[tuple[str, str, str, str]] = ()) -> Database:
    return Database(
        name=name,
        tables=[
            Table(table, [Column(column, ColumnType.INTEGER, is_primary_key=(index == 0))
                          for index, column in enumerate(columns)])
            for table, columns in tables.items()
        ],
        foreign_keys=[ForeignKey(*fk) for fk in foreign_keys],
    )


def _cluster_catalog() -> Catalog:
    """Four small single-domain databases (so shards get clear owners)."""
    return Catalog(name="cluster_small", databases=[
        _database("concert_hall", {
            "singer": ["singer_id", "stage_name", "country"],
            "concert": ["concert_id", "venue", "season"],
            "singer_in_concert": ["singer_id", "concert_id"],
        }, [("singer_in_concert", "singer_id", "singer", "singer_id"),
            ("singer_in_concert", "concert_id", "concert", "concert_id")]),
        _database("world_atlas", {
            "country": ["country_id", "country_name", "continent"],
            "city": ["city_id", "city_name", "population", "country_id"],
        }, [("city", "country_id", "country", "country_id")]),
        _database("book_library", {
            "author": ["author_id", "author_name", "birth_year"],
            "book": ["book_id", "title", "author_id", "shelf"],
        }, [("book", "author_id", "author", "author_id")]),
        _database("grocery_shop", {
            "product": ["product_id", "product_label", "price"],
            "purchase": ["purchase_id", "product_id", "quantity"],
        }, [("purchase", "product_id", "product", "product_id")]),
    ])


QUESTIONS = [
    "which singers performed in a concert",
    "list the venue of every concert",
    "how many cities are there in each country",
    "what is the population of each city",
    "show the title of every book and its author name",
    "which authors were born after 1960",
    "what is the price of each product",
    "how many purchases were made per product",
]


@pytest.fixture(scope="module")
def master_router() -> SchemaRouter:
    catalog = _cluster_catalog()
    graph = SchemaGraph.from_catalog(catalog)
    questioner = TemplateQuestioner(catalog=catalog, seed=23)
    sampler = SchemaSampler(graph, seed=23)
    report = synthesize_training_data(sampler, questioner, SynthesisConfig(num_samples=300))
    router = SchemaRouter(graph=graph, config=RouterConfig(
        epochs=10, embedding_dim=24, hidden_dim=40, num_beams=8, beam_groups=4, seed=23))
    router.fit(report.examples)
    return router


def _signature(routes) -> list[tuple[str, tuple[str, ...]]]:
    return [(route.database, route.tables) for route in routes]


def _full_signature(routes) -> list[tuple[str, tuple[str, ...], float]]:
    return [(route.database, route.tables, route.score) for route in routes]


# -- partitioning --------------------------------------------------------------
class TestPartition:
    def test_round_robin_deals_in_catalog_order(self):
        assignment = partition_catalog(_cluster_catalog(), 2, strategy="round_robin")
        assert assignment.shards == (("concert_hall", "book_library"),
                                     ("world_atlas", "grocery_shop"))

    def test_size_balanced_levels_table_counts(self):
        catalog = Catalog(name="lopsided", databases=[
            _database("big", {f"t{i}": ["id", "x"] for i in range(6)}),
            _database("mid", {f"t{i}": ["id", "x"] for i in range(3)}),
            _database("small_a", {"t0": ["id", "x"]}),
            _database("small_b", {"t0": ["id", "x"]}),
        ])
        assignment = partition_catalog(catalog, 2, strategy="size_balanced")
        loads = [sum(catalog.database(name).num_tables for name in shard)
                 for shard in assignment.shards]
        assert sorted(loads) == [5, 6]  # big | mid + the two small ones

    def test_joinability_groups_affine_databases(self):
        # Two near-identical schemas (flight networks) plus two unrelated ones:
        # the affine pair must land on the same shard.
        catalog = Catalog(name="affine", databases=[
            _database("airline_east", {
                "flight": ["flight_id", "origin_airport", "destination_airport"],
                "airport": ["airport_id", "airport_code"],
            }),
            _database("book_library", {
                "author": ["author_id", "author_name"],
                "book": ["book_id", "title", "author_id"],
            }),
            _database("airline_west", {
                "flight": ["flight_id", "origin_airport", "destination_airport"],
                "airport": ["airport_id", "airport_code"],
            }),
            _database("grocery_shop", {
                "product": ["product_id", "price"],
                "purchase": ["purchase_id", "product_id"],
            }),
        ])
        assignment = partition_catalog(catalog, 2, strategy="joinability")
        assert assignment.shard_of("airline_east") == assignment.shard_of("airline_west")

    def test_every_strategy_is_a_deterministic_cover(self):
        catalog = _cluster_catalog()
        for strategy in ("round_robin", "size_balanced", "joinability"):
            first = partition_catalog(catalog, 2, strategy=strategy)
            second = partition_catalog(catalog, 2, strategy=strategy)
            assert first == second
            assert sorted(first.database_names) == sorted(catalog.database_names)
            assert all(first.shards)  # no empty shards

    def test_invalid_requests_rejected(self):
        catalog = _cluster_catalog()
        with pytest.raises(ValueError, match="positive"):
            partition_catalog(catalog, 0)
        with pytest.raises(ValueError, match="non-empty"):
            partition_catalog(catalog, 99)
        with pytest.raises(ValueError, match="strategy"):
            partition_catalog(catalog, 2, strategy="alphabetical")
        with pytest.raises(ValueError, match="multiple shards"):
            ShardAssignment(shards=(("a", "b"), ("b",)))

    def test_assignment_lookup_and_payload_round_trip(self):
        assignment = partition_catalog(_cluster_catalog(), 3)
        for shard_id, databases in enumerate(assignment.shards):
            for name in databases:
                assert assignment.shard_of(name) == shard_id
        with pytest.raises(KeyError):
            assignment.shard_of("nowhere")
        rebuilt = ShardAssignment.from_payload(
            json.loads(json.dumps(assignment.to_payload())))
        assert rebuilt == assignment


# -- projection ----------------------------------------------------------------
class TestProjection:
    def test_projected_router_stays_inside_its_shard(self, master_router):
        shard = project_router(master_router, ("world_atlas", "book_library"))
        for question in QUESTIONS:
            for route in shard.route(question):
                assert route.database in ("world_atlas", "book_library")

    def test_projection_shares_the_master_model(self, master_router):
        shard = project_router(master_router, ("concert_hall",), num_beams=2)
        assert shard.model is master_router.model
        assert shard.config.num_beams == 2

    def test_empty_projection_routes_nowhere(self, master_router):
        shard = project_router(master_router, ())
        assert shard.route(QUESTIONS[0]) == []

    def test_projection_errors(self, master_router):
        with pytest.raises(ValueError, match="untrained"):
            project_router(SchemaRouter(graph=master_router.graph), ("world_atlas",))
        with pytest.raises(ValueError, match="not in the master catalog"):
            project_router(master_router, ("mystery_db",))


# -- score merging (core helpers) ----------------------------------------------
class TestMerge:
    def test_normalization_is_monotonic_and_sums_to_one(self):
        routes = [SchemaRoute("a", ("t",), -3.0), SchemaRoute("b", ("t",), -1.0),
                  SchemaRoute("c", ("t",), -7.5)]
        normalized = normalize_route_scores(routes)
        assert sum(route.score for route in normalized) == pytest.approx(1.0)
        assert [r.database for r in sorted(normalized, key=lambda r: -r.score)] == \
            ["b", "a", "c"]
        assert normalize_route_scores([]) == []

    def test_merge_is_independent_of_shard_order(self):
        shard_a = [SchemaRoute("a", ("t",), -1.0), SchemaRoute("b", ("t",), -4.0)]
        shard_b = [SchemaRoute("c", ("t", "u"), -2.0)]
        shard_c = [SchemaRoute("d", ("t",), -3.0)]
        forward = merge_route_lists([shard_a, shard_b, shard_c], max_candidates=3)
        backward = merge_route_lists([shard_c, shard_b, shard_a], max_candidates=3)
        assert _full_signature(forward) == _full_signature(backward)
        assert [route.database for route in forward] == ["a", "c", "d"]

    def test_merge_deduplicates_overlapping_databases(self):
        merged = merge_route_lists([
            [SchemaRoute("a", ("t",), -2.0)],
            [SchemaRoute("a", ("t", "u"), -1.0)],
        ])
        assert _signature(merged) == [("a", ("t", "u"))]


# -- dispatcher ----------------------------------------------------------------
class TestDispatcher:
    @staticmethod
    def _fake_target(database: str, score: float):
        def route_batch(questions, max_candidates):
            return [[SchemaRoute(database, ("t",), score)] for _ in questions]
        return route_batch

    def test_scatter_gather_merges_shard_answers(self):
        dispatcher = ClusterDispatcher([
            self._fake_target("alpha", -2.0),
            self._fake_target("beta", -1.0),
        ])
        with dispatcher:
            merged = dispatcher.route_batch(["q1", "q2"])
        assert [_signature(routes) for routes in merged] == \
            [[("beta", ("t",)), ("alpha", ("t",))]] * 2

    def test_shard_timeout_fails_the_request(self):
        def slow(questions, max_candidates):
            time.sleep(0.5)
            return [[] for _ in questions]

        with ClusterDispatcher([self._fake_target("alpha", -1.0), slow],
                               shard_timeout_seconds=0.05) as dispatcher:
            with pytest.raises(ClusterError):
                dispatcher.route_batch(["q"])
            assert dispatcher.shard_failures == 1

    def test_allow_partial_serves_the_remaining_shards(self):
        def broken(questions, max_candidates):
            raise RuntimeError("shard down")

        with ClusterDispatcher([self._fake_target("alpha", -1.0), broken],
                               allow_partial=True) as dispatcher:
            merged = dispatcher.route_batch(["q"])
            assert _signature(merged[0]) == [("alpha", ("t",))]
            assert dispatcher.partial_gathers == 1
        # ... unless every shard failed.
        with ClusterDispatcher([broken], allow_partial=True) as dispatcher:
            with pytest.raises(ClusterError):
                dispatcher.route_batch(["q"])

    def test_partial_gather_counts_dropped_timeouts(self):
        """A timed-out shard silently dropped from a partial gather must be
        visible in ``shards_timed_out`` (distinct from crash failures)."""
        def slow(questions, max_candidates):
            time.sleep(0.5)
            return [[] for _ in questions]

        def broken(questions, max_candidates):
            raise RuntimeError("shard down")

        with ClusterDispatcher([self._fake_target("alpha", -1.0), slow, broken],
                               shard_timeout_seconds=0.05,
                               allow_partial=True) as dispatcher:
            merged = dispatcher.route_batch(["q"])
            assert _signature(merged[0]) == [("alpha", ("t",))]
            assert dispatcher.shard_failures == 2   # slow + broken
            assert dispatcher.shards_timed_out == 1  # only slow was a timeout
            assert dispatcher.partial_gathers == 1

    def test_cascade_escalates_only_low_confidence_questions(self):
        # Fast tier: near-tie for "ambiguous", clear winner for "easy".
        def fast(questions, max_candidates):
            return [[SchemaRoute("alpha", ("t",), -1.0),
                     SchemaRoute("beta", ("t",), -1.1 if question == "ambiguous"
                                 else -9.0)]
                    for question in questions]

        careful_calls: list[list[str]] = []

        def careful(questions, max_candidates):
            careful_calls.append(list(questions))
            return [[SchemaRoute("beta", ("t", "u"), -0.5)] for _ in questions]

        with ClusterDispatcher([fast], careful_targets=[careful],
                               escalation_threshold=0.9) as dispatcher:
            merged = dispatcher.route_batch(["easy", "ambiguous"])
        assert careful_calls == [["ambiguous"]]  # only the near-tie escalated
        assert dispatcher.escalations == 1
        assert merged[0][0].database == "alpha"       # fast answer kept
        assert _signature(merged[1]) == [("beta", ("t", "u"))]  # careful answer

    def test_cascade_configuration_validated(self):
        target = self._fake_target("alpha", -1.0)
        with pytest.raises(ValueError, match="pair up"):
            ClusterDispatcher([target], careful_targets=[target, target],
                              escalation_threshold=0.5)
        with pytest.raises(ValueError, match="escalation_threshold"):
            ClusterDispatcher([target], careful_targets=[target],
                              escalation_threshold=1.5)

    def test_empty_batch_and_closed_dispatcher(self):
        dispatcher = ClusterDispatcher([self._fake_target("alpha", -1.0)])
        assert dispatcher.route_batch([]) == []
        dispatcher.close()
        with pytest.raises(RuntimeError):
            dispatcher.route_batch(["q"])
        with pytest.raises(ValueError):
            ClusterDispatcher([])


# -- replication ---------------------------------------------------------------
class TestReplicaSet:
    def _workers(self, master_router, count: int = 2) -> list[ShardWorker]:
        return [
            ShardWorker.from_projection(0, ("concert_hall", "world_atlas"),
                                        master_router, num_beams=2)
            for _ in range(count)
        ]

    def test_killing_one_replica_leaves_answers_unchanged(self, master_router):
        workers = self._workers(master_router)
        replica_set = ReplicaSet(0, workers, quarantine_seconds=60.0)
        healthy = [replica_set.route_batch([question])[0] for question in QUESTIONS]
        workers[0].service.close()  # "kill" one replica: submits now raise
        workers[1].service.close()
        replicas = self._workers(master_router)
        replica_set = ReplicaSet(0, replicas, quarantine_seconds=60.0)
        replicas[0].service.close()
        after = [replica_set.route_batch([question])[0] for question in QUESTIONS]
        assert [_full_signature(routes) for routes in after] == \
            [_full_signature(routes) for routes in healthy]
        assert replica_set.failovers > 0
        assert replica_set.healthy_count() == 1
        stats = replica_set.stats()
        assert stats["replicas"][0]["quarantined"] is True
        for worker in replicas:
            worker.close()

    def test_quarantined_replica_is_retried_after_expiry(self, master_router):
        now = [0.0]
        workers = self._workers(master_router)
        replica_set = ReplicaSet(0, workers, quarantine_seconds=30.0,
                                 clock=lambda: now[0])
        calls: list[int] = []
        originals = [worker.route_batch for worker in workers]

        def failing_once(questions, max_candidates=None, careful=False):
            calls.append(0)
            raise RuntimeError("transient")

        workers[0].route_batch = failing_once  # type: ignore[method-assign]
        replica_set.route_batch(["q"])  # fails over to replica 1, quarantines 0
        assert replica_set.healthy_count() == 1
        workers[0].route_batch = originals[0]  # type: ignore[method-assign]
        now[0] = 31.0  # quarantine expired: replica 0 is eligible again
        assert replica_set.healthy_count() == 2
        replica_set.route_batch(["q"])  # round-robin lands on replica 1 ...
        replica_set.route_batch(["q"])  # ... then retries the recovered replica 0
        assert replica_set.stats()["replicas"][0]["successes"] >= 1
        for worker in workers:
            worker.close()

    def test_all_replicas_failing_raises(self, master_router):
        workers = self._workers(master_router)
        replica_set = ReplicaSet(0, workers, quarantine_seconds=60.0)
        for worker in workers:
            worker.service.close()
        with pytest.raises(ClusterError, match="all 2 replicas"):
            replica_set.route_batch(["q"])
        with pytest.raises(ValueError):
            ReplicaSet(0, [])

    def test_timeout_classification_survives_the_replica_layer(self):
        """All replicas timing out must surface as ShardTimeoutError (so the
        dispatcher counts a shard *timeout*); a mix of crash + timeout is a
        plain ClusterError."""
        class Sleepy:
            def route_batch(self, questions, max_candidates=None, careful=False):
                time.sleep(0.5)
                return [[] for _ in questions]

        class Broken:
            def route_batch(self, questions, max_candidates=None, careful=False):
                raise RuntimeError("shard down")

        all_slow = ReplicaSet(0, [Sleepy(), Sleepy()], quarantine_seconds=60.0,
                              attempt_timeout_seconds=0.05)
        with pytest.raises(ShardTimeoutError):
            all_slow.route_batch(["q"])
        mixed = ReplicaSet(0, [Sleepy(), Broken()], quarantine_seconds=60.0,
                           attempt_timeout_seconds=0.05)
        with pytest.raises(ClusterError) as outcome:
            mixed.route_batch(["q"])
        assert not isinstance(outcome.value, ShardTimeoutError)


# -- the cluster service -------------------------------------------------------
class TestClusterRoutingService:
    @pytest.fixture()
    def cluster(self, master_router):
        config = ClusterConfig(num_shards=2, strategy="round_robin")
        with ClusterRoutingService.from_router(master_router, config) as service:
            yield service

    def test_matches_monolithic_top1_on_seeded_questions(self, master_router, cluster):
        agree = 0
        for question in QUESTIONS:
            mono = master_router.route(question)
            merged = cluster.submit(question)
            assert merged, f"cluster routed {question!r} to nothing"
            if mono and merged[0].database == mono[0].database:
                agree += 1
        assert agree >= round(0.95 * len(QUESTIONS))

    def test_scores_are_normalized_probabilities(self, cluster):
        routes = cluster.submit(QUESTIONS[0])
        assert all(0.0 < route.score <= 1.0 for route in routes)
        assert sum(route.score for route in routes) <= 1.0 + 1e-9
        assert routes == sorted(routes, key=lambda route: -route.score)

    def test_top_k_identical_across_runs_and_shard_orderings(self, master_router):
        config = ClusterConfig(num_shards=2, strategy="round_robin")
        assignment = partition_catalog(master_router.graph.catalog, 2,
                                       strategy="round_robin")
        reversed_assignment = ShardAssignment(shards=assignment.shards[::-1],
                                              strategy="round_robin")
        with ClusterRoutingService.from_router(master_router, config) as forward, \
                ClusterRoutingService.from_router(master_router, config,
                                                  assignment=reversed_assignment) as backward:
            for question in QUESTIONS:
                assert _full_signature(forward.submit(question)) == \
                    _full_signature(backward.submit(question))

    def test_submit_many_matches_submit(self, cluster):
        batch = cluster.submit_many(QUESTIONS[:4])
        for question, routes in zip(QUESTIONS[:4], batch):
            assert _full_signature(routes) == _full_signature(cluster.submit(question))
        assert cluster.submit_many([]) == []

    def test_per_shard_caches_absorb_repeats(self, cluster):
        cluster.submit(QUESTIONS[0])
        cluster.submit(QUESTIONS[0])
        stats = cluster.stats()
        assert stats["cache_hit_rate"] > 0.0
        assert stats["counters"]["requests"] == 2
        assert stats["num_shards"] == 2
        assert len(stats["shards"]) == 2
        assert json.loads(json.dumps(stats)) == stats

    def test_targeted_invalidation_only_touches_the_owner_shard(self, cluster):
        cluster.submit(QUESTIONS[0])
        database = cluster.assignment.shards[0][0]
        cluster.notify_catalog_changed(database)
        caches = [replica_set.workers[0].service.cache for replica_set in cluster.shards]
        assert caches[0].catalog_version == 1
        assert caches[1].catalog_version == 0
        assert cluster.catalog_version == 1

    def test_max_candidates_bounds_the_merged_answer(self, cluster):
        assert len(cluster.submit(QUESTIONS[0], max_candidates=1)) == 1

    def test_stats_expose_backend_and_timeout_accounting(self, cluster):
        cluster.submit_many(QUESTIONS[:2])
        stats = cluster.stats()
        assert stats["worker_backend"] == "inproc"
        dispatcher = stats["dispatcher"]
        # shards_timed_out breaks the "partial gathers drop timeouts silently"
        # blind spot: the counter exists even when everything is healthy.
        assert dispatcher["shards_timed_out"] == 0
        assert dispatcher["shard_failures"] == 0
        assert set(dispatcher) == {"shard_failures", "shards_timed_out",
                                   "partial_gathers", "escalations"}
        json.dumps(stats)  # the whole rollup stays JSON-serializable

    def test_escalation_tier_is_wired_and_counted(self, master_router, cluster):
        assert all(worker.careful_service is not None
                   for replica_set in cluster.shards
                   for worker in replica_set.workers)
        cluster.submit_many(QUESTIONS)
        stats = cluster.stats()
        assert stats["dispatcher"]["escalations"] >= 0
        # With the cascade disabled, shards run a single wider-beam pass.
        config = ClusterConfig(num_shards=2, escalation_threshold=None)
        with ClusterRoutingService.from_router(master_router, config) as single_pass:
            worker = single_pass.shards[0].workers[0]
            assert worker.careful_service is None
            assert worker.router.config.num_beams == \
                master_router.config.num_beams // 2
            assert single_pass.submit(QUESTIONS[0])

    def test_closed_cluster_rejects_requests(self, master_router):
        service = ClusterRoutingService.from_router(
            master_router, ClusterConfig(num_shards=2))
        service.close()
        with pytest.raises(RuntimeError):
            service.submit(QUESTIONS[0])
        with pytest.raises(RuntimeError):
            service.submit_many(QUESTIONS[:2])

    def test_invalid_configs_rejected(self, master_router):
        with pytest.raises(ValueError):
            ClusterConfig(num_shards=0)
        with pytest.raises(ValueError):
            ClusterConfig(replicas=0)
        with pytest.raises(ValueError):
            ClusterRoutingService([], partition_catalog(master_router.graph.catalog, 2))


# -- rebalancing ---------------------------------------------------------------
class TestRebalance:
    @pytest.fixture()
    def cluster(self, master_router):
        config = ClusterConfig(num_shards=2, strategy="round_robin")
        with ClusterRoutingService.from_router(master_router, config) as service:
            yield service

    def test_remove_then_add_restores_routing(self, cluster):
        before = [_signature(cluster.submit(question)) for question in QUESTIONS]
        rebalancer = ClusterRebalancer(cluster)
        victim = cluster.assignment.shards[0][0]
        removed_from = rebalancer.remove_database(victim)
        assert victim not in cluster.database_names
        while_gone = cluster.submit_many(QUESTIONS)
        assert all(victim not in {route.database for route in routes}
                   for routes in while_gone)
        rebalancer.add_database(victim, shard_id=removed_from)
        after = [_signature(cluster.submit(question)) for question in QUESTIONS]
        assert after == before

    def test_rebalance_invalidates_only_the_affected_shard_cache(self, cluster):
        # Warm both shard caches, then move a database out of shard 0.
        cluster.submit_many(QUESTIONS)
        caches = [replica_set.workers[0].service.cache for replica_set in cluster.shards]
        assert all(len(cache) > 0 for cache in caches)
        rebalancer = ClusterRebalancer(cluster)
        victim = cluster.assignment.shards[0][0]
        rebalancer.remove_database(victim)
        # Shard 0's cache entries are stale (version-bumped, emptied on next
        # access); shard 1's survive verbatim.
        assert caches[0].catalog_version == 1
        assert caches[1].catalog_version == 0
        untouched = len(caches[1])
        cluster.submit_many(QUESTIONS)
        assert caches[1].stats()["invalidations"] == 0
        assert len(caches[1]) == untouched
        assert caches[0].stats()["invalidations"] > 0

    def test_catalog_version_counts_rebalances(self, cluster):
        rebalancer = ClusterRebalancer(cluster)
        victim = cluster.assignment.shards[1][0]
        assert cluster.catalog_version == 0
        rebalancer.remove_database(victim)
        rebalancer.add_database(victim)
        assert cluster.catalog_version == 2

    def test_add_prefers_the_least_loaded_shard(self, cluster):
        rebalancer = ClusterRebalancer(cluster)
        victim = cluster.assignment.shards[0][0]
        rebalancer.remove_database(victim)
        assert rebalancer.least_loaded_shard() == 0
        assert rebalancer.add_database(victim) == 0

    def test_move_database_relocates(self, cluster):
        rebalancer = ClusterRebalancer(cluster)
        database = cluster.assignment.shards[0][0]
        rebalancer.move_database(database, 1)
        assert cluster.shard_of(database) == 1
        rebalancer.move_database(database, 1)  # no-op: already there
        assert cluster.shard_of(database) == 1

    def test_invalid_rebalances_rejected(self, cluster):
        rebalancer = ClusterRebalancer(cluster)
        with pytest.raises(RebalanceError, match="outside the master"):
            rebalancer.add_database("mystery_db")
        with pytest.raises(RebalanceError, match="already served"):
            rebalancer.add_database(cluster.assignment.shards[0][0])
        with pytest.raises(RebalanceError, match="not currently served"):
            cluster_db = cluster.assignment.shards[0][0]
            rebalancer.remove_database(cluster_db)
            rebalancer.remove_database(cluster_db)
        with pytest.raises(RebalanceError, match="not currently served"):
            rebalancer.move_database(cluster_db, 1)
        with pytest.raises(RebalanceError, match="no shard"):
            rebalancer.add_database(cluster_db, shard_id=9)


# -- cluster checkpoints -------------------------------------------------------
class TestClusterCheckpoint:
    def test_round_trip_reproduces_identical_routes(self, master_router, tmp_path):
        config = ClusterConfig(num_shards=2, strategy="size_balanced")
        with ClusterRoutingService.from_router(master_router, config) as original:
            expected = [_full_signature(original.submit(question))
                        for question in QUESTIONS]
            original.notify_catalog_changed()
            path = save_cluster(original, tmp_path / "cluster-ckpt")
        with load_cluster(path) as reloaded:
            assert reloaded.assignment == \
                partition_catalog(master_router.graph.catalog, 2,
                                  strategy="size_balanced")
            assert reloaded.catalog_version == 1  # survives the restart
            actual = [_full_signature(reloaded.submit(question))
                      for question in QUESTIONS]
        assert actual == expected

    def test_manifest_structure(self, master_router, tmp_path):
        with ClusterRoutingService.from_router(
                master_router, ClusterConfig(num_shards=2)) as cluster:
            path = save_cluster(cluster, tmp_path / "cluster-ckpt")
        manifest = load_cluster_manifest(path)
        assert manifest["format"] == "repro-cluster-checkpoint"
        assert manifest["version"] == 1
        assert len(manifest["shards"]) == 2
        assert (path / "master" / "manifest.json").is_file()
        for entry in manifest["shards"]:
            assert (path / entry["dir"] / "weights.npz").is_file()

    def test_shard_checkpoint_boots_standalone(self, master_router, tmp_path):
        with ClusterRoutingService.from_router(
                master_router, ClusterConfig(num_shards=2)) as cluster:
            databases = cluster.assignment.shards[0]
            path = save_cluster(cluster, tmp_path / "cluster-ckpt")
        shard_router = SchemaRouter.from_checkpoint(path / "shard-00")
        assert tuple(shard_router.graph.catalog.database_names) == databases

    def test_load_with_replica_override(self, master_router, tmp_path):
        with ClusterRoutingService.from_router(
                master_router, ClusterConfig(num_shards=2)) as cluster:
            expected = [_full_signature(cluster.submit(question))
                        for question in QUESTIONS[:3]]
            path = save_cluster(cluster, tmp_path / "cluster-ckpt")
        # The override may change serving knobs, but routing-affecting knobs
        # (escalation, beam budgets) always come from the checkpoint.
        override = ClusterConfig(num_shards=2, replicas=2,
                                 shard_timeout_seconds=5.0,
                                 escalation_threshold=None, shard_num_beams=7)
        with load_cluster(path, config=override) as replicated:
            assert all(replica_set.num_replicas == 2
                       for replica_set in replicated.shards)
            assert replicated.config.escalation_threshold == 0.8
            assert [_full_signature(replicated.submit(question))
                    for question in QUESTIONS[:3]] == expected

    def test_invalid_checkpoints_rejected(self, master_router, tmp_path):
        with pytest.raises(CheckpointError, match="cluster.json"):
            load_cluster(tmp_path / "nowhere")
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "cluster.json").write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(CheckpointError, match="not a cluster checkpoint"):
            load_cluster(bad)
        with ClusterRoutingService.from_router(
                master_router, ClusterConfig(num_shards=2)) as cluster:
            saved_master = cluster.master_router
            cluster.master_router = None
            with pytest.raises(CheckpointError, match="master router"):
                save_cluster(cluster, tmp_path / "no-master")
            cluster.master_router = saved_master
