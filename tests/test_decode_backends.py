"""Differential tests: the vectorized decode backend vs. the loop reference.

The contract under test is *bit-identity*: for any catalog, seed, batch size,
and beam budget, ``decode_backend="vectorized"`` must return exactly the
hypotheses of ``decode_backend="loop"`` -- token-for-token the same sequences
with double-for-double the same scores (compared via C99 hex formatting, so
not a single bit may drift).  Everything downstream -- route caches, shard
merges, cross-process agreement -- leans on this property.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.graph import SchemaGraph
from repro.core.questioner import TemplateQuestioner
from repro.core.router import RouterConfig, SchemaRouter
from repro.core.sampling import SchemaSampler
from repro.core.synthesis import SynthesisConfig, synthesize_training_data
from repro.datasets import CollectionConfig, build_collection
from repro.nn.decoding import (
    diverse_beam_search,
    diverse_beam_search_batch,
    diverse_beam_search_loop,
)
from repro.nn.seq2seq import Seq2SeqConfig, Seq2SeqModel
from repro.nn.tokenizer import WordTokenizer, build_vocabulary
from repro.nn.trainer import Seq2SeqTrainer, TrainerConfig


def _hypothesis_key(hypothesis):
    return (tuple(hypothesis.tokens), hypothesis.score.hex(), hypothesis.finished)


def _route_key(routes):
    return [(route.database, route.tables, route.score.hex()) for route in routes]


# ---------------------------------------------------------------------------
# Raw engine level: a toy Seq2Seq model, no router on top.
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def toy_model():
    source_vocab = build_vocabulary(
        ["alpha beta", "gamma delta", "epsilon zeta", "eta theta kappa"])
    target_vocab = build_vocabulary(
        [], extra_tokens=["one", "two", "three", "four", "five", "six"])
    source_tokenizer = WordTokenizer(source_vocab)
    target_tokenizer = WordTokenizer(target_vocab)
    data = [("alpha beta", ["one", "two"]),
            ("gamma delta", ["three"]),
            ("epsilon zeta", ["four", "one"]),
            ("eta theta kappa", ["five", "two", "one"])]
    pairs = [(source_tokenizer.encode_text(question),
              target_tokenizer.encode_tokens(target))
             for question, target in data]
    model = Seq2SeqModel(Seq2SeqConfig(len(source_vocab), len(target_vocab),
                                       embedding_dim=16, hidden_dim=24, seed=3))
    Seq2SeqTrainer(model, TrainerConfig(epochs=30, batch_size=4,
                                        learning_rate=0.02, seed=3)).train(pairs)
    questions = [question for question, _ in data] + ["alpha delta", "zeta beta theta"]
    encoded = model.encode_numpy_batch(
        [source_tokenizer.encode_text(question) for question in questions])
    return model, target_vocab, encoded


BUDGETS = [(1, 1, 0.0), (4, 1, 0.0), (4, 2, 2.0), (6, 3, 1.5), (6, 6, 2.0)]


class TestEngineDifferential:
    @pytest.mark.parametrize("num_beams,num_groups,penalty", BUDGETS)
    def test_batch_matches_loop_unconstrained(self, toy_model, num_beams,
                                              num_groups, penalty):
        model, vocabulary, encoded = toy_model
        batched = diverse_beam_search_batch(
            model, encoded, vocabulary.bos_id, vocabulary.eos_id,
            num_beams=num_beams, num_groups=num_groups,
            diversity_penalty=penalty, max_length=8)
        for item, one in zip(encoded, batched):
            looped = diverse_beam_search_loop(
                model, (), vocabulary.bos_id, vocabulary.eos_id,
                num_beams=num_beams, num_groups=num_groups,
                diversity_penalty=penalty, max_length=8, encoded=item)
            assert [_hypothesis_key(h) for h in one] == \
                [_hypothesis_key(h) for h in looped]

    @pytest.mark.parametrize("num_beams,num_groups,penalty", BUDGETS)
    def test_batch_matches_loop_constrained(self, toy_model, num_beams,
                                            num_groups, penalty):
        """A synthetic constraint (even ids after even-length prefixes)."""
        model, vocabulary, encoded = toy_model
        size = model.config.target_vocab_size

        def constraint(prefix):
            parity = len(prefix) % 2
            return {token for token in range(size) if token % 2 == parity} \
                | {vocabulary.eos_id}

        batched = diverse_beam_search_batch(
            model, encoded, vocabulary.bos_id, vocabulary.eos_id,
            num_beams=num_beams, num_groups=num_groups,
            diversity_penalty=penalty, max_length=8, constraint=constraint)
        for item, one in zip(encoded, batched):
            looped = diverse_beam_search_loop(
                model, (), vocabulary.bos_id, vocabulary.eos_id,
                num_beams=num_beams, num_groups=num_groups,
                diversity_penalty=penalty, max_length=8,
                constraint=constraint, encoded=item)
            assert [_hypothesis_key(h) for h in one] == \
                [_hypothesis_key(h) for h in looped]

    def test_wrapper_routes_through_batch_engine(self, toy_model):
        model, vocabulary, encoded = toy_model
        direct = diverse_beam_search(model, (), vocabulary.bos_id, vocabulary.eos_id,
                                     num_beams=4, num_groups=2, max_length=8,
                                     encoded=encoded[0])
        batched = diverse_beam_search_batch(model, [encoded[0]], vocabulary.bos_id,
                                            vocabulary.eos_id, num_beams=4,
                                            num_groups=2, max_length=8)[0]
        assert [_hypothesis_key(h) for h in direct] == \
            [_hypothesis_key(h) for h in batched]

    def test_empty_batch(self, toy_model):
        model, vocabulary, _ = toy_model
        assert diverse_beam_search_batch(model, [], vocabulary.bos_id,
                                         vocabulary.eos_id) == []

    def test_invalid_budget_rejected(self, toy_model):
        model, vocabulary, encoded = toy_model
        with pytest.raises(ValueError):
            diverse_beam_search_batch(model, encoded, vocabulary.bos_id,
                                      vocabulary.eos_id, num_beams=5, num_groups=3)

    @pytest.mark.parametrize("kernel", ["exact", "fast"])
    def test_beam_budget_wider_than_vocabulary(self, toy_model, kernel):
        """top_n clamps at V: a beam budget wider than the target vocabulary
        must decode (matching the loop backend's slice-truncation), not
        overrun the candidate rows."""
        model, vocabulary, encoded = toy_model
        vocab_size = model.config.target_vocab_size
        num_beams = vocab_size + 4  # top_n would exceed V unclamped
        batched = diverse_beam_search_batch(
            model, encoded[:2], vocabulary.bos_id, vocabulary.eos_id,
            num_beams=num_beams, num_groups=1, max_length=6, kernel=kernel)
        looped = [diverse_beam_search_loop(
            model, (), vocabulary.bos_id, vocabulary.eos_id,
            num_beams=num_beams, num_groups=1, max_length=6, encoded=item)
            for item in encoded[:2]]
        for one, reference in zip(batched, looped):
            assert [h.tokens for h in one] == [h.tokens for h in reference]
            if kernel == "exact":
                assert [_hypothesis_key(h) for h in one] == \
                    [_hypothesis_key(h) for h in reference]

    def test_batch_composition_invariance(self, toy_model):
        """A question decodes identically alone, in pairs, and in the full
        batch -- the property route caches and shard merges rely on."""
        model, vocabulary, encoded = toy_model
        full = diverse_beam_search_batch(
            model, encoded, vocabulary.bos_id, vocabulary.eos_id,
            num_beams=4, num_groups=2, max_length=8)
        for index, item in enumerate(encoded):
            alone = diverse_beam_search_batch(
                model, [item], vocabulary.bos_id, vocabulary.eos_id,
                num_beams=4, num_groups=2, max_length=8)[0]
            assert [_hypothesis_key(h) for h in alone] == \
                [_hypothesis_key(h) for h in full[index]]
        pair = diverse_beam_search_batch(
            model, [encoded[-1], encoded[0]], vocabulary.bos_id, vocabulary.eos_id,
            num_beams=4, num_groups=2, max_length=8)
        assert [_hypothesis_key(h) for h in pair[0]] == \
            [_hypothesis_key(h) for h in full[-1]]
        assert [_hypothesis_key(h) for h in pair[1]] == \
            [_hypothesis_key(h) for h in full[0]]


# ---------------------------------------------------------------------------
# Router level: trained routers over synthetic catalogs, graph constraints on.
# ---------------------------------------------------------------------------
def _train_router(seed: int, num_databases: int, **config_changes) -> tuple:
    dataset = build_collection(CollectionConfig(
        name=f"diff-{seed}", num_databases=num_databases, rows_per_table=8,
        examples_per_database=6, seed=seed))
    graph = SchemaGraph.from_catalog(dataset.catalog)
    questioner = TemplateQuestioner(catalog=dataset.catalog, seed=seed)
    sampler = SchemaSampler(graph, seed=seed)
    report = synthesize_training_data(sampler, questioner,
                                      SynthesisConfig(num_samples=150))
    config = RouterConfig(epochs=6, embedding_dim=20, hidden_dim=32,
                          num_beams=6, beam_groups=6, seed=seed, **config_changes)
    router = SchemaRouter(graph=graph, config=config)
    router.fit(report.examples)
    questions = [example.question for example in report.examples]
    return router, questions


def _loop_twin(router: SchemaRouter) -> SchemaRouter:
    """The same trained weights behind the loop reference backend."""
    twin = SchemaRouter(graph=router.graph,
                        config=router.config.ablated(decode_backend="loop"))
    twin.restore(router.model, router.source_vocabulary, router.target_vocabulary,
                 router.training_losses)
    return twin


@pytest.fixture(scope="module", params=[(11, 5), (29, 8)],
                ids=["catalog-small", "catalog-wide"])
def trained_pair(request):
    seed, num_databases = request.param
    router, questions = _train_router(seed, num_databases)
    return router, _loop_twin(router), questions


class TestRouterDifferential:
    @pytest.mark.parametrize("batch_size", [1, 2, 5, 9])
    def test_backends_bit_identical_across_batch_sizes(self, trained_pair, batch_size):
        router, loop_router, questions = trained_pair
        rng = np.random.default_rng(batch_size)
        picked = [questions[int(i)] for i in
                  rng.integers(0, len(questions), size=batch_size)]
        vectorized = router.route_batch(picked)
        looped = loop_router.route_batch(picked)
        assert [_route_key(r) for r in vectorized] == [_route_key(r) for r in looped]

    @pytest.mark.parametrize("num_beams,beam_groups", [(1, 1), (4, 2), (6, 6), (8, 1)])
    def test_backends_bit_identical_across_beam_budgets(self, trained_pair,
                                                        num_beams, beam_groups):
        router, _, questions = trained_pair
        vec = SchemaRouter(graph=router.graph, config=router.config.ablated(
            num_beams=num_beams, beam_groups=beam_groups))
        vec.restore(router.model, router.source_vocabulary, router.target_vocabulary)
        looped = _loop_twin(vec)
        picked = questions[:6]
        assert [_route_key(r) for r in vec.route_batch(picked)] == \
            [_route_key(r) for r in looped.route_batch(picked)]

    def test_backends_agree_without_constraint_or_diversity(self):
        router, questions = _train_router(17, 4, constrained_decoding=False,
                                          diverse_beam=False)
        looped = _loop_twin(router)
        picked = questions[:8]
        assert [_route_key(r) for r in router.route_batch(picked)] == \
            [_route_key(r) for r in looped.route_batch(picked)]

    def test_route_matches_route_batch(self, trained_pair):
        router, _, questions = trained_pair
        picked = questions[:5]
        batched = router.route_batch(picked)
        for question, expected in zip(picked, batched):
            assert _route_key(router.route(question)) == _route_key(expected)

    def test_routes_independent_of_batch_composition(self, trained_pair):
        """End to end (encode + decode), a question's routes are bit-identical
        no matter which micro-batch it rides in -- the property the route
        cache and cross-shard merging lean on."""
        router, _, questions = trained_pair
        target = questions[0]
        alone = router.route_batch([target])[0]
        shuffled = router.route_batch(questions[3:8] + [target, questions[1]])[5]
        assert _route_key(alone) == _route_key(shuffled)

    def test_empty_and_whitespace_questions_route(self, trained_pair):
        """Empty input takes the defined pad path on both backends."""
        router, loop_router, questions = trained_pair
        batch = ["", "   ", questions[0], "\t\n"]
        vectorized = router.route_batch(batch)
        looped = loop_router.route_batch(batch)
        assert [_route_key(r) for r in vectorized] == [_route_key(r) for r in looped]
        # Blank questions all reduce to the same pad-token encoding.
        assert _route_key(vectorized[0]) == _route_key(vectorized[1])
        assert _route_key(vectorized[0]) == _route_key(vectorized[3])

    def test_checkpoint_round_trips_decode_backend(self, trained_pair, tmp_path):
        from repro.serving.checkpoint import load_router, save_router

        router, loop_router, questions = trained_pair
        save_router(loop_router, tmp_path / "loop-ckpt")
        restored = load_router(tmp_path / "loop-ckpt")
        assert restored.config.decode_backend == "loop"
        picked = questions[:4]
        assert [_route_key(r) for r in restored.route_batch(picked)] == \
            [_route_key(r) for r in router.route_batch(picked)]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            RouterConfig(decode_backend="turbo")


# ---------------------------------------------------------------------------
# The fast tier: flat-GEMM slot-dense decoding, tolerance-checked agreement.
# ---------------------------------------------------------------------------
def _fast_twin(router: SchemaRouter) -> SchemaRouter:
    twin = SchemaRouter(graph=router.graph,
                        config=router.config.ablated(decode_backend="fast"))
    twin.restore(router.model, router.source_vocabulary, router.target_vocabulary,
                 router.training_losses)
    return twin


def _top1_key(routes):
    return (routes[0].database, routes[0].tables) if routes else None


class TestFastTier:
    def test_fast_backend_accepted(self):
        assert RouterConfig(decode_backend="fast").decode_backend == "fast"

    def test_invalid_kernel_rejected(self, toy_model):
        model, vocabulary, encoded = toy_model
        with pytest.raises(ValueError):
            diverse_beam_search_batch(model, encoded, vocabulary.bos_id,
                                      vocabulary.eos_id, num_beams=4,
                                      num_groups=2, kernel="warp")

    def test_engine_fast_kernel_agrees_at_tolerance(self, toy_model):
        """Same search over the fast kernel: same tokens, near-equal scores
        (flat GEMMs may drift in the last ulps, never more)."""
        model, vocabulary, encoded = toy_model
        exact = diverse_beam_search_batch(
            model, encoded, vocabulary.bos_id, vocabulary.eos_id,
            num_beams=4, num_groups=2, max_length=8)
        fast = diverse_beam_search_batch(
            model, encoded, vocabulary.bos_id, vocabulary.eos_id,
            num_beams=4, num_groups=2, max_length=8, kernel="fast")
        for exact_hyps, fast_hyps in zip(exact, fast):
            assert [h.tokens for h in exact_hyps] == [h.tokens for h in fast_hyps]
            for a, b in zip(exact_hyps, fast_hyps):
                assert a.score == pytest.approx(b.score, rel=1e-9, abs=1e-12)

    def test_fast_honors_none_unconstrained_steps(self, toy_model):
        """A constraint that only restricts early steps (returning None --
        "unconstrained" -- afterwards) must not leave stale restrictive masks
        in the fast tier's resident grid."""
        model, vocabulary, encoded = toy_model

        def constraint(prefix):
            if len(prefix) == 0:
                return {3, 5, vocabulary.eos_id}
            return None

        exact = diverse_beam_search_batch(
            model, encoded, vocabulary.bos_id, vocabulary.eos_id,
            num_beams=4, num_groups=2, max_length=8, constraint=constraint)
        fast = diverse_beam_search_batch(
            model, encoded, vocabulary.bos_id, vocabulary.eos_id,
            num_beams=4, num_groups=2, max_length=8, constraint=constraint,
            kernel="fast")
        for exact_hyps, fast_hyps in zip(exact, fast):
            assert [h.tokens for h in exact_hyps] == [h.tokens for h in fast_hyps]

    def test_refit_clears_stale_parse_cache(self):
        """fit() must drop parse entries cached under the previous target
        vocabulary (restore() already does)."""
        router, questions = _train_router(31, 3)
        router.route_batch(questions[:2])
        assert router._parse_cache
        questioner = TemplateQuestioner(catalog=router.graph.catalog, seed=5)
        sampler = SchemaSampler(router.graph, seed=5)
        report = synthesize_training_data(sampler, questioner,
                                          SynthesisConfig(num_samples=60))
        router.fit(report.examples)
        assert not router._parse_cache

    @pytest.mark.parametrize("batch_size", [1, 3, 8, 13])
    def test_fast_routes_agree_with_vectorized(self, trained_pair, batch_size):
        router, _, questions = trained_pair
        fast = _fast_twin(router)
        rng = np.random.default_rng(100 + batch_size)
        picked = [questions[int(i)] for i in
                  rng.integers(0, len(questions), size=batch_size)]
        agreement = sum(
            _top1_key(ours) == _top1_key(theirs)
            for ours, theirs in zip(fast.route_batch(picked),
                                    router.route_batch(picked))
        ) / batch_size
        assert agreement >= 0.99

    @pytest.mark.parametrize("num_beams,beam_groups", [(1, 1), (6, 3), (8, 1),
                                                       (10, 5), (10, 10)])
    def test_fast_agrees_across_beam_budgets(self, trained_pair,
                                             num_beams, beam_groups):
        """Both the one-beam-per-group and general selection shapes, and the
        question-compaction tail, reproduce the exact engine's decisions."""
        router, _, questions = trained_pair
        vec = SchemaRouter(graph=router.graph, config=router.config.ablated(
            num_beams=num_beams, beam_groups=beam_groups))
        vec.restore(router.model, router.source_vocabulary,
                    router.target_vocabulary)
        fast = _fast_twin(vec)
        picked = questions[:10]
        matches = sum(
            _top1_key(ours) == _top1_key(theirs)
            for ours, theirs in zip(fast.route_batch(picked),
                                    vec.route_batch(picked)))
        assert matches >= 9

    def test_fast_unconstrained_and_plain_beam(self):
        router, questions = _train_router(23, 4, constrained_decoding=False,
                                          diverse_beam=False)
        fast = _fast_twin(router)
        picked = questions[:8]
        matches = sum(
            _top1_key(ours) == _top1_key(theirs)
            for ours, theirs in zip(fast.route_batch(picked),
                                    router.route_batch(picked)))
        assert matches >= 7

    def test_checkpoint_round_trips_fast_backend(self, trained_pair, tmp_path):
        from repro.serving.checkpoint import load_router, save_router

        router, _, questions = trained_pair
        fast = _fast_twin(router)
        save_router(fast, tmp_path / "fast-ckpt")
        restored = load_router(tmp_path / "fast-ckpt")
        assert restored.config.decode_backend == "fast"
        picked = questions[:4]
        # The restored fast router reproduces the fast router's own routes
        # exactly: same weights, same kernel, same machine.
        assert [_route_key(r) for r in restored.route_batch(picked)] == \
            [_route_key(r) for r in fast.route_batch(picked)]

    def test_cluster_rides_fast_backend(self, trained_pair, tmp_path):
        """The knob round-trips through cluster checkpoints: every projected
        shard (and the escalation tier) decodes on the fast tier."""
        from repro.cluster import (
            ClusterConfig,
            ClusterRoutingService,
            load_cluster,
            save_cluster,
        )

        router, _, questions = trained_pair
        fast = _fast_twin(router)
        cluster = ClusterRoutingService.from_router(
            fast, ClusterConfig(num_shards=2, replicas=1))
        try:
            for shard in cluster._shards:
                worker = shard.workers[0]
                assert worker.router.config.decode_backend == "fast"
                if worker.careful_service is not None:
                    careful = worker.careful_service.router
                    assert careful.config.decode_backend == "fast"
            checkpoint = save_cluster(cluster, tmp_path / "fast-cluster")
        finally:
            cluster.close()
        restored = load_cluster(checkpoint)
        try:
            assert restored.master_router.config.decode_backend == "fast"
            for shard in restored._shards:
                assert shard.workers[0].router.config.decode_backend == "fast"
            routes = restored.submit_many(questions[:4])
        finally:
            restored.close()
        assert len(routes) == 4
