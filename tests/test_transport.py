"""Wire-protocol tests: framing round-trips, malformed streams, deadlines.

The protocol is the trust boundary between the dispatcher and its subprocess
workers, so the tests lean adversarial: every way a stream can lie about
itself (truncated, oversized, foreign, unknown types, wrong version) must map
to a *specific* exception, and everything that round-trips must round-trip
bit-exactly -- scores included, because the cross-shard merge ranks on them.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time

import pytest

from repro.cluster.transport import (
    BINARY_HEADER,
    BINARY_KEY,
    FRAME_HEADER,
    FRAME_MAGIC,
    MAX_FRAME_BYTES,
    MESSAGE_TYPES,
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    FrameReader,
    FrameTooLargeError,
    FrameWriter,
    ProtocolError,
    TransportTimeoutError,
    TruncatedFrameError,
    UnknownMessageError,
    VersionMismatchError,
    check_protocol,
    encode_frame,
    error_message,
    hello_message,
    read_frame,
    route_lists_from_binary,
    route_lists_from_payload,
    route_lists_to_binary,
    route_lists_to_payload,
    write_frame,
)
from repro.core.router import SchemaRoute, merge_route_lists


def _frame_of(message: dict) -> bytes:
    return encode_frame(message)


def _read_back(data: bytes):
    return read_frame(io.BytesIO(data))


# -- round trips ---------------------------------------------------------------
class TestFraming:
    SAMPLE_MESSAGES = [
        {"type": "hello", "protocol": 1, "shard_id": 3, "databases": ["a", "b"],
         "pid": 42},
        {"type": "hello_ack", "protocol": 1},
        {"type": "route_request", "id": 1, "question": "how many singers",
         "max_candidates": 3, "careful": False},
        {"type": "route_batch_request", "id": 2, "questions": ["q1", "q2"],
         "max_candidates": None, "careful": True},
        {"type": "route_response", "id": 2, "routes": [[], []]},
        {"type": "stats_request", "id": 3},
        {"type": "stats_response", "id": 3, "stats": {"counters": {"requests": 7}}},
        {"type": "invalidate_cache", "id": 4},
        {"type": "ok", "id": 4},
        {"type": "ping", "id": 5},
        {"type": "pong", "id": 5, "pid": 42},
        {"type": "shutdown", "id": 6},
        {"type": "shutdown_ack", "id": 6},
        {"type": "error", "id": 7, "error": "ValueError", "message": "boom"},
    ]

    @pytest.mark.parametrize("message", SAMPLE_MESSAGES,
                             ids=[m["type"] for m in SAMPLE_MESSAGES])
    def test_every_message_type_round_trips(self, message):
        assert _read_back(_frame_of(message)) == message

    def test_frames_concatenate_cleanly(self):
        stream = io.BytesIO(_frame_of({"type": "ping", "id": 1})
                            + _frame_of({"type": "pong", "id": 1}))
        assert read_frame(stream)["type"] == "ping"
        assert read_frame(stream)["type"] == "pong"
        assert read_frame(stream) is None  # clean EOF at a frame boundary

    def test_write_frame_flushes_the_stream(self):
        class Recorder(io.BytesIO):
            flushed = False

            def flush(self):
                self.flushed = True
                return super().flush()

        stream = Recorder()
        write_frame(stream, {"type": "ping", "id": 9})
        assert stream.flushed
        assert _read_back(stream.getvalue()) == {"type": "ping", "id": 9}

    def test_empty_stream_is_clean_eof(self):
        assert _read_back(b"") is None


# -- malformed streams ---------------------------------------------------------
class TestMalformedStreams:
    def test_truncated_header_raises(self):
        frame = _frame_of({"type": "ping", "id": 1})
        for cut in range(1, FRAME_HEADER.size):
            with pytest.raises(TruncatedFrameError):
                _read_back(frame[:cut])

    def test_truncated_payload_raises(self):
        frame = _frame_of({"type": "ping", "id": 1})
        for cut in range(FRAME_HEADER.size, len(frame)):
            with pytest.raises(TruncatedFrameError):
                _read_back(frame[:cut])

    def test_oversized_frame_refused_on_read(self):
        header = FRAME_HEADER.pack(FRAME_MAGIC, 0, MAX_FRAME_BYTES + 1)
        with pytest.raises(FrameTooLargeError):
            _read_back(header + b"x" * 16)

    def test_oversized_payload_refused_on_encode(self):
        with pytest.raises(FrameTooLargeError):
            encode_frame({"type": "ping", "blob": "x" * 64}, max_frame_bytes=32)

    def test_small_read_cap_rejects_big_but_valid_frames(self):
        frame = _frame_of({"type": "ping", "payload": "y" * 128})
        with pytest.raises(FrameTooLargeError):
            read_frame(io.BytesIO(frame), max_frame_bytes=64)

    def test_foreign_magic_raises(self):
        frame = bytearray(_frame_of({"type": "ping", "id": 1}))
        frame[0:2] = b"GE"  # an HTTP GET is not our protocol
        with pytest.raises(ProtocolError):
            _read_back(bytes(frame))

    def test_unknown_payload_kind_raises(self):
        payload = json.dumps({"type": "ping"}).encode()
        frame = FRAME_HEADER.pack(FRAME_MAGIC, 9, len(payload)) + payload
        with pytest.raises(ProtocolError):
            _read_back(frame)

    def test_non_json_payload_raises(self):
        payload = b"\xff\xfe not json"
        frame = FRAME_HEADER.pack(FRAME_MAGIC, 0, len(payload)) + payload
        with pytest.raises(ProtocolError):
            _read_back(frame)

    def test_non_object_payload_raises(self):
        payload = json.dumps(["route_request"]).encode()
        frame = FRAME_HEADER.pack(FRAME_MAGIC, 0, len(payload)) + payload
        with pytest.raises(ProtocolError):
            _read_back(frame)

    def test_unknown_message_type_raises_on_read(self):
        payload = json.dumps({"type": "route_batch_request_v99"}).encode()
        frame = FRAME_HEADER.pack(FRAME_MAGIC, 0, len(payload)) + payload
        with pytest.raises(UnknownMessageError):
            _read_back(frame)

    def test_unknown_message_type_refused_on_encode(self):
        with pytest.raises(UnknownMessageError):
            encode_frame({"type": "teleport"})

    def test_every_prefix_of_every_sample_fails_loudly_or_cleanly(self):
        """Property: any prefix of a valid frame either reads as clean EOF
        (empty), raises a protocol error, or is the complete frame."""
        for message in TestFraming.SAMPLE_MESSAGES:
            frame = _frame_of(message)
            for cut in range(len(frame) + 1):
                prefix = frame[:cut]
                if cut == 0:
                    assert _read_back(prefix) is None
                elif cut < len(frame):
                    with pytest.raises(ProtocolError):
                        _read_back(prefix)
                else:
                    assert _read_back(prefix) == message


# -- version handshake ---------------------------------------------------------
class TestHandshake:
    def test_hello_announces_identity_and_version(self):
        hello = hello_message(2, ("db_a", "db_b"), 1234)
        assert hello == {"type": "hello", "protocol": PROTOCOL_VERSION,
                         "shard_id": 2, "databases": ["db_a", "db_b"], "pid": 1234}
        check_protocol(hello)  # does not raise

    @pytest.mark.parametrize("spoken", [0, PROTOCOL_VERSION + 1, 99, None, "1",
                                        True])
    def test_version_mismatch_raises(self, spoken):
        with pytest.raises(VersionMismatchError):
            check_protocol({"type": "hello", "protocol": spoken})

    @pytest.mark.parametrize(
        "spoken", list(range(MIN_PROTOCOL_VERSION, PROTOCOL_VERSION + 1)))
    def test_supported_version_range_is_accepted(self, spoken):
        check_protocol({"type": "hello", "protocol": spoken})  # does not raise

    def test_error_message_shape(self):
        frame = error_message(17, ValueError("no such shard"))
        assert frame == {"type": "error", "id": 17, "error": "ValueError",
                         "message": "no such shard"}
        assert _read_back(_frame_of(frame)) == frame


# -- route payloads ------------------------------------------------------------
class TestRoutePayloads:
    AWKWARD_SCORES = [0.1 + 0.2, -1.5e-300, -123.456789012345678, 5e-324,
                      -0.0, 1 / 3, -17.000000000000004]

    def test_scores_round_trip_bit_exactly(self):
        routes = [SchemaRoute("db", ("t",), score) for score in self.AWKWARD_SCORES]
        payload = json.loads(json.dumps(route_lists_to_payload([routes])))
        restored = route_lists_from_payload(payload)[0]
        for original, back in zip(routes, restored):
            assert back == original
            assert back.score.hex() == original.score.hex()

    def test_merge_is_invariant_under_serialization(self):
        """The acceptance property: merging shard answers that crossed the
        wire must rank identically to merging the in-process originals."""
        shard_a = [SchemaRoute("db1", ("t1", "t2"), -1.3000000000000007),
                   SchemaRoute("db2", ("t3",), -2.0999999999999996)]
        shard_b = [SchemaRoute("db3", ("t4",), -1.2999999999999998),
                   SchemaRoute("db1", ("t1",), -4.7)]
        local = merge_route_lists([shard_a, shard_b], max_candidates=3)
        wired = merge_route_lists([
            route_lists_from_payload(
                json.loads(json.dumps(route_lists_to_payload([routes]))))[0]
            for routes in (shard_a, shard_b)
        ], max_candidates=3)
        assert wired == local

    def test_malformed_route_payload_raises(self):
        with pytest.raises(ProtocolError):
            route_lists_from_payload([[{"database": "db"}]])  # no tables/score
        with pytest.raises(ProtocolError):
            route_lists_from_payload([[{"database": "db", "tables": ["t"],
                                        "score_hex": "not-a-float"}]])


# -- binary route payloads (protocol 3) ----------------------------------------
class TestBinaryRoutePayloads:
    def _route_lists(self):
        scores = TestRoutePayloads.AWKWARD_SCORES
        return [
            [SchemaRoute("concert_hall", ("stadium", "singer"), scores[0]),
             SchemaRoute("world_atlas", ("city",), scores[1])],
            [],  # a question with no routes still takes a slot
            [SchemaRoute("concert_hall", (), scores[index])
             for index in range(2, len(scores))],
        ]

    def test_binary_segment_round_trips_bit_exactly(self):
        route_lists = self._route_lists()
        descriptor, segment = route_lists_to_binary(route_lists)
        # the descriptor is plain JSON; the segment is raw bytes
        descriptor = json.loads(json.dumps(descriptor))
        restored = route_lists_from_binary(descriptor, segment)
        assert restored == route_lists
        for routes, back in zip(route_lists, restored):
            for original, decoded in zip(routes, back):
                assert decoded.score.hex() == original.score.hex()

    def test_binary_form_agrees_with_the_json_form(self):
        route_lists = self._route_lists()
        descriptor, segment = route_lists_to_binary(route_lists)
        via_json = route_lists_from_payload(
            json.loads(json.dumps(route_lists_to_payload(route_lists))))
        assert route_lists_from_binary(descriptor, segment) == via_json

    def test_string_table_is_interned(self):
        descriptor, _ = route_lists_to_binary(self._route_lists())
        strings = descriptor["strings"]
        assert len(strings) == len(set(strings))  # each name stored once
        assert set(strings) == {"concert_hall", "stadium", "singer",
                                "world_atlas", "city"}

    def test_binary_frame_round_trips(self):
        descriptor, segment = route_lists_to_binary(self._route_lists())
        message = {"type": "route_response", "id": 9,
                   "routes_binary": descriptor}
        frame = encode_frame(message, binary=segment)
        back = _read_back(frame)
        assert back.pop(BINARY_KEY) == segment
        assert back == message
        assert route_lists_from_binary(back["routes_binary"], segment) \
            == self._route_lists()

    def test_binary_key_is_reserved_on_encode(self):
        with pytest.raises(ProtocolError):
            encode_frame({"type": "route_response", "id": 1, BINARY_KEY: b"x"})

    def test_every_prefix_of_a_binary_frame_fails_loudly_or_cleanly(self):
        """The kind-1 truncation sweep: cutting a binary frame anywhere --
        header, JSON sub-header, or mid-segment -- must read as clean EOF
        (empty) or raise, never hand back a short segment as complete."""
        descriptor, segment = route_lists_to_binary(self._route_lists())
        frame = encode_frame({"type": "route_response", "id": 5,
                              "routes_binary": descriptor}, binary=segment)
        for cut in range(len(frame)):
            prefix = frame[:cut]
            if cut == 0:
                assert _read_back(prefix) is None
            else:
                with pytest.raises(ProtocolError):
                    _read_back(prefix)
        restored = _read_back(frame)
        assert restored[BINARY_KEY] == segment

    def test_lying_json_length_raises(self):
        """A kind-1 frame whose JSON sub-header length overruns the payload
        is truncation, not an index error."""
        payload = json.dumps({"type": "ping", "id": 1}).encode()
        body = BINARY_HEADER.pack(len(payload) + 50) + payload
        frame = FRAME_HEADER.pack(FRAME_MAGIC, 1, len(body)) + body
        with pytest.raises(TruncatedFrameError):
            _read_back(frame)

    def test_large_segments_take_the_vectorized_path_bit_exactly(self):
        """Above SMALL_SEGMENT_ROUTES the codec switches from struct to the
        vectorized encoder; the large path must round-trip bit-exactly too
        (every other test in this class fits in the struct path)."""
        from repro.cluster.transport import SMALL_SEGMENT_ROUTES

        scores = TestRoutePayloads.AWKWARD_SCORES
        routes_per_list = SMALL_SEGMENT_ROUTES // 4 + 1
        route_lists = [
            [SchemaRoute(f"db_{index}_{slot}", (f"t{slot}",),
                         scores[(index * 31 + slot) % len(scores)])
             for slot in range(routes_per_list)]
            for index in range(5)
        ]
        total_routes = sum(len(routes) for routes in route_lists)
        assert total_routes > SMALL_SEGMENT_ROUTES  # really the large path
        descriptor, segment = route_lists_to_binary(route_lists)
        assert descriptor["routes"] == total_routes
        restored = route_lists_from_binary(
            json.loads(json.dumps(descriptor)), segment)
        assert restored == route_lists
        for routes, back in zip(route_lists, restored):
            for original, decoded in zip(routes, back):
                assert decoded.score.hex() == original.score.hex()

    def test_segment_descriptor_mismatches_raise(self):
        descriptor, segment = route_lists_to_binary(self._route_lists())
        with pytest.raises(ProtocolError):  # short segment
            route_lists_from_binary(descriptor, segment[:-1])
        with pytest.raises(ProtocolError):  # long segment
            route_lists_from_binary(descriptor, segment + b"\x00")
        with pytest.raises(ProtocolError):  # missing fields
            route_lists_from_binary({"questions": 1}, b"")
        lying = dict(descriptor, routes=descriptor["routes"] + 1)
        with pytest.raises(ProtocolError):
            route_lists_from_binary(lying, segment)
        # a token index outside the string table must be caught, not crash
        no_strings = dict(descriptor, strings=[])
        with pytest.raises(ProtocolError):
            route_lists_from_binary(no_strings, segment)


class TestHotPathEncoding:
    def test_handshake_frames_are_deterministic(self):
        """hello / hello_ack keep sorted keys: they are compared and logged
        byte-for-byte across versions."""
        message = {"type": "hello", "protocol": PROTOCOL_VERSION, "shard_id": 1,
                   "databases": ["a"], "pid": 7}
        shuffled = {key: message[key]
                    for key in reversed(list(message))}
        assert encode_frame(message) == encode_frame(shuffled)

    def test_hot_path_frames_skip_key_sorting(self):
        """Request/response frames are NOT canonicalized: the encoder keeps
        insertion order (cheaper), and the reader accepts both shapes."""
        message = {"type": "route_batch_request", "id": 1, "questions": ["q"],
                   "careful": False}
        reordered = {key: message[key] for key in reversed(list(message))}
        assert encode_frame(message) != encode_frame(reordered)
        assert _read_back(encode_frame(message)) \
            == _read_back(encode_frame(reordered))

    def test_canonical_encoding_restores_the_protocol_2_bytes(self):
        """``canonical=True`` reproduces the pre-multiplexing wire exactly:
        sorted keys regardless of insertion order, so frames sent to a
        protocol-2 peer are byte-identical to what the old transport sent."""
        message = {"type": "route_batch_request", "id": 1, "questions": ["q"],
                   "careful": False}
        reordered = {key: message[key] for key in reversed(list(message))}
        canonical = encode_frame(message, canonical=True)
        assert canonical == encode_frame(reordered, canonical=True)
        assert canonical == encode_frame(dict(sorted(message.items())))
        assert _read_back(canonical) == message


# -- the deadline-capable reader ----------------------------------------------
class TestFrameReader:
    def _pipe(self):
        read_fd, write_fd = os.pipe()
        return os.fdopen(read_fd, "rb", buffering=0), os.fdopen(write_fd, "wb",
                                                                buffering=0)

    def test_reads_whole_frames(self):
        reader_file, writer_file = self._pipe()
        reader = FrameReader(reader_file)
        try:
            writer_file.write(_frame_of({"type": "ping", "id": 1})
                              + _frame_of({"type": "pong", "id": 1}))
            assert reader.read(timeout_seconds=5.0)["type"] == "ping"
            assert reader.read(timeout_seconds=5.0)["type"] == "pong"
            writer_file.close()
            assert reader.read(timeout_seconds=5.0) is None
        finally:
            reader.close()
            reader_file.close()

    def test_timeout_fires_when_no_frame_arrives(self):
        reader_file, writer_file = self._pipe()
        reader = FrameReader(reader_file)
        try:
            started = time.monotonic()
            with pytest.raises(TransportTimeoutError):
                reader.read(timeout_seconds=0.05)
            assert time.monotonic() - started < 2.0
        finally:
            reader.close()
            reader_file.close()
            writer_file.close()

    def test_partial_frame_survives_a_timeout_then_completes(self):
        """A timeout must not lose buffered bytes: once the rest arrives the
        frame reads whole (callers usually kill the peer, but the reader
        itself stays consistent)."""
        reader_file, writer_file = self._pipe()
        reader = FrameReader(reader_file)
        frame = _frame_of({"type": "ping", "id": 7})
        try:
            writer_file.write(frame[:5])
            with pytest.raises(TransportTimeoutError):
                reader.read(timeout_seconds=0.05)
            writer_file.write(frame[5:])
            assert reader.read(timeout_seconds=5.0) == {"type": "ping", "id": 7}
        finally:
            reader.close()
            reader_file.close()
            writer_file.close()

    def test_eof_mid_frame_is_truncation(self):
        reader_file, writer_file = self._pipe()
        reader = FrameReader(reader_file)
        frame = _frame_of({"type": "ping", "id": 3})
        try:
            writer_file.write(frame[: len(frame) - 2])
            writer_file.close()
            with pytest.raises(TruncatedFrameError):
                reader.read(timeout_seconds=5.0)
        finally:
            reader.close()
            reader_file.close()

    def test_slow_writer_still_completes_within_deadline(self):
        reader_file, writer_file = self._pipe()
        reader = FrameReader(reader_file)
        frame = _frame_of({"type": "stats_request", "id": 11})

        def dribble():
            for byte in frame:
                writer_file.write(bytes([byte]))
                time.sleep(0.001)

        thread = threading.Thread(target=dribble, daemon=True)
        try:
            thread.start()
            assert reader.read(timeout_seconds=10.0) == {"type": "stats_request",
                                                         "id": 11}
        finally:
            thread.join()
            reader.close()
            reader_file.close()
            writer_file.close()

    def test_oversized_frame_detected_before_payload_arrives(self):
        reader_file, writer_file = self._pipe()
        reader = FrameReader(reader_file, max_frame_bytes=64)
        try:
            writer_file.write(FRAME_HEADER.pack(FRAME_MAGIC, 0, 1 << 20))
            with pytest.raises(FrameTooLargeError):
                reader.read(timeout_seconds=5.0)
        finally:
            reader.close()
            reader_file.close()
            writer_file.close()


class TestFrameWriter:
    def _pipe(self):
        read_fd, write_fd = os.pipe()
        return os.fdopen(read_fd, "rb", buffering=0), os.fdopen(write_fd, "wb",
                                                                buffering=0)

    def test_written_frames_read_back(self):
        reader_file, writer_file = self._pipe()
        writer = FrameWriter(writer_file)
        try:
            writer.write({"type": "ping", "id": 1}, timeout_seconds=5.0)
            writer.write({"type": "shutdown", "id": 2})
            assert read_frame(reader_file) == {"type": "ping", "id": 1}
            assert read_frame(reader_file) == {"type": "shutdown", "id": 2}
        finally:
            writer.close()
            writer_file.close()
            reader_file.close()

    def test_deadline_fires_when_the_peer_stops_draining(self):
        """A frame larger than the pipe buffer against a reader that never
        reads must hit the deadline instead of blocking forever (the wedged-
        worker case that would otherwise deadlock the proxy's request lock)."""
        reader_file, writer_file = self._pipe()
        writer = FrameWriter(writer_file)
        big = {"type": "route_batch_request", "id": 1,
               "questions": ["x" * 1024] * 1024}  # ~1 MiB >> pipe buffer
        try:
            started = time.monotonic()
            with pytest.raises(TransportTimeoutError):
                writer.write(big, timeout_seconds=0.05)
            assert time.monotonic() - started < 2.0
        finally:
            writer.close()
            writer_file.close()
            reader_file.close()


def test_message_type_registry_is_closed():
    """Every sample message used above is registered, and the registry has no
    types the tests never exercise (keeps protocol and tests in lockstep)."""
    exercised = {m["type"] for m in TestFraming.SAMPLE_MESSAGES} | {"crash"}
    assert exercised == set(MESSAGE_TYPES)
