"""Shared fixtures: a small hand-written database and a tiny synthetic dataset."""

from __future__ import annotations

import pytest

from repro.datasets import CollectionConfig, build_collection
from repro.engine import DatabaseInstance
from repro.schema import Catalog, Column, ColumnType, Database, ForeignKey, Table


@pytest.fixture
def concert_database() -> Database:
    """The paper's running example: singers, concerts, and their junction table."""
    return Database(
        name="concert_singer",
        tables=[
            Table("singer", [
                Column("singer_id", ColumnType.INTEGER, is_primary_key=True),
                Column("name"),
                Column("country"),
                Column("age", ColumnType.INTEGER),
            ]),
            Table("concert", [
                Column("concert_id", ColumnType.INTEGER, is_primary_key=True),
                Column("venue"),
                Column("year", ColumnType.INTEGER),
            ]),
            Table("singer_in_concert", [
                Column("singer_id", ColumnType.INTEGER),
                Column("concert_id", ColumnType.INTEGER),
            ]),
        ],
        foreign_keys=[
            ForeignKey("singer_in_concert", "singer_id", "singer", "singer_id"),
            ForeignKey("singer_in_concert", "concert_id", "concert", "concert_id"),
        ],
    )


@pytest.fixture
def concert_instance(concert_database) -> DatabaseInstance:
    instance = DatabaseInstance(schema=concert_database)
    instance.insert_many("singer", [
        (1, "Alice", "France", 30),
        (2, "Bob", "Japan", 40),
        (3, "Carol", "France", 25),
    ])
    instance.insert_many("concert", [
        (1, "Grand Arena", 2022),
        (2, "Riverside Hall", 2014),
    ])
    instance.insert_many("singer_in_concert", [(1, 1), (2, 1), (3, 2)])
    return instance


@pytest.fixture
def world_database() -> Database:
    return Database(
        name="world",
        tables=[
            Table("country", [
                Column("country_id", ColumnType.INTEGER, is_primary_key=True),
                Column("name"),
                Column("continent"),
                Column("population", ColumnType.INTEGER),
            ]),
            Table("city", [
                Column("city_id", ColumnType.INTEGER, is_primary_key=True),
                Column("name"),
                Column("population", ColumnType.INTEGER),
                Column("country_id", ColumnType.INTEGER),
            ]),
        ],
        foreign_keys=[ForeignKey("city", "country_id", "country", "country_id")],
    )


@pytest.fixture
def small_catalog(concert_database, world_database) -> Catalog:
    return Catalog(name="small", databases=[concert_database, world_database])


@pytest.fixture(scope="session")
def tiny_dataset():
    """A very small multi-database benchmark for integration-style tests."""
    config = CollectionConfig(name="tiny", num_databases=6, rows_per_table=12,
                              examples_per_database=8, seed=7)
    return build_collection(config)
