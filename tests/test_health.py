"""Active monitoring: health probes, rollup precedence, SLO burn rates,
the monitor thread, and the ops HTTP endpoint.

The contracts:

* verdicts roll up bottom-up with fixed precedence — one failing child
  degrades the parent, only *all* children failing fails it;
* the SLO engine fires only when both burn windows agree, deduplicates
  repeat fires, and resolves once the fast window recovers — all on an
  injected clock, no sleeps;
* the monitor thread shuts down cleanly (no leaked threads) and a tick
  that raises is counted, never fatal;
* ``/healthz`` answers 200 exactly when the verdict is ``ok`` and flips to
  503 while a killed subprocess shard is down, recovering after respawn;
* ``/metrics`` serves parseable Prometheus text over a real socket.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from test_serving import _serving_catalog

from repro.core import (
    RouterConfig,
    SchemaGraph,
    SchemaRouter,
    SchemaSampler,
    SynthesisConfig,
    TemplateQuestioner,
    synthesize_training_data,
)
from repro.cluster import ClusterConfig, ClusterRoutingService
from repro.obs.health import (
    HealthPolicy,
    HealthReport,
    cache_health,
    dispatcher_health,
    error_rate_health,
    queue_health,
    rollup,
    worst_status,
)
from repro.obs.httpd import OpsServer
from repro.obs.monitor import Monitor
from repro.obs.slo import (
    AlertJournal,
    EwmaBaselineTracker,
    SloEngine,
    SloSpec,
    default_slo_specs,
)
from repro.obs.export import parse_prometheus
from repro.serving import (
    LoadGenerator,
    RoutingService,
    ServingConfig,
    WorkloadConfig,
)


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def trained_router() -> SchemaRouter:
    catalog = _serving_catalog()
    graph = SchemaGraph.from_catalog(catalog)
    questioner = TemplateQuestioner(catalog=catalog, seed=11)
    sampler = SchemaSampler(graph, seed=11)
    report = synthesize_training_data(sampler, questioner,
                                      SynthesisConfig(num_samples=250))
    router = SchemaRouter(graph=graph, config=RouterConfig(
        epochs=10, embedding_dim=24, hidden_dim=40, num_beams=4,
        beam_groups=2, seed=11))
    router.fit(report.examples)
    return router


# -- verdicts and rollup precedence -------------------------------------------
class TestHealthReport:
    def test_worst_status_orders_verdicts(self):
        assert worst_status() == "ok"
        assert worst_status("ok", "degraded") == "degraded"
        assert worst_status("degraded", "failing", "ok") == "failing"

    def test_degrade_never_lowers(self):
        report = HealthReport(component="x")
        report.degrade("failing", "dead")
        report.degrade("degraded", "meh")
        assert report.status == "failing"
        assert report.reasons == ["dead", "meh"]

    def test_invalid_status_rejected(self):
        with pytest.raises(ValueError):
            HealthReport(component="x", status="on-fire")

    def test_to_dict_round_trips_as_json(self):
        report = rollup("parent", [HealthReport(component="child",
                                                status="degraded",
                                                reasons=["slow"])])
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["status"] == "degraded"
        assert payload["children"][0]["component"] == "child"


class TestRollupPrecedence:
    def _children(self, *statuses: str) -> list[HealthReport]:
        return [HealthReport(component=f"shard-{index}", status=status)
                for index, status in enumerate(statuses)]

    def test_all_ok_stays_ok(self):
        assert rollup("c", self._children("ok", "ok", "ok")).status == "ok"

    def test_one_failing_child_degrades_the_parent(self):
        report = rollup("cluster", self._children("ok", "failing", "ok"))
        assert report.status == "degraded"
        assert any("shard-1" in reason for reason in report.reasons)

    def test_one_degraded_child_degrades_the_parent(self):
        assert rollup("c", self._children("degraded", "ok")).status == "degraded"

    def test_all_children_failing_fails_the_parent(self):
        report = rollup("c", self._children("failing", "failing"))
        assert report.status == "failing"

    def test_own_verdict_is_never_lowered_by_healthy_children(self):
        own = HealthReport(component="c")
        own.degrade("failing", "closed")
        assert rollup("c", self._children("ok", "ok"), own=own).status == "failing"

    def test_no_children_keeps_own_verdict(self):
        assert rollup("leaf", []).status == "ok"


# -- the stats-dict probes -----------------------------------------------------
class TestProbes:
    def test_error_rate_unjudged_below_min_requests(self):
        report = HealthReport(component="svc")
        error_rate_health(report, {"requests": 5, "errors": 5}, HealthPolicy())
        assert report.status == "ok"

    def test_error_rate_bands(self):
        policy = HealthPolicy()
        degraded = HealthReport(component="svc")
        error_rate_health(degraded, {"requests": 100, "errors": 2}, policy)
        assert degraded.status == "degraded"
        failing = HealthReport(component="svc")
        error_rate_health(failing, {"requests": 100, "errors": 20}, policy)
        assert failing.status == "failing"

    def test_cache_cold_is_unmeasured_not_unhealthy(self):
        report = cache_health({"hits": 0, "misses": 3, "invalidations": 0})
        assert report.status == "ok"
        assert report.details["lookups"] == 3

    def test_cache_hit_rate_floor(self):
        report = cache_health({"hits": 1, "misses": 99, "invalidations": 0})
        assert report.status == "degraded"
        assert "hit rate" in report.reasons[0]

    def test_cache_version_churn(self):
        report = cache_health({"hits": 80, "misses": 20, "invalidations": 60})
        assert report.status == "degraded"
        assert "churn" in report.reasons[0]

    def test_cache_disabled_reports_ok(self):
        report = cache_health(None)
        assert report.status == "ok"
        assert report.details == {"enabled": False}

    def test_queue_depth_ratios(self):
        policy = HealthPolicy()
        ok = HealthReport(component="svc")
        queue_health(ok, 8, 8, policy)
        assert ok.status == "ok"
        degraded = HealthReport(component="svc")
        queue_health(degraded, 16, 8, policy)
        assert degraded.status == "degraded"
        failing = HealthReport(component="svc")
        queue_health(failing, 64, 8, policy)
        assert failing.status == "failing"

    def test_dispatcher_timeout_and_escalation_rates(self):
        policy = HealthPolicy()
        report = HealthReport(component="cluster")
        dispatcher_health(report, {"shards_timed_out": 5, "escalations": 90},
                          100, policy)
        assert report.status == "degraded"
        assert any("timeout" in reason for reason in report.reasons)
        assert any("escalation" in reason for reason in report.reasons)


# -- layer health --------------------------------------------------------------
class TestServiceHealth:
    @pytest.fixture()
    def service(self, trained_router):
        service = RoutingService(trained_router,
                                 config=ServingConfig(enable_batching=False))
        yield service
        service.close()

    def test_fresh_service_is_ok_with_cache_child(self, service):
        report = service.health()
        assert report.status == "ok"
        assert [child.component for child in report.children] == ["route_cache"]

    def test_closed_service_is_failing(self, trained_router):
        service = RoutingService(trained_router,
                                 config=ServingConfig(enable_batching=False))
        service.close()
        report = service.health()
        assert report.status == "failing"
        assert "closed" in report.reasons[0]

    def test_submit_failure_increments_errors_counter(self, service, monkeypatch):
        def explode(*args, **kwargs):
            raise RuntimeError("decode broke")

        monkeypatch.setattr(service, "_route_batch_locked", explode)
        with pytest.raises(RuntimeError):
            service.submit("never seen before question")
        assert service.metrics.counter("errors") == 1

    def test_error_rate_degrades_service_health(self, service):
        service.metrics.increment("requests", 100)
        service.metrics.increment("errors", 3)
        assert service.health().status == "degraded"


class TestClusterHealth:
    @pytest.fixture(scope="class")
    def cluster(self, trained_router):
        service = ClusterRoutingService.from_router(
            trained_router, ClusterConfig(num_shards=2, strategy="size_balanced"))
        yield service
        service.close()

    def test_healthy_cluster_rolls_up_ok(self, cluster):
        report = cluster.health()
        assert report.status == "ok"
        assert len(report.children) == 2
        worker = report.children[0].children[0]
        assert worker.children[0].component == "fast_tier"

    def test_one_failing_shard_degrades_the_cluster_verdict(self, cluster):
        replica_set = cluster.shards[0]
        saved = [replica.quarantined_until
                 for replica in replica_set._replicas]
        try:
            for replica in replica_set._replicas:
                replica.quarantined_until = replica_set._clock() + 10_000.0
            report = cluster.health()
            assert report.children[0].status == "failing"
            assert report.status == "degraded"
            assert any("failing" in reason for reason in report.reasons)
        finally:
            for replica, value in zip(replica_set._replicas, saved):
                replica.quarantined_until = value
        assert cluster.health().status == "ok"

    def test_closed_cluster_is_failing(self, trained_router):
        service = ClusterRoutingService.from_router(
            trained_router, ClusterConfig(num_shards=2))
        service.close()
        assert service.health().status == "failing"


# -- SLO engine and alert journal ----------------------------------------------
def _snapshot(requests: int, errors: int = 0, p95_ms: float = 10.0,
              hits: int = 0, misses: int = 0) -> dict:
    return {"counters": {"requests": requests, "errors": errors},
            "latency": {"p95_ms": p95_ms, "p99_ms": p95_ms * 1.5},
            "cache": {"hits": hits, "misses": misses}}


class TestSloEngine:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SloSpec(name="x", metric="nope", target=1.0)
        with pytest.raises(ValueError):
            SloSpec(name="x", metric="error_rate", target=0.0)
        with pytest.raises(ValueError):
            SloSpec(name="x", metric="error_rate", target=0.1,
                    fast_window_seconds=600.0, slow_window_seconds=60.0)

    def test_burn_direction(self):
        upper = SloSpec(name="lat", metric="latency_p95_ms", target=100.0)
        assert upper.burn(200.0) == 2.0
        lower = SloSpec(name="hit", metric="cache_hit_rate", target=0.8)
        assert lower.burn(0.4) == 2.0
        assert lower.burn(0.0) > 1_000.0  # capped, not inf

    def test_fire_dedupe_resolve_lifecycle(self):
        """The full burn-rate alert lifecycle on an injected clock."""
        clock = FakeClock()
        spec = SloSpec(name="error-rate", metric="error_rate", target=0.05,
                       fast_window_seconds=60.0, slow_window_seconds=300.0,
                       fast_burn=2.0, slow_burn=1.0, resolve_burn=1.0)
        engine = SloEngine([spec], clock=clock)
        # Ten healthy minutes: zero errors, no alert.
        requests = 0
        for _ in range(20):
            clock.advance(30.0)
            requests += 300
            assert engine.observe(_snapshot(requests)) == []
        assert engine.journal.stats()["fired"] == 0
        # Overload: 20% errors.  The fast window (60s) burns immediately,
        # but the alert must wait for the slow window (300s) to agree.
        errors = 0
        events = []
        steps_to_fire = 0
        for step in range(1, 11):
            clock.advance(30.0)
            requests += 300
            errors += 60
            events = engine.observe(_snapshot(requests, errors=errors))
            if events:
                steps_to_fire = step
                break
        assert events and events[0]["kind"] == "fire"
        assert events[0]["name"] == "error-rate"
        assert steps_to_fire > 1  # the slow window held the first spikes back
        assert engine.journal.is_active("error-rate")
        # Dedupe: still burning -> no new events, suppressed counts up.
        clock.advance(30.0)
        requests += 300
        errors += 60
        assert engine.observe(_snapshot(requests, errors=errors)) == []
        assert engine.journal.stats()["suppressed"] >= 1
        assert engine.journal.stats()["fired"] == 1
        # Recovery: errors stop; once the fast window is clean it resolves.
        resolved = []
        for _ in range(10):
            clock.advance(30.0)
            requests += 300
            resolved = engine.observe(_snapshot(requests, errors=errors))
            if resolved:
                break
        assert resolved and resolved[0]["kind"] == "resolve"
        assert not engine.journal.is_active("error-rate")
        stats = engine.journal.stats()
        assert stats["fired"] == 1 and stats["resolved"] == 1

    def test_latency_slo_fires_on_sustained_spike(self):
        clock = FakeClock()
        spec = SloSpec(name="p95", metric="latency_p95_ms", target=50.0,
                       fast_window_seconds=60.0, slow_window_seconds=300.0)
        engine = SloEngine([spec], clock=clock)
        requests = 0
        for _ in range(12):
            clock.advance(30.0)
            requests += 10
            engine.observe(_snapshot(requests, p95_ms=10.0))
        fired = []
        for _ in range(12):
            clock.advance(30.0)
            requests += 10
            fired += engine.observe(_snapshot(requests, p95_ms=400.0))
        assert any(event["kind"] == "fire" and event["name"] == "p95"
                   for event in fired)

    def test_no_traffic_is_no_violation(self):
        clock = FakeClock()
        engine = SloEngine([SloSpec(name="err", metric="error_rate",
                                    target=0.05)], clock=clock)
        clock.advance(30.0)
        engine.observe(_snapshot(0))
        status = engine.status()[0]
        assert status["fast_value"] is None
        assert status["fast_burn"] == 0.0

    def test_status_is_json_safe(self):
        clock = FakeClock()
        engine = SloEngine(default_slo_specs(), clock=clock)
        engine.observe(_snapshot(100, errors=1))
        json.dumps(engine.status())


class TestAlertJournal:
    def test_dedupe_and_bounds(self):
        clock = FakeClock()
        journal = AlertJournal(max_events=4, clock=clock)
        assert journal.fire("a") is not None
        assert journal.fire("a") is None  # active -> suppressed
        assert journal.stats()["suppressed"] == 1
        assert journal.resolve("missing") is None
        for name in ("b", "c", "d", "e"):
            journal.fire(name)
        assert journal.stats()["events"] == 4  # bounded deque

    def test_resolve_records_active_duration(self):
        clock = FakeClock()
        journal = AlertJournal(clock=clock)
        journal.fire("slo")
        clock.advance(120.0)
        event = journal.resolve("slo")
        assert event["active_seconds"] == pytest.approx(120.0)


class TestOverloadDrivesSloAlert:
    def test_burst_overload_fires_and_resolves_a_latency_slo(self):
        """The acceptance scenario end to end: a seeded burst workload
        overloads a backend, the measured spike latency burns a latency SLO
        until it fires, and the post-spike steady phase resolves it."""
        import time as _time

        config = WorkloadConfig(num_requests=40, mode="burst", target_qps=2000.0,
                                burst_qps=20000.0, burst_start_fraction=0.4,
                                burst_fraction=0.3, seed=5)
        generator = LoadGenerator([f"question {index}" for index in range(10)],
                                  config)
        cursor = [0]

        def overloadable_backend(question: str) -> list:
            # Saturated during the spike window: 25ms vs 0.2ms service time.
            phase = generator.phase_of(cursor[0])
            cursor[0] += 1
            _time.sleep(0.025 if phase == "burst" else 0.0002)
            return []

        report = generator.run(overloadable_backend)
        steady_p95 = report.phases["steady"]["p95_ms"]
        burst_p95 = report.phases["burst"]["p95_ms"]
        assert burst_p95 > 5 * steady_p95  # the spike really overloaded it

        # Replay the measured phases as monitor observations: steady
        # baseline, the overload window, then steady again.
        clock = FakeClock()
        spec = SloSpec(name="latency-p95", metric="latency_p95_ms", target=5.0,
                       fast_window_seconds=60.0, slow_window_seconds=300.0)
        engine = SloEngine([spec], clock=clock)
        requests = 0

        def observe(p95_ms: float) -> list[dict]:
            nonlocal requests
            clock.advance(30.0)
            requests += 100
            return engine.observe(_snapshot(requests, p95_ms=p95_ms))

        for _ in range(12):
            assert observe(steady_p95) == []
        fired = []
        for _ in range(12):
            fired = observe(burst_p95)
            if fired:
                break
        assert fired and fired[0]["kind"] == "fire"
        assert fired[0]["name"] == "latency-p95"
        resolved = []
        for _ in range(12):
            resolved = observe(steady_p95)
            if resolved:
                break
        assert resolved and resolved[0]["kind"] == "resolve"
        stats = engine.journal.stats()
        assert stats["fired"] == 1 and stats["resolved"] == 1
        assert stats["active"] == 0


class TestEwmaBaseline:
    def test_flags_step_change_after_warmup(self):
        tracker = EwmaBaselineTracker(warmup=5)
        for _ in range(8):
            assert tracker.observe({"decode": {"p95_ms": 10.0}}) == []
        regressions = tracker.observe({"decode": {"p95_ms": 500.0}})
        assert regressions and regressions[0]["stage"] == "decode"
        assert regressions[0]["baseline_ms"] == pytest.approx(10.0, abs=1.0)

    def test_quiet_during_warmup_and_on_noise(self):
        tracker = EwmaBaselineTracker(warmup=5)
        values = [10.0, 11.0, 9.5, 10.5, 10.0, 10.2, 9.8, 10.1]
        for value in values:
            assert tracker.observe({"encode": {"p95_ms": value}}) == []
        assert tracker.baselines()["encode"]["observations"] == len(values)


# -- the monitor ---------------------------------------------------------------
class _StubService:
    """A minimal stats()/health() target for monitor tests."""

    def __init__(self):
        self.snapshot = _snapshot(100)
        self.report = HealthReport(component="stub")
        self.raises = False

    def stats(self):
        if self.raises:
            raise RuntimeError("stats broke")
        return self.snapshot

    def health(self, policy=None):
        return self.report


class TestMonitor:
    def test_tick_stores_latest_and_counts(self):
        clock = FakeClock()
        stub = _StubService()
        monitor = Monitor(stub, specs=[], clock=clock, track_baselines=False)
        assert monitor.latest() is None
        latest = monitor.tick()
        assert latest["health"]["status"] == "ok"
        assert monitor.latest()["at"] == clock.now
        assert monitor.summary()["ticks"] == 1

    def test_tick_errors_are_counted_never_fatal(self):
        stub = _StubService()
        monitor = Monitor(stub, specs=[], clock=FakeClock())
        stub.raises = True
        assert monitor.tick() is None
        stub.raises = False
        assert monitor.tick() is not None
        summary = monitor.summary()
        assert summary["ticks"] == 2 and summary["tick_errors"] == 1
        assert "stats broke" in summary["last_error"]

    def test_baseline_regressions_fire_and_resolve_as_warn_alerts(self):
        clock = FakeClock()
        stub = _StubService()
        monitor = Monitor(stub, specs=[], clock=clock,
                          baseline=EwmaBaselineTracker(warmup=3))
        for _ in range(6):
            stub.snapshot = dict(_snapshot(100), stages={"decode": {"p95_ms": 10.0}})
            monitor.tick()
        stub.snapshot = dict(_snapshot(100), stages={"decode": {"p95_ms": 900.0}})
        latest = monitor.tick()
        assert any(event["name"] == "baseline:decode"
                   and event["severity"] == "warn"
                   for event in latest["events"])
        # back to normal (the EWMA absorbs the spike within a few readings)
        resolved = False
        for _ in range(10):
            stub.snapshot = dict(_snapshot(100), stages={"decode": {"p95_ms": 10.0}})
            latest = monitor.tick()
            if any(event["kind"] == "resolve" for event in latest["events"]):
                resolved = True
                break
        assert resolved
        assert not monitor.journal.is_active("baseline:decode")

    def test_shutdown_leaves_no_live_threads(self):
        stub = _StubService()
        monitor = Monitor(stub, specs=[], interval_seconds=0.01)
        monitor.start()
        assert monitor.is_running()
        monitor.close()
        monitor.close()  # idempotent
        assert not monitor.is_running()
        assert not any(thread.name == "repro-obs-monitor" and thread.is_alive()
                       for thread in threading.enumerate())
        assert monitor.summary()["ticks"] >= 1


# -- the ops endpoint over a real socket ---------------------------------------
def _get(url: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


class TestOpsEndpoint:
    @pytest.fixture()
    def stack(self, trained_router):
        service = RoutingService(trained_router,
                                 config=ServingConfig(enable_batching=False))
        monitor = Monitor(service, interval_seconds=60.0)
        server = OpsServer(monitor).start()
        yield service, monitor, server
        server.close()
        monitor.close()
        service.close()

    def test_healthz_and_metrics_over_a_real_socket(self, stack):
        service, monitor, server = stack
        service.submit("Which databases mention concerts?")
        code, body = _get(f"{server.url}/healthz")
        assert code == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["children"][0]["component"] == "route_cache"
        code, body = _get(f"{server.url}/metrics")
        assert code == 200
        samples = {name: value
                   for name, _, value in parse_prometheus(body.decode())}
        assert samples["repro_counters_requests"] >= 1.0
        assert "# TYPE repro_counters_requests counter" in body.decode()
        assert any(name.startswith("repro_latency_seconds_bucket")
                   for name, _, _ in parse_prometheus(body.decode()))

    def test_slo_alerts_traces_stats_and_404(self, stack):
        service, monitor, server = stack
        monitor.tick()
        code, body = _get(f"{server.url}/slo")
        assert code == 200
        assert {spec["name"] for spec in json.loads(body)["specs"]} \
            == {"latency-p95", "error-rate"}
        code, body = _get(f"{server.url}/alerts")
        assert code == 200 and json.loads(body)["stats"]["fired"] == 0
        code, body = _get(f"{server.url}/traces")
        assert code == 200 and "stats" in json.loads(body)
        code, body = _get(f"{server.url}/stats")
        assert code == 200 and "counters" in json.loads(body)
        code, _ = _get(f"{server.url}/nope")
        assert code == 404
        code, body = _get(f"{server.url}/")
        assert code == 200 and "/healthz" in json.loads(body)["endpoints"]

    def test_healthz_flips_to_503_when_the_service_fails(self, stack):
        service, monitor, server = stack
        assert _get(f"{server.url}/healthz")[0] == 200
        service.close()
        code, body = _get(f"{server.url}/healthz")
        assert code == 503
        assert json.loads(body)["status"] == "failing"


class TestKilledShardHealthz:
    def test_healthz_flips_while_a_killed_shard_is_down(self, trained_router):
        """The acceptance scenario: kill a subprocess shard -> /healthz goes
        non-200 (cluster degraded, that shard failing); respawn -> 200."""
        cluster = ClusterRoutingService.from_router(
            trained_router, ClusterConfig(num_shards=2,
                                          worker_backend="subprocess"))
        monitor = Monitor(cluster, interval_seconds=60.0)
        server = OpsServer(monitor).start()
        try:
            code, body = _get(f"{server.url}/healthz")
            assert code == 200 and json.loads(body)["status"] == "ok"

            worker = cluster.shards[0].workers[0]
            worker.kill()
            code, body = _get(f"{server.url}/healthz")
            assert code == 503
            payload = json.loads(body)
            assert payload["status"] == "degraded"
            shard0 = payload["children"][0]
            assert shard0["status"] == "failing"
            assert any("not running" in reason
                       for child in shard0["children"]
                       for reason in child["reasons"])

            worker.respawn()
            code, body = _get(f"{server.url}/healthz")
            assert code == 200 and json.loads(body)["status"] == "ok"
            # The cluster still answers after the round trip.
            routes = cluster.submit("Which databases mention concerts?")
            assert routes
        finally:
            server.close()
            monitor.close()
            cluster.close()
