"""Tests for cluster-native dense wave decode.

With ``ClusterConfig(wave_decode=True)`` an unreplicated inproc fleet decodes
whole scatter waves through one stacked kernel stream
(:class:`repro.cluster.wave.ClusterWaveEngine`) instead of one thread-pool
call per shard.  These tests pin the differential against the pool path, the
per-shard decode counters, the transparent fallbacks (replication,
checkpoint-booted weight copies), and the direct-submit fast path the
dispatcher takes when no shard timeout is configured.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterDispatcher,
    ClusterRoutingService,
    load_cluster,
    save_cluster,
)
from repro.core import (
    RouterConfig,
    SchemaGraph,
    SchemaRouter,
    SchemaSampler,
    SynthesisConfig,
    TemplateQuestioner,
    synthesize_training_data,
)
from test_cluster import QUESTIONS, _cluster_catalog


@pytest.fixture(scope="module")
def master_router() -> SchemaRouter:
    catalog = _cluster_catalog()
    graph = SchemaGraph.from_catalog(catalog)
    questioner = TemplateQuestioner(catalog=catalog, seed=23)
    sampler = SchemaSampler(graph, seed=23)
    report = synthesize_training_data(sampler, questioner,
                                      SynthesisConfig(num_samples=300))
    router = SchemaRouter(graph=graph, config=RouterConfig(
        epochs=10, embedding_dim=24, hidden_dim=40, num_beams=8, beam_groups=4,
        seed=23))
    router.fit(report.examples)
    return router


@pytest.fixture(scope="module")
def workload(master_router) -> list[str]:
    catalog = master_router.graph.catalog
    questioner = TemplateQuestioner(catalog=catalog, seed=41)
    sampler = SchemaSampler(master_router.graph, seed=41)
    report = synthesize_training_data(sampler, questioner,
                                      SynthesisConfig(num_samples=200))
    return [example.question for example in report.examples]


class TestWaveDecode:
    def test_wave_routes_agree_with_pool_routes(self, master_router, workload):
        pool_config = ClusterConfig(num_shards=2, strategy="round_robin",
                                    enable_cache=False)
        wave_config = ClusterConfig(num_shards=2, strategy="round_robin",
                                    enable_cache=False, wave_decode=True)
        with ClusterRoutingService.from_router(master_router,
                                               pool_config) as cluster:
            pool = cluster.submit_many(workload)
        with ClusterRoutingService.from_router(master_router,
                                               wave_config) as cluster:
            assert cluster.wave_engine is not None, cluster._wave_disabled_reason
            wave = cluster.submit_many(workload)
        agree = sum(1 for a, b in zip(pool, wave)
                    if a and b and a[0].database == b[0].database)
        assert agree >= round(0.99 * len(workload))

    def test_wave_with_sliced_vocabulary(self, master_router, workload):
        """The tentpole pairing: dense wave decode over shard-sliced vocabs
        still agrees with plain pool routing after calibration."""
        pool_config = ClusterConfig(num_shards=2, strategy="round_robin",
                                    enable_cache=False)
        wave_config = ClusterConfig(num_shards=2, strategy="round_robin",
                                    enable_cache=False, wave_decode=True,
                                    sliced_vocabulary=True)
        with ClusterRoutingService.from_router(master_router,
                                               pool_config) as cluster:
            pool = cluster.submit_many(workload)
        with ClusterRoutingService.from_router(master_router,
                                               wave_config) as cluster:
            assert cluster.wave_engine is not None
            sliced = cluster.shards[0].workers[0].router
            assert sliced.vocabulary_slice is not None
            # Sliced fleets decode in calibrated-head mode: the kernel
            # normalizes over the master vocabulary per step, so scores come
            # out of the wave already calibrated (no post-hoc rescoring).
            tier = cluster.wave_engine._tier(careful=False)
            assert tier.kernel.calibrated_head
            wave = cluster.submit_many(workload)
        agree = sum(1 for a, b in zip(pool, wave)
                    if a and b and a[0].database == b[0].database)
        assert agree >= round(0.99 * len(workload))

    def test_wave_counters_roll_up_into_stats_and_traces(self, master_router):
        config = ClusterConfig(num_shards=2, strategy="round_robin",
                               wave_decode=True)
        with ClusterRoutingService.from_router(master_router,
                                               config) as cluster:
            cluster.submit_many(QUESTIONS)
            stats = cluster.stats()
        wave = stats["wave"]
        assert wave["enabled"] is True
        assert wave["waves"] >= 1
        assert wave["questions"] == len(QUESTIONS)
        assert wave["steps"] > 0
        assert wave["beam_rows"] > 0
        assert len(wave["shards"]) == 2
        for shard_id, entry in enumerate(wave["shards"]):
            assert entry["shard_id"] == shard_id
            assert entry["steps"] > 0
            assert entry["beam_rows"] > 0
            assert entry["questions_compacted"] >= 0
        # The decode rode the single-stream span, not per-shard scatters.
        assert "wave_decode" in stats["stages"]
        assert "scatter" not in stats["stages"]
        assert json.loads(json.dumps(stats)) == stats

    def test_escalation_rides_the_careful_wave_tier(self, master_router, workload):
        config = ClusterConfig(num_shards=2, strategy="round_robin",
                               wave_decode=True, enable_cache=False)
        with ClusterRoutingService.from_router(master_router,
                                               config) as cluster:
            assert cluster.wave_engine is not None
            assert cluster.wave_engine.has_careful_tier
            cluster.submit_many(workload[:60])
            stats = cluster.stats()
        # The seeded workload reliably produces some low-confidence merges.
        assert stats["dispatcher"]["escalations"] > 0
        assert stats["wave"]["careful_waves"] > 0

    def test_wave_deduplicates_and_caches_within_the_fleet(self, master_router):
        config = ClusterConfig(num_shards=2, strategy="round_robin",
                               wave_decode=True, escalation_threshold=None)
        with ClusterRoutingService.from_router(master_router,
                                               config) as cluster:
            first = cluster.submit_many([QUESTIONS[0], QUESTIONS[0], QUESTIONS[1]])
            assert [(r.database, r.tables, r.score) for r in first[0]] == \
                [(r.database, r.tables, r.score) for r in first[1]]
            repeat = cluster.submit_many([QUESTIONS[0]])
            assert [(r.database, r.tables, r.score) for r in repeat[0]] == \
                [(r.database, r.tables, r.score) for r in first[0]]
            stats = cluster.stats()
        # Each shard decoded 2 unique questions once; the repeat was a hit.
        for shard in stats["shards"]:
            counters = shard["workers"][0]["counters"]
            assert counters["routed"] == 2
            assert counters["cache_hits"] >= 1
        assert stats["cache_hit_rate"] > 0.0


class TestWaveFallbacks:
    def test_replicated_clusters_fall_back_to_the_pool_path(self, master_router):
        config = ClusterConfig(num_shards=2, strategy="round_robin",
                               replicas=2, wave_decode=True)
        with ClusterRoutingService.from_router(master_router,
                                               config) as cluster:
            assert cluster.wave_engine is None
            assert "replication" in cluster._wave_disabled_reason
            routes = cluster.submit(QUESTIONS[0])
            assert routes
            stats = cluster.stats()
        assert stats["wave"] == {"enabled": False,
                                 "reason": cluster._wave_disabled_reason}

    def test_checkpoint_booted_weight_copies_fall_back(self, master_router,
                                                       tmp_path):
        """A reloaded cluster's shard models are independent weight copies
        (no shared trunk), so the wave engine declines and the pool path
        serves -- transparently."""
        config = ClusterConfig(num_shards=2, strategy="round_robin")
        with ClusterRoutingService.from_router(master_router,
                                               config) as original:
            save_cluster(original, tmp_path / "ckpt")
            expected = [[(r.database, r.tables) for r in routes]
                        for routes in original.submit_many(QUESTIONS[:4])]
        wave_config = ClusterConfig(num_shards=2, wave_decode=True)
        with load_cluster(tmp_path / "ckpt", config=wave_config) as restored:
            assert restored.config.wave_decode is True
            assert restored.wave_engine is None
            assert restored._wave_disabled_reason
            assert [[(r.database, r.tables) for r in routes]
                    for routes in restored.submit_many(QUESTIONS[:4])] == expected

    def test_wave_decode_off_means_no_wave_key(self, master_router):
        config = ClusterConfig(num_shards=2, strategy="round_robin")
        with ClusterRoutingService.from_router(master_router,
                                               config) as cluster:
            cluster.submit(QUESTIONS[0])
            assert "wave" not in cluster.stats()


class TestDirectSubmitWithoutTimeout:
    """Satellite: with no shard timeout the dispatcher submits the target
    itself to the pool -- no call_with_timeout wrapper, no watchdog thread."""

    @staticmethod
    def _record_thread(seen: list):
        def target(questions, max_candidates, trace=None):
            seen.append(threading.current_thread().name)
            return [[] for _ in questions]
        return target

    def test_no_timeout_runs_on_the_dispatch_pool_thread(self):
        seen: list[str] = []
        with ClusterDispatcher([self._record_thread(seen)],
                               shard_timeout_seconds=None) as dispatcher:
            dispatcher.route_batch(["q"])
        assert len(seen) == 1
        assert seen[0].startswith("repro-cluster-dispatch")

    def test_timeout_still_uses_the_watchdog_thread(self):
        seen: list[str] = []
        with ClusterDispatcher([self._record_thread(seen)],
                               shard_timeout_seconds=5.0) as dispatcher:
            dispatcher.route_batch(["q"])
        assert len(seen) == 1
        assert seen[0].startswith("repro-cluster-shard")
