"""Tests for the DBCopilot core: graph, serialization, sampling, questioner,
synthesis, constrained decoding, and the schema router."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    DBCopilot,
    DBCopilotConfig,
    GraphConstrainedDecoding,
    PrefixTrie,
    RouterConfig,
    SamplerConfig,
    SchemaGraph,
    SchemaRouter,
    SchemaSampler,
    SynthesisConfig,
    TemplateQuestioner,
    NeuralQuestioner,
    basic_serialize,
    dfs_serialize,
    schema_to_tokens,
    synthesize_training_data,
    tokens_to_schema,
)
from repro.core.serialization import ELEMENT_SEPARATOR, tokens_to_elements
from repro.nn.tokenizer import Vocabulary
from repro.utils.rng import SeededRng


@pytest.fixture
def graph(small_catalog):
    return SchemaGraph.from_catalog(small_catalog)


class TestSchemaGraph:
    def test_node_counts(self, graph, small_catalog):
        # root + databases + tables
        assert graph.num_nodes() == 1 + len(small_catalog) + small_catalog.num_tables

    def test_databases_and_tables(self, graph):
        assert set(graph.databases()) == {"concert_singer", "world"}
        assert set(graph.tables_of("world")) == {"country", "city"}

    def test_table_neighbors_via_foreign_keys(self, graph):
        assert set(graph.table_neighbors("concert_singer", "singer_in_concert")) == \
               {"singer", "concert"}
        assert graph.table_neighbors("world", "city") == ["country"]

    def test_unknown_lookups_raise(self, graph):
        with pytest.raises(KeyError):
            graph.tables_of("missing")
        with pytest.raises(KeyError):
            graph.table_neighbors("world", "missing")

    def test_valid_schema_checks(self, graph):
        assert graph.is_valid_schema("world", ("city", "country"))
        assert graph.is_valid_schema("world", ("city",))
        assert not graph.is_valid_schema("world", ())
        assert not graph.is_valid_schema("world", ("singer",))
        assert not graph.is_valid_schema("missing", ("city",))
        # singer and concert are not directly connected (only via the junction).
        assert not graph.is_valid_schema("concert_singer", ("singer", "concert"))
        assert graph.is_valid_schema("concert_singer",
                                     ("singer", "singer_in_concert", "concert"))


class TestSerialization:
    def test_dfs_starts_with_database(self, graph):
        serialized = dfs_serialize(graph, "concert_singer",
                                   ("singer", "concert", "singer_in_concert"), SeededRng(1))
        assert serialized.elements[0] == "concert_singer"
        assert set(serialized.tables) == {"singer", "concert", "singer_in_concert"}

    def test_dfs_keeps_related_tables_adjacent(self, graph):
        # With the junction in the schema, DFS orders it adjacent to at least
        # one of the tables it connects.
        serialized = dfs_serialize(graph, "concert_singer",
                                   ("singer", "singer_in_concert"), SeededRng(3))
        tables = list(serialized.tables)
        assert abs(tables.index("singer") - tables.index("singer_in_concert")) == 1

    def test_basic_serialize_contains_all_tables(self):
        serialized = basic_serialize("db", ("a", "b", "c"), SeededRng(0))
        assert serialized.elements[0] == "db"
        assert set(serialized.tables) == {"a", "b", "c"}

    def test_tokens_roundtrip(self, graph):
        serialized = dfs_serialize(graph, "world", ("city", "country"), SeededRng(0))
        tokens = schema_to_tokens(serialized)
        assert tokens.count(ELEMENT_SEPARATOR) == 3
        parsed = tokens_to_schema(tokens, graph)
        assert parsed == ("world", tuple(serialized.tables))

    def test_tokens_to_schema_rejects_unknown_database(self, graph):
        assert tokens_to_schema(["bogus", ELEMENT_SEPARATOR], graph) is None

    def test_tokens_to_elements(self):
        elements = tokens_to_elements(["a", "b", ELEMENT_SEPARATOR, "c", ELEMENT_SEPARATOR])
        assert elements == [("a", "b"), ("c",)]


class TestSamplerAndSynthesis:
    def test_sampled_schemas_are_valid(self, graph):
        sampler = SchemaSampler(graph, SamplerConfig(max_tables=3), seed=2)
        for database, tables in sampler.sample_many(50):
            assert graph.is_valid_schema(database, tables)

    def test_coverage_samples_touch_every_table(self, graph, small_catalog):
        sampler = SchemaSampler(graph, seed=2)
        covered = set()
        for database, tables in sampler.coverage_samples():
            covered.update((database, table) for table in tables)
        expected = {(db.name, t.name) for db, t in small_catalog.iter_tables()}
        assert covered == expected

    def test_max_tables_respected(self, graph):
        sampler = SchemaSampler(graph, SamplerConfig(max_tables=2, stop_probability=0.0), seed=0)
        assert all(len(tables) <= 2 for _, tables in sampler.sample_many(30))

    def test_template_questioner_mentions_schema_or_paraphrase(self, small_catalog):
        questioner = TemplateQuestioner(catalog=small_catalog, paraphrase_probability=0.0, seed=1)
        question = questioner.question_for("concert_singer", ("singer",))
        assert "singer" in question.lower()

    def test_template_questioner_paraphrases(self, small_catalog):
        questioner = TemplateQuestioner(catalog=small_catalog, paraphrase_probability=1.0, seed=1)
        questions = [questioner.question_for("concert_singer", ("singer", "singer_in_concert"))
                     for _ in range(10)]
        assert len(set(questions)) > 3

    def test_neural_questioner_falls_back_untrained(self, small_catalog):
        questioner = NeuralQuestioner(small_catalog)
        assert not questioner.is_trained
        assert isinstance(questioner.question_for("world", ("city",)), str)

    def test_neural_questioner_trains(self, small_catalog):
        questioner = NeuralQuestioner(small_catalog, embedding_dim=12, hidden_dim=16)
        triples = [("world", ("city",), "how many cities are there"),
                   ("world", ("country",), "list the countries"),
                   ("concert_singer", ("singer",), "who are the singers")]
        losses = questioner.fit(triples, epochs=25)
        assert questioner.is_trained
        assert losses[-1] < losses[0]
        assert isinstance(questioner.question_for("world", ("city",)), str)

    def test_synthesis_covers_catalog(self, graph, small_catalog):
        sampler = SchemaSampler(graph, seed=4)
        questioner = TemplateQuestioner(catalog=small_catalog, seed=4)
        report = synthesize_training_data(sampler, questioner, SynthesisConfig(num_samples=40))
        assert report.full_coverage
        assert report.num_examples >= 40
        assert all(example.question for example in report.examples)


class TestTrieAndConstrainedDecoding:
    def test_prefix_trie(self):
        trie = PrefixTrie()
        trie.insert([1, 2], "ab")
        trie.insert([1, 3], "ac")
        assert trie.allowed_next([]) == {1}
        assert trie.allowed_next([1]) == {2, 3}
        assert trie.is_terminal([1, 2])
        assert not trie.is_terminal([1])
        assert trie.identifiers_at([1, 3]) == ["ac"]
        assert trie.allowed_next([9]) == set()
        assert len(trie) == 2

    def test_prefix_trie_cursor_api_matches_prefix_walks(self):
        """The O(1) cursor accessors agree with the root re-walk queries at
        every position, including dead (off-trie) cursors."""
        trie = PrefixTrie()
        trie.insert([1, 2], "ab")
        trie.insert([1, 3], "ac")
        trie.insert([4], "d")
        for prefix in ([], [1], [1, 2], [1, 3], [4], [9], [1, 9], [1, 2, 9]):
            node = trie.root()
            for token in prefix:
                node = PrefixTrie.child(node, token)
            assert PrefixTrie.node_children(node) == trie.allowed_next(prefix)
            assert PrefixTrie.node_is_terminal(node) == trie.is_terminal(prefix)
            assert PrefixTrie.node_identifiers(node) == trie.identifiers_at(prefix)

    @pytest.fixture
    def constrained(self, graph):
        vocabulary = Vocabulary()
        vocabulary.add(ELEMENT_SEPARATOR)
        for database in graph.databases():
            vocabulary.add_text(database)
            for table in graph.tables_of(database):
                vocabulary.add_text(table)
        return GraphConstrainedDecoding(graph, vocabulary), vocabulary

    def test_first_tokens_are_database_words(self, constrained, graph):
        decoder, vocabulary = constrained
        allowed = decoder([])
        first_words = {vocabulary.token_of(token) for token in allowed}
        assert first_words == {"concert", "world"}

    def test_separator_only_after_complete_identifier(self, constrained, vocab=None):
        decoder, vocabulary = constrained
        concert = vocabulary.id_of("concert")
        singer = vocabulary.id_of("singer")
        allowed_after_concert = decoder([concert])
        assert vocabulary.sep_id not in allowed_after_concert  # "concert" alone is not a database
        allowed_full = decoder([concert, singer])
        assert vocabulary.sep_id in allowed_full

    def test_tables_restricted_to_neighbors(self, constrained, graph):
        decoder, vocabulary = constrained
        prefix = [vocabulary.id_of("world"), vocabulary.sep_id, vocabulary.id_of("city"),
                  vocabulary.sep_id]
        allowed = decoder(prefix)
        words = {vocabulary.token_of(token) for token in allowed}
        # After decoding "city", only its neighbour "country" (or EOS) may follow.
        assert "country" in words
        assert "city" not in words
        assert vocabulary.eos_id in allowed

    def test_decoded_prefix_interpretation(self, constrained):
        decoder, vocabulary = constrained
        prefix = [vocabulary.id_of("world"), vocabulary.sep_id,
                  vocabulary.id_of("country"), vocabulary.sep_id]
        state = decoder.interpret(prefix)
        assert state.database == "world"
        assert state.tables == ("country",)

    def test_allowed_mask_matches_allowed_tokens(self, constrained):
        decoder, vocabulary = constrained
        prefixes = [
            [],
            [vocabulary.id_of("world")],
            [vocabulary.id_of("world"), vocabulary.sep_id],
            [vocabulary.id_of("world"), vocabulary.sep_id,
             vocabulary.id_of("city"), vocabulary.sep_id],
        ]
        for prefix in prefixes:
            mask = decoder.allowed_mask(prefix)
            assert mask.dtype == np.bool_
            assert mask.shape == (len(vocabulary),)
            assert set(np.flatnonzero(mask).tolist()) == decoder.allowed_tokens(prefix)

    def test_allowed_mask_cached_per_interpreter_state(self, constrained):
        decoder, vocabulary = constrained
        prefix = [vocabulary.id_of("world"), vocabulary.sep_id]
        first = decoder.allowed_mask(prefix)
        again = decoder.allowed_mask(list(prefix))
        assert first is again  # served from the per-state cache
        with pytest.raises(ValueError):
            first[0] = True  # cached masks are shared and read-only

    def test_allowed_mask_cache_is_bounded(self, constrained):
        decoder, vocabulary = constrained
        decoder.max_cached_masks = 1
        decoder._mask_cache.clear()
        prefixes = [[], [vocabulary.id_of("world")],
                    [vocabulary.id_of("world"), vocabulary.sep_id]]
        for prefix in prefixes:  # evictions never change the answers
            mask = decoder.allowed_mask(prefix)
            assert set(np.flatnonzero(mask).tolist()) == decoder.allowed_tokens(prefix)
        assert len(decoder._mask_cache) == 1


class TestSchemaRouter:
    @pytest.fixture
    def trained_router(self, small_catalog):
        graph = SchemaGraph.from_catalog(small_catalog)
        questioner = TemplateQuestioner(catalog=small_catalog, seed=11)
        sampler = SchemaSampler(graph, seed=11)
        report = synthesize_training_data(sampler, questioner, SynthesisConfig(num_samples=250))
        router = SchemaRouter(graph=graph, config=RouterConfig(
            epochs=10, embedding_dim=24, hidden_dim=40, num_beams=4, beam_groups=2, seed=11))
        router.fit(report.examples)
        return router

    def test_training_reduces_loss(self, trained_router):
        losses = trained_router.training_losses
        assert losses[-1] < losses[0]

    def test_routes_are_valid_schemas(self, trained_router):
        routes = trained_router.route("how many cities are there in each country")
        assert routes
        for route in routes:
            assert trained_router.graph.is_valid_schema(route.database, route.tables)

    def test_prediction_format(self, trained_router):
        prediction = trained_router.predict("which singers performed in a concert")
        assert prediction.ranked_databases
        assert prediction.candidate_schemas
        assert prediction.ranked_tables
        assert prediction.best_schema is not None

    def test_untrained_router_raises(self, small_catalog):
        graph = SchemaGraph.from_catalog(small_catalog)
        router = SchemaRouter(graph=graph)
        with pytest.raises(RuntimeError):
            router.route("anything")
        with pytest.raises(ValueError):
            router.fit([])

    def test_config_ablation_copy(self):
        config = RouterConfig()
        changed = config.ablated(serialization="basic", constrained_decoding=False)
        assert changed.serialization == "basic"
        assert not changed.constrained_decoding
        assert config.serialization == "dfs"


class TestDBCopilotFacade:
    def test_build_and_route_tiny(self, tiny_dataset):
        config = DBCopilotConfig(
            router=RouterConfig(epochs=6, embedding_dim=24, hidden_dim=40,
                                num_beams=4, beam_groups=2, seed=3),
            synthesis=SynthesisConfig(num_samples=300),
            seed=3,
        )
        copilot = DBCopilot.build(tiny_dataset.catalog, tiny_dataset.instances, config=config)
        assert copilot.build_report.synthesis.full_coverage
        assert copilot.build_report.num_parameters > 0
        example = tiny_dataset.test_examples[0]
        routes = copilot.route(example.question)
        assert routes and copilot.graph.is_valid_schema(routes[0].database, routes[0].tables)
        prediction = copilot.predict(example.question)
        assert prediction.ranked_databases
        assert copilot.best_schema(example.question) is not None

    def test_unknown_questioner_kind(self, tiny_dataset):
        with pytest.raises(ValueError):
            DBCopilot.build(tiny_dataset.catalog, config=DBCopilotConfig(questioner="bogus"))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000))
def test_dfs_serialization_always_covers_schema(seed):
    from repro.schema import Catalog

    # Use a stable small catalog built once per example via fixtureless path.
    catalog = Catalog(name="c", databases=[_example_database()])
    graph = SchemaGraph.from_catalog(catalog)
    rng = SeededRng(seed)
    tables = tuple(rng.sample(graph.tables_of("concert_singer"), rng.randint(1, 3)))
    serialized = dfs_serialize(graph, "concert_singer", tables, rng)
    assert set(serialized.tables) == set(tables)
    assert serialized.elements[0] == "concert_singer"


def _example_database():
    from repro.schema import Column, ColumnType, Database, ForeignKey, Table

    return Database(
        name="concert_singer",
        tables=[
            Table("singer", [Column("singer_id", ColumnType.INTEGER, True), Column("name")]),
            Table("concert", [Column("concert_id", ColumnType.INTEGER, True), Column("venue")]),
            Table("singer_in_concert", [Column("singer_id", ColumnType.INTEGER),
                                        Column("concert_id", ColumnType.INTEGER)]),
        ],
        foreign_keys=[
            ForeignKey("singer_in_concert", "singer_id", "singer", "singer_id"),
            ForeignKey("singer_in_concert", "concert_id", "concert", "concert_id"),
        ],
    )
