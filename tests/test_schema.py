"""Tests for the relational schema model."""

from __future__ import annotations

import pytest

from repro.schema import (
    Catalog,
    Column,
    ColumnType,
    Database,
    ForeignKey,
    Table,
    describe_catalog,
    jaccard_similarity,
    joinable_table_pairs,
)


class TestColumn:
    def test_name_is_normalized(self):
        assert Column("Full Name").name == "full_name"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Column("  !! ")

    def test_describe_mentions_primary_key(self):
        assert "[primary key]" in Column("id", ColumnType.INTEGER, True).describe()

    def test_numeric_types(self):
        assert ColumnType.INTEGER.is_numeric and ColumnType.REAL.is_numeric
        assert not ColumnType.TEXT.is_numeric


class TestTable:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("t", [Column("a"), Column("a")])

    def test_column_lookup(self):
        table = Table("t", [Column("a"), Column("b", ColumnType.INTEGER)])
        assert table.column("b").column_type is ColumnType.INTEGER
        with pytest.raises(KeyError):
            table.column("missing")

    def test_primary_key(self):
        table = Table("t", [Column("id", ColumnType.INTEGER, True), Column("x")])
        assert table.primary_key.name == "id"

    def test_schema_line(self):
        table = Table("t", [Column("a"), Column("b")])
        assert table.schema_line() == "t(a, b)"

    def test_flat_description_contains_column_words(self):
        table = Table("singer", [Column("net_worth", ColumnType.REAL)])
        assert "net" in table.flat_description() and "worth" in table.flat_description()


class TestDatabase:
    def test_foreign_key_validation(self):
        with pytest.raises(ValueError):
            Database(name="d", tables=[Table("a", [Column("x")])],
                     foreign_keys=[ForeignKey("a", "x", "missing", "y")])

    def test_related_tables(self, concert_database):
        related = concert_database.related_tables("singer_in_concert")
        assert set(related) == {"singer", "concert"}

    def test_join_condition_both_directions(self, concert_database):
        forward = concert_database.join_condition("singer_in_concert", "singer")
        backward = concert_database.join_condition("singer", "singer_in_concert")
        assert forward is not None and backward is not None
        assert forward.source_table == "singer_in_concert"
        assert backward.source_table == "singer"

    def test_add_table_duplicate(self, concert_database):
        with pytest.raises(ValueError):
            concert_database.add_table(Table("singer", [Column("x")]))

    def test_counts(self, concert_database):
        assert concert_database.num_tables == 3
        assert concert_database.num_columns == 9


class TestCatalog:
    def test_membership(self, small_catalog):
        assert "concert_singer" in small_catalog
        assert "nope" not in small_catalog
        assert len(small_catalog) == 2

    def test_duplicate_database_rejected(self, concert_database):
        with pytest.raises(ValueError):
            Catalog(databases=[concert_database, concert_database])

    def test_iter_tables(self, small_catalog):
        pairs = list(small_catalog.iter_tables())
        assert ("concert_singer", "singer") in [(db.name, t.name) for db, t in pairs]

    def test_subset(self, small_catalog):
        subset = small_catalog.subset(["world"])
        assert subset.database_names == ["world"]

    def test_statistics(self, small_catalog):
        stats = describe_catalog(small_catalog)
        assert stats.num_databases == 2
        assert stats.num_tables == 5
        assert stats.num_columns == small_catalog.num_columns
        assert stats.max_tables_per_database == 3


class TestJoinability:
    def test_jaccard(self):
        assert jaccard_similarity([1, 2, 3], [2, 3, 4]) == pytest.approx(0.5)
        assert jaccard_similarity([], []) == 0.0
        assert jaccard_similarity([1], [1]) == 1.0

    def test_foreign_keys_always_joinable(self, concert_database):
        pairs = joinable_table_pairs(concert_database)
        assert ("singer_in_concert", "singer") in pairs or ("singer", "singer_in_concert") in pairs

    def test_foreign_foreign_implicit_link(self, concert_database):
        pairs = joinable_table_pairs(concert_database)
        flattened = {frozenset(pair) for pair in pairs}
        # singer and concert both reference the junction table columns, but the
        # implicit link only exists when two tables reference the *same* column;
        # here they reference different columns, so no direct edge is required.
        assert frozenset(("singer_in_concert", "concert")) in flattened

    def test_value_overlap_joins(self, concert_database, concert_instance):
        values = concert_instance.column_values()
        # Make two columns overlap perfectly to trigger the Jaccard heuristic.
        values["singer"]["country"] = ["x", "y", "z"]
        values["concert"]["venue"] = ["x", "y", "z"]
        pairs = joinable_table_pairs(concert_database, values, threshold=0.9)
        assert frozenset(("singer", "concert")) in {frozenset(pair) for pair in pairs}
