"""Integration tests: the full pipeline on a tiny synthetic collection."""

from __future__ import annotations

import pytest

from repro.core import DBCopilot, DBCopilotConfig, RouterConfig, SynthesisConfig
from repro.core.router import SchemaRouter
from repro.experiments import ExperimentConfig, clear_context_cache, get_context
from repro.experiments.routing import evaluate_method
from repro.llm import PromptStrategy, SchemaAgnosticNL2SQL, SimulatedLLM, evaluate_nl2sql
from repro.retrieval import BM25Retriever, build_table_documents, evaluate_routing


@pytest.fixture(scope="module")
def tiny_copilot(tiny_dataset):
    config = DBCopilotConfig(
        router=RouterConfig(epochs=8, embedding_dim=28, hidden_dim=48,
                            num_beams=4, beam_groups=2, seed=21),
        synthesis=SynthesisConfig(num_samples=500),
        seed=21,
    )
    return DBCopilot.build(tiny_dataset.catalog, tiny_dataset.instances, config=config)


class TestEndToEndRouting:
    def test_copilot_beats_random_guessing(self, tiny_dataset, tiny_copilot):
        examples = tiny_dataset.test_examples[:40]
        scores = evaluate_method(tiny_copilot.predict, examples)
        # With 6 databases random guessing gives ~17% database recall@1; the
        # trained router must do much better.
        assert scores.database_recall[1] > 0.5

    def test_copilot_predictions_are_well_formed(self, tiny_dataset, tiny_copilot):
        for example in tiny_dataset.test_examples[:10]:
            prediction = tiny_copilot.predict(example.question)
            assert prediction.ranked_databases
            for candidate in prediction.candidate_schemas:
                assert tiny_copilot.graph.is_valid_schema(candidate.database, candidate.tables)

    def test_bm25_baseline_comparable_pipeline(self, tiny_dataset):
        documents = build_table_documents(tiny_dataset.catalog)
        bm25 = BM25Retriever()
        bm25.index(documents)
        examples = tiny_dataset.test_examples[:30]
        predictions = [bm25.route(example.question) for example in examples]
        scores = evaluate_routing(predictions, [e.database for e in examples],
                                  [e.tables for e in examples])
        assert 0.0 <= scores.table_map <= 1.0


class TestEndToEndNl2Sql:
    def test_routed_sql_generation_produces_some_correct_answers(self, tiny_dataset, tiny_copilot):
        llm = SimulatedLLM(catalog=tiny_dataset.catalog)
        pipeline = SchemaAgnosticNL2SQL(tiny_dataset.catalog, tiny_dataset.instances, llm,
                                        router=tiny_copilot.predict,
                                        strategy=PromptStrategy.BEST_SCHEMA)
        evaluation = evaluate_nl2sql(pipeline, tiny_dataset.test_examples[:25])
        assert 0.0 < evaluation.execution_accuracy <= 1.0
        assert evaluation.total_cost > 0

    def test_human_in_the_loop_is_at_least_as_good(self, tiny_dataset, tiny_copilot):
        llm = SimulatedLLM(catalog=tiny_dataset.catalog)
        examples = tiny_dataset.test_examples[:25]
        best = evaluate_nl2sql(
            SchemaAgnosticNL2SQL(tiny_dataset.catalog, tiny_dataset.instances, llm,
                                 router=tiny_copilot.predict,
                                 strategy=PromptStrategy.BEST_SCHEMA), examples)
        hitl = evaluate_nl2sql(
            SchemaAgnosticNL2SQL(tiny_dataset.catalog, tiny_dataset.instances, llm,
                                 router=tiny_copilot.predict,
                                 strategy=PromptStrategy.HUMAN_IN_THE_LOOP), examples)
        assert hitl.execution_accuracy >= best.execution_accuracy - 1e-9


class TestAblationBehaviour:
    def test_original_data_only_fails_on_unseen_databases(self, tiny_dataset, tiny_copilot):
        # Train a router only on the original training examples (disjoint
        # databases) and verify it collapses on the test split, as in Table 7.
        from repro.core.synthesis import SyntheticExample

        original = [SyntheticExample(question=e.question, database=e.database, tables=e.tables)
                    for e in tiny_dataset.train_examples]
        router = SchemaRouter(graph=tiny_copilot.graph,
                              config=tiny_copilot.config.router.ablated(epochs=4))
        router.fit(original)
        examples = tiny_dataset.test_examples[:30]
        original_scores = evaluate_method(router.predict, examples)
        full_scores = evaluate_method(tiny_copilot.predict, examples)
        assert original_scores.database_recall[1] < full_scores.database_recall[1]


class TestExperimentContext:
    def test_context_is_cached_and_reused(self):
        clear_context_cache()
        config = ExperimentConfig(eval_limit=10, synthetic_samples=200, router_epochs=2)
        first = get_context("spider_like", config, with_baselines=False, with_copilot=False)
        second = get_context("spider_like", config, with_baselines=False, with_copilot=False)
        assert first is second
        assert first.test_examples() and len(first.test_examples()) <= 10
        clear_context_cache()

    def test_unknown_collection_rejected(self):
        with pytest.raises(KeyError):
            get_context("nope", ExperimentConfig(), with_baselines=False, with_copilot=False)
