"""Tests for the synthetic dataset substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import (
    DOMAINS,
    DatabaseGenerator,
    GeneratorConfig,
    WorkloadConfig,
    WorkloadGenerator,
    adapt_examples,
    build_bird_like,
    build_fiben_like,
    dataset_statistics,
    make_realistic_variant,
    make_synonym_variant,
)
from repro.datasets.vocabulary import domain_by_name
from repro.sql import SqlExecutor, extract_metadata
from repro.sql.errors import SqlError


class TestDomains:
    def test_domains_are_unique(self):
        names = [domain.name for domain in DOMAINS]
        assert len(names) == len(set(names))
        assert len(names) >= 20

    def test_relations_reference_existing_entities(self):
        for domain in DOMAINS:
            entity_names = {entity.name for entity in domain.entities}
            for relation in domain.relations:
                assert relation.parent in entity_names
                assert relation.child in entity_names

    def test_domain_lookup(self):
        assert domain_by_name("concert_singer").name == "concert_singer"
        with pytest.raises(KeyError):
            domain_by_name("nope")


class TestDatabaseGenerator:
    @pytest.fixture(scope="class")
    def generated(self):
        generator = DatabaseGenerator(GeneratorConfig(rows_per_table=10, auxiliary_tables=2), seed=3)
        return generator.generate(domain_by_name("concert_singer"))

    def test_entity_tables_created(self, generated):
        assert set(generated.entity_tables) == {"singer", "concert", "stadium"}

    def test_junction_table_and_foreign_keys(self, generated):
        database = generated.database
        assert database.has_table("singer_in_concert")
        junction_fks = database.foreign_keys_of("singer_in_concert")
        assert len(junction_fks) == 2

    def test_auxiliary_tables_attached(self, generated):
        assert len(generated.auxiliary_tables) == 2
        for table_name, (entity, _) in generated.auxiliary_tables.items():
            assert generated.database.has_table(table_name)
            assert entity in generated.entity_tables

    def test_rows_respect_foreign_keys(self, generated):
        instance = generated.instance
        singer_ids = {row[0] for row in instance.tables[generated.entity_tables["singer"]]}
        concert_table = generated.database.table(generated.entity_tables["concert"])
        stadium_fk_index = concert_table.column_names.index("stadium_id")
        stadium_ids = {row[0] for row in instance.tables[generated.entity_tables["stadium"]]}
        for row in instance.tables[concert_table.name]:
            assert row[stadium_fk_index] in stadium_ids
        for row in instance.tables["singer_in_concert"]:
            assert row[0] in singer_ids

    def test_prefix_applies_to_all_tables(self):
        generator = DatabaseGenerator(GeneratorConfig(rows_per_table=5), seed=1)
        generated = generator.generate(domain_by_name("world_geography"), table_prefix="p1_")
        assert all(table.name.startswith("p1_") for table in generated.database.tables)

    def test_extra_columns_widen_tables(self):
        wide = DatabaseGenerator(GeneratorConfig(rows_per_table=5, extra_columns=4), seed=1)
        narrow = DatabaseGenerator(GeneratorConfig(rows_per_table=5), seed=1)
        domain = domain_by_name("banking_finance")
        assert wide.generate(domain).database.num_columns > narrow.generate(domain).database.num_columns


class TestWorkloadGenerator:
    @pytest.fixture(scope="class")
    def examples_and_generated(self):
        generator = DatabaseGenerator(GeneratorConfig(rows_per_table=20), seed=5)
        generated = generator.generate(domain_by_name("university"))
        workload = WorkloadGenerator(WorkloadConfig(examples_per_database=25), seed=5)
        return workload.generate(generated, domain_by_name("university")), generated

    def test_examples_generated(self, examples_and_generated):
        examples, _ = examples_and_generated
        assert len(examples) == 25

    def test_sql_parses_and_matches_declared_tables(self, examples_and_generated):
        examples, _ = examples_and_generated
        for example in examples:
            metadata = extract_metadata(example.sql)
            assert set(metadata.table_names) == set(example.tables)

    def test_sql_executes(self, examples_and_generated):
        examples, generated = examples_and_generated
        executor = SqlExecutor(generated.instance)
        for example in examples:
            executor.execute_sql(example.sql)  # must not raise

    def test_questions_are_nonempty_and_distinctive(self, examples_and_generated):
        examples, _ = examples_and_generated
        assert all(len(example.question.split()) >= 4 for example in examples)
        assert len({example.question for example in examples}) > len(examples) // 2

    def test_template_variety(self, examples_and_generated):
        examples, _ = examples_and_generated
        assert len({example.template for example in examples}) >= 4


class TestCollections:
    def test_tiny_collection_structure(self, tiny_dataset):
        stats = dataset_statistics(tiny_dataset)
        assert stats["databases"] == 6
        assert stats["tables"] > 6
        assert stats["train"] > 0 and stats["test"] > 0

    def test_train_and_test_databases_disjoint(self, tiny_dataset):
        train_dbs = {example.database for example in tiny_dataset.train_examples}
        test_dbs = {example.database for example in tiny_dataset.test_examples}
        assert not (train_dbs & test_dbs)

    def test_examples_reference_catalog(self, tiny_dataset):
        for example in tiny_dataset.test_examples:
            database = tiny_dataset.catalog.database(example.database)
            for table in example.tables:
                assert database.has_table(table)

    def test_all_example_sql_executes(self, tiny_dataset):
        failures = 0
        for example in tiny_dataset.train_examples + tiny_dataset.test_examples:
            executor = SqlExecutor(tiny_dataset.instances.instance(example.database))
            try:
                executor.execute_sql(example.sql)
            except SqlError:
                failures += 1
        assert failures == 0

    def test_bird_like_is_wider(self):
        bird = build_bird_like(scale=0.3)
        stats = dataset_statistics(bird)
        assert stats["columns"] / max(stats["tables"], 1) > 4.0

    def test_fiben_like_single_database(self):
        fiben = build_fiben_like(scale=0.3)
        assert fiben.num_databases == 1
        assert len(fiben.train_examples) == 0
        assert fiben.num_tables > 20


class TestRobustness:
    def test_synonym_variant_changes_questions_not_catalog(self, tiny_dataset):
        variant = make_synonym_variant(tiny_dataset)
        assert variant.catalog is tiny_dataset.catalog
        changed = sum(
            1 for original, perturbed in zip(tiny_dataset.test_examples, variant.test_examples)
            if original.question != perturbed.question
        )
        assert changed > len(tiny_dataset.test_examples) // 3
        for original, perturbed in zip(tiny_dataset.test_examples, variant.test_examples):
            assert original.sql == perturbed.sql
            assert original.tables == perturbed.tables

    def test_realistic_variant_removes_column_words(self, tiny_dataset):
        variant = make_realistic_variant(tiny_dataset)
        assert len(variant.test_examples) == len(tiny_dataset.test_examples)
        assert any(original.question != perturbed.question
                   for original, perturbed in zip(tiny_dataset.test_examples, variant.test_examples))

    def test_variants_are_deterministic(self, tiny_dataset):
        first = [e.question for e in make_synonym_variant(tiny_dataset, seed=5).test_examples]
        second = [e.question for e in make_synonym_variant(tiny_dataset, seed=5).test_examples]
        assert first == second


class TestAdaptation:
    def test_adapt_examples_rederives_tables(self, tiny_dataset):
        adapted, report = adapt_examples(tiny_dataset.test_examples)
        assert report.kept == report.total
        assert report.dropped_unparseable == 0
        for example in adapted:
            assert example.tables == tuple(sorted(example.tables))

    def test_unparseable_sql_is_dropped(self, tiny_dataset):
        from repro.datasets.examples import Example

        broken = Example(question="q", database="d", tables=("t",), sql="NOT SQL AT ALL")
        adapted, report = adapt_examples([broken])
        assert adapted == [] and report.dropped_unparseable == 1


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_generator_is_deterministic_per_seed(seed):
    domain = domain_by_name("hotel_bookings")
    first = DatabaseGenerator(GeneratorConfig(rows_per_table=5), seed=seed).generate(domain)
    second = DatabaseGenerator(GeneratorConfig(rows_per_table=5), seed=seed).generate(domain)
    assert first.database.table_names == second.database.table_names
    assert first.instance.tables == second.instance.tables
