"""Tests for prompt construction, the simulated LLM, and EX evaluation."""

from __future__ import annotations

import pytest

from repro.datasets.examples import Example
from repro.engine.instance import CatalogInstance
from repro.llm import (
    CostModel,
    OracleSchemaProvider,
    PromptStrategy,
    SchemaAgnosticNL2SQL,
    SimulatedLLM,
    build_best_schema_prompt,
    build_cot_selection_prompt,
    build_multiple_schema_prompt,
    count_tokens,
    evaluate_nl2sql,
)
from repro.llm.sqlgen import HeuristicSqlGenerator
from repro.retrieval.base import CandidateSchema, RoutingPrediction
from repro.sql import SqlExecutor, parse_sql


class TestCostModel:
    def test_count_tokens_scales_with_words(self):
        assert count_tokens("one two three") > count_tokens("one")

    def test_cost_positive_and_output_weighted(self):
        model = CostModel()
        assert model.cost(1000, 0) == pytest.approx(0.0005)
        assert model.cost(0, 1000) == pytest.approx(0.0015)
        assert model.cost_of_call("a prompt here", "select 1") > 0


class TestPrompts:
    def test_best_schema_prompt_contains_tables_and_question(self, concert_database):
        prompt = build_best_schema_prompt(concert_database, ["singer", "concert"],
                                          "Which singers held concerts?")
        assert "singer(" in prompt.text and "concert(" in prompt.text
        assert "Which singers held concerts?" in prompt.text
        assert prompt.text.strip().endswith("SELECT")

    def test_columns_filter_limits_columns(self, concert_database):
        prompt = build_best_schema_prompt(concert_database, ["singer"], "q",
                                          columns_filter={"singer": ["name"]})
        assert "age" not in prompt.text

    def test_multiple_schema_prompt_concatenates(self, concert_database, world_database):
        prompt = build_multiple_schema_prompt(
            [(concert_database, ["singer"]), (world_database, ["city"])], "q")
        assert "singer(" in prompt.text and "city(" in prompt.text

    def test_cot_prompt_has_identifiers(self, concert_database, world_database):
        prompt = build_cot_selection_prompt(
            [(concert_database, ["singer"]), (world_database, ["city"])], "q")
        assert "[1]" in prompt and "[2]" in prompt


class TestHeuristicGenerator:
    @pytest.fixture
    def generator(self):
        return HeuristicSqlGenerator()

    def test_count_question(self, generator, concert_database, concert_instance):
        sql = generator.generate("How many singers are there whose country is France?",
                                 concert_database, ["singer"])
        result = SqlExecutor(concert_instance).execute_sql(sql)
        assert result.rows == [(2,)]

    def test_filter_question(self, generator, concert_database, concert_instance):
        sql = generator.generate("What is the name of the singer whose country is Japan?",
                                 concert_database, ["singer"])
        result = SqlExecutor(concert_instance).execute_sql(sql)
        assert result.rows == [("Bob",)]

    def test_superlative_projects_identity(self, generator, concert_database, concert_instance):
        sql = generator.generate("Which singer has the highest age?",
                                 concert_database, ["singer"])
        result = SqlExecutor(concert_instance).execute_sql(sql)
        assert result.rows == [("Bob",)]

    def test_join_question_uses_junction(self, generator, concert_database, concert_instance):
        sql = generator.generate(
            "Which singers are linked to the concert whose venue is Grand Arena?",
            concert_database, ["singer", "singer_in_concert", "concert"])
        result = SqlExecutor(concert_instance).execute_sql(sql)
        assert sorted(row[0] for row in result.rows) == ["Alice", "Bob"]

    def test_missing_connector_degrades(self, generator, concert_database):
        # Without the junction table the generator cannot express the join.
        sql = generator.generate(
            "Which singers are linked to the concert whose venue is Grand Arena?",
            concert_database, ["singer", "concert"])
        statement = parse_sql(sql)
        assert statement.from_table.table in ("singer", "concert")

    def test_generates_parseable_sql_for_varied_questions(self, generator, concert_database):
        questions = [
            "What is the average age of all singers?",
            "Which concert has the lowest year?",
            "Show the venue of concerts belonging to the singer whose name is Alice.",
            "Which singer has the most concerts?",
        ]
        for question in questions:
            sql = generator.generate(question, concert_database, concert_database.table_names)
            parse_sql(sql)  # must not raise

    def test_empty_schema(self, generator, concert_database):
        assert generator.generate("anything", concert_database, []) == "SELECT 1"


class TestSimulatedLLMAndPipeline:
    @pytest.fixture
    def environment(self, small_catalog, concert_instance, world_database):
        from repro.engine.instance import DatabaseInstance

        instances = CatalogInstance(catalog=small_catalog, instances={
            "concert_singer": concert_instance,
            "world": DatabaseInstance(schema=world_database),
        })
        llm = SimulatedLLM(catalog=small_catalog)
        return small_catalog, instances, llm

    @pytest.fixture
    def example(self):
        return Example(
            question="What is the name of the singer whose country is Japan?",
            database="concert_singer",
            tables=("singer",),
            sql="SELECT name FROM singer WHERE country = 'Japan'",
            columns=("singer.name", "singer.country"),
        )

    def test_llm_tracks_cost(self, environment, concert_database):
        _, _, llm = environment
        _, response = llm.generate_sql("How many singers are there?", concert_database, ["singer"])
        assert response.cost > 0
        assert llm.total_cost == pytest.approx(response.cost)
        llm.reset_usage()
        assert llm.total_cost == 0.0

    def test_select_schema_prefers_matching_candidate(self, environment, concert_database,
                                                      world_database):
        _, _, llm = environment
        index, _ = llm.select_schema("which cities have the largest population",
                                     [(concert_database, ["singer"]), (world_database, ["city"])])
        assert index == 1

    def test_best_schema_pipeline_correct_with_gold_routing(self, environment, example):
        catalog, instances, llm = environment
        pipeline = SchemaAgnosticNL2SQL(catalog, instances, llm)
        prediction = RoutingPrediction(
            ranked_databases=["concert_singer"],
            candidate_schemas=[CandidateSchema("concert_singer", ("singer",), 1.0)],
        )
        result = pipeline.answer(example, prediction=prediction)
        assert result.correct
        assert result.cost > 0

    def test_pipeline_wrong_database_is_incorrect(self, environment, example):
        catalog, instances, llm = environment
        pipeline = SchemaAgnosticNL2SQL(catalog, instances, llm)
        prediction = RoutingPrediction(
            ranked_databases=["world"],
            candidate_schemas=[CandidateSchema("world", ("city",), 1.0)],
        )
        result = pipeline.answer(example, prediction=prediction)
        assert not result.correct

    def test_human_in_the_loop_selects_gold_candidate(self, environment, example):
        catalog, instances, llm = environment
        pipeline = SchemaAgnosticNL2SQL(catalog, instances, llm,
                                        strategy=PromptStrategy.HUMAN_IN_THE_LOOP)
        prediction = RoutingPrediction(
            ranked_databases=["world", "concert_singer"],
            candidate_schemas=[
                CandidateSchema("world", ("city",), 2.0),
                CandidateSchema("concert_singer", ("singer",), 1.0),
            ],
        )
        result = pipeline.answer(example, prediction=prediction)
        assert result.predicted_database == "concert_singer"
        assert result.correct

    def test_answer_requires_router_or_prediction(self, environment, example):
        catalog, instances, llm = environment
        pipeline = SchemaAgnosticNL2SQL(catalog, instances, llm)
        with pytest.raises(ValueError):
            pipeline.answer(example)

    def test_answer_with_schema_oracle(self, environment, example):
        catalog, instances, llm = environment
        pipeline = SchemaAgnosticNL2SQL(catalog, instances, llm)
        result = pipeline.answer_with_schema(example, "concert_singer", ["singer"])
        assert result.correct

    def test_evaluate_nl2sql_aggregates(self, environment, example):
        catalog, instances, llm = environment
        prediction = RoutingPrediction(
            ranked_databases=["concert_singer"],
            candidate_schemas=[CandidateSchema("concert_singer", ("singer",), 1.0)],
        )
        pipeline = SchemaAgnosticNL2SQL(catalog, instances, llm,
                                        router=lambda question: prediction)
        evaluation = evaluate_nl2sql(pipeline, [example, example])
        assert evaluation.execution_accuracy == 1.0
        assert evaluation.total_cost > 0
        assert evaluation.as_row()["EX"] == 100.0


class TestOracleProvider:
    def test_oracle_levels(self, tiny_dataset):
        oracle = OracleSchemaProvider(tiny_dataset.catalog)
        example = tiny_dataset.test_examples[0]
        database, tables, columns = oracle.gold_tables_and_columns(example)
        assert database == example.database and set(tables) == set(example.tables)
        assert columns
        _, all_tables = oracle.gold_database(example)
        assert set(tables) <= set(all_tables)
        five = oracle.five_databases(example)
        assert len(five) == min(5, len(tiny_dataset.catalog))
        assert example.database in [name for name, _ in five]
