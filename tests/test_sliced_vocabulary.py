"""Tests for shard-sliced target vocabularies and score calibration.

A sliced shard decodes a model twin whose target embedding and output head
keep only the shard's own sub-catalog rows; per-step log-softmax then
normalizes over the slice, so raw decode scores are *inflated* relative to the
master vocabulary (by the slice's missing probability mass, accumulated per
step).  Calibration is exact rescoring: final hypotheses replay teacher-forced
through the shared trunk against the full master head, which restores
master-vocabulary log-probabilities -- the property the cross-shard softmax
merge relies on.  These tests pin the slice invariants, the calibration
contract, the cluster-level differential against global-vocab routing, and the
checkpoint round trip.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterRoutingService,
    load_cluster,
    partition_catalog,
    project_router,
    save_cluster,
    slice_target_vocabulary,
)
from repro.core import (
    RouterConfig,
    SchemaGraph,
    SchemaRouter,
    SchemaSampler,
    SynthesisConfig,
    TemplateQuestioner,
    synthesize_training_data,
)
from repro.serving.checkpoint import CheckpointError, load_router, save_router
from test_cluster import QUESTIONS, _cluster_catalog


@pytest.fixture(scope="module")
def master_router() -> SchemaRouter:
    catalog = _cluster_catalog()
    graph = SchemaGraph.from_catalog(catalog)
    questioner = TemplateQuestioner(catalog=catalog, seed=23)
    sampler = SchemaSampler(graph, seed=23)
    report = synthesize_training_data(sampler, questioner,
                                      SynthesisConfig(num_samples=300))
    router = SchemaRouter(graph=graph, config=RouterConfig(
        epochs=10, embedding_dim=24, hidden_dim=40, num_beams=8, beam_groups=4,
        seed=23))
    router.fit(report.examples)
    return router


@pytest.fixture(scope="module")
def workload(master_router) -> list[str]:
    """A 200-question seeded workload over the cluster catalog."""
    catalog = master_router.graph.catalog
    questioner = TemplateQuestioner(catalog=catalog, seed=41)
    sampler = SchemaSampler(master_router.graph, seed=41)
    report = synthesize_training_data(sampler, questioner,
                                      SynthesisConfig(num_samples=200))
    return [example.question for example in report.examples]


def _shard_databases(master_router, shard: int = 0) -> tuple[str, ...]:
    assignment = partition_catalog(master_router.graph.catalog, 2,
                                   strategy="round_robin")
    return assignment.shards[shard]


# -- slice construction --------------------------------------------------------
class TestVocabularySlicing:
    def test_slice_keeps_specials_and_subcatalog_tokens(self, master_router):
        projected = project_router(master_router,
                                   _shard_databases(master_router))
        kept_ids, sliced = slice_target_vocabulary(master_router,
                                                   projected.graph)
        master_tokens = master_router.target_vocabulary.tokens()
        specials = master_router.target_vocabulary.specials.as_tuple()
        # Specials keep their ids, so BOS/EOS/PAD agree between master and slice.
        assert list(kept_ids[:len(specials)]) == list(range(len(specials)))
        assert sliced.bos_id == master_router.target_vocabulary.bos_id
        assert sliced.eos_id == master_router.target_vocabulary.eos_id
        # kept_ids is the ascending master id of each sliced id.
        assert np.all(np.diff(kept_ids) > 0)
        assert sliced.tokens() == [master_tokens[i] for i in kept_ids]
        # A proper slice: smaller than the master vocabulary.
        assert len(sliced) < len(master_router.target_vocabulary)

    def test_sliced_projection_shares_the_trunk_by_reference(self, master_router):
        sliced = project_router(master_router, _shard_databases(master_router),
                                sliced_vocabulary=True)
        assert sliced.vocabulary_slice is not None
        kept_ids = sliced.vocabulary_slice.kept_ids
        assert sliced.model.config.target_vocab_size == len(kept_ids)
        # Trunk modules are the master's very objects; only the target
        # embedding rows and output-head columns are copied slices.
        assert sliced.model.source_embedding is master_router.model.source_embedding
        assert sliced.model.recurrent_projection is master_router.model.recurrent_projection
        master_head = master_router.model.output_projection
        np.testing.assert_array_equal(
            sliced.model.output_projection.weight.data,
            master_head.weight.data[:, kept_ids])
        np.testing.assert_array_equal(
            sliced.model.target_embedding.weight.data,
            master_router.model.target_embedding.weight.data[kept_ids])
        # The slice carries the *master* head for calibration.
        assert sliced.vocabulary_slice.output_weight is master_head.weight.data

    def test_unsliced_projection_has_no_slice(self, master_router):
        projected = project_router(master_router,
                                   _shard_databases(master_router))
        assert projected.vocabulary_slice is None
        assert projected.model is master_router.model


# -- calibration ---------------------------------------------------------------
class TestCalibration:
    def test_rescored_scores_match_global_vocabulary_scores(self, master_router):
        """The calibration contract: a sliced shard's final score for a token
        sequence equals what the global-vocabulary shard assigns the same
        sequence -- which is exactly what makes merged scores comparable
        (hence rank-identical) across differently-sliced shards."""
        databases = _shard_databases(master_router)
        plain = project_router(master_router, databases)
        sliced = project_router(master_router, databases,
                                sliced_vocabulary=True)
        kept_ids = sliced.vocabulary_slice.kept_ids
        matched = 0
        for question in QUESTIONS:
            plain_routes = {route.database: route.score
                            for route in plain.route(question)}
            for route in sliced.route(question):
                if route.database in plain_routes:
                    assert route.score == pytest.approx(
                        plain_routes[route.database], abs=1e-6)
                    matched += 1
        assert matched > 0
        assert len(kept_ids) < len(master_router.target_vocabulary)

    def test_uncalibrated_scores_are_inflated(self, master_router):
        """Without rescoring, per-step softmax over the slice systematically
        over-scores (the slice's missing mass is renormalized away) -- the
        failure mode calibration exists to fix."""
        databases = _shard_databases(master_router)
        plain = project_router(master_router, databases)
        sliced = project_router(master_router, databases,
                                sliced_vocabulary=True)
        sliced.vocabulary_slice = None  # disable calibration
        inflated = 0
        compared = 0
        for question in QUESTIONS[:4]:
            plain_routes = {route.database: route.score
                            for route in plain.route(question)}
            for route in sliced.route(question):
                if route.database in plain_routes:
                    compared += 1
                    if route.score > plain_routes[route.database] + 1e-9:
                        inflated += 1
        assert compared > 0
        assert inflated == compared


# -- cluster-level differential ------------------------------------------------
class TestSlicedClusterDifferential:
    @pytest.fixture(scope="class")
    def routed(self, master_router, workload):
        plain_config = ClusterConfig(num_shards=2, strategy="round_robin",
                                     enable_cache=False)
        sliced_config = ClusterConfig(num_shards=2, strategy="round_robin",
                                      enable_cache=False,
                                      sliced_vocabulary=True)
        with ClusterRoutingService.from_router(master_router,
                                               plain_config) as cluster:
            plain = cluster.submit_many(workload)
        with ClusterRoutingService.from_router(master_router,
                                               sliced_config) as cluster:
            sliced = cluster.submit_many(workload)
        return plain, sliced

    def test_top1_agreement_at_least_99_percent(self, routed, workload):
        plain, sliced = routed
        agree = sum(1 for a, b in zip(plain, sliced)
                    if a and b and a[0].database == b[0].database)
        assert agree >= round(0.99 * len(workload))

    def test_merged_rankings_stay_comparable(self, routed, workload):
        """Calibrated merges should rank (nearly) identically to global-vocab
        merges; the residual is escalated questions whose wider sliced beam
        surfaced a different hypothesis *set*, not a score mismatch."""
        plain, sliced = routed
        identical = sum(1 for a, b in zip(plain, sliced)
                        if [r.database for r in a] == [r.database for r in b])
        assert identical >= round(0.9 * len(workload))

    def test_scores_remain_normalized(self, routed):
        _, sliced = routed
        for routes in sliced[:20]:
            assert all(0.0 < route.score <= 1.0 for route in routes)
            assert routes == sorted(routes, key=lambda route: -route.score)


# -- checkpointing -------------------------------------------------------------
class TestSlicedCheckpoints:
    def test_router_checkpoint_round_trips_the_slice(self, master_router, tmp_path):
        sliced = project_router(master_router, _shard_databases(master_router),
                                sliced_vocabulary=True)
        path = save_router(sliced, tmp_path / "sliced-ckpt")
        assert (path / "slice.npz").is_file()
        restored = load_router(path)
        assert restored.vocabulary_slice is not None
        np.testing.assert_array_equal(restored.vocabulary_slice.kept_ids,
                                      sliced.vocabulary_slice.kept_ids)
        np.testing.assert_array_equal(restored.vocabulary_slice.output_weight,
                                      sliced.vocabulary_slice.output_weight)
        for question in QUESTIONS[:3]:
            assert [(r.database, r.tables, r.score) for r in restored.route(question)] \
                == [(r.database, r.tables, r.score) for r in sliced.route(question)]

    def test_unsliced_checkpoint_has_no_slice_artifacts(self, master_router, tmp_path):
        plain = project_router(master_router, _shard_databases(master_router))
        path = save_router(plain, tmp_path / "plain-ckpt")
        assert not (path / "slice.npz").exists()
        assert load_router(path).vocabulary_slice is None

    def test_corrupt_slice_archive_is_rejected(self, master_router, tmp_path):
        sliced = project_router(master_router, _shard_databases(master_router),
                                sliced_vocabulary=True)
        path = save_router(sliced, tmp_path / "corrupt-ckpt")
        (path / "slice.npz").write_bytes(b"not an npz archive")
        with pytest.raises(CheckpointError):
            load_router(path)

    def test_cluster_checkpoint_pins_the_slicing_mode(self, master_router, tmp_path):
        config = ClusterConfig(num_shards=2, strategy="round_robin",
                               sliced_vocabulary=True)
        with ClusterRoutingService.from_router(master_router, config) as original:
            save_cluster(original, tmp_path / "cluster-ckpt")
            expected = [[(r.database, r.tables, r.score) for r in routes]
                        for routes in original.submit_many(QUESTIONS[:4])]
        # Slicing is routing-affecting, so it comes from the checkpoint even
        # when the boot-time override config disagrees.
        override = ClusterConfig(num_shards=2, sliced_vocabulary=False)
        with load_cluster(tmp_path / "cluster-ckpt", config=override) as restored:
            assert restored.config.sliced_vocabulary is True
            for replica_set in restored.shards:
                assert replica_set.workers[0].router.vocabulary_slice is not None
            assert [[(r.database, r.tables, r.score) for r in routes]
                    for routes in restored.submit_many(QUESTIONS[:4])] == expected
