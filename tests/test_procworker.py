"""Multi-process shard workers: spawn, serve, crash, respawn, agree.

Uses a real 2-shard cluster checkpoint (trained once per module) so the
subprocess workers boot exactly the artifact production would hand them.  The
core contracts:

* a subprocess worker answers **bit-identically** to an in-process worker
  booted from the same shard checkpoint (scores cross the wire as hex floats);
* the whole subprocess-backed cluster matches the inproc-backed cluster on a
  seeded workload (the >= 95%% acceptance bar -- deterministic decode actually
  makes it 100%%);
* a worker killed mid-batch is survived: the replica layer fails over, the
  proxy respawns the process from its checkpoint, and no request fails;
* a request that outlives its timeout kills the wedged process and surfaces
  as :class:`ShardTimeoutError`, counted in ``shards_timed_out``.
"""

from __future__ import annotations

import os
import threading

import pytest

from test_cluster import QUESTIONS, _cluster_catalog

from repro.cluster import (
    ClusterConfig,
    ClusterRoutingService,
    ProcShardWorker,
    ShardTimeoutError,
    ShardWorker,
    WorkerCrashedError,
    load_cluster,
    save_cluster,
)
from repro.cluster.procworker import serve
from repro.cluster.transport import (
    PROTOCOL_VERSION,
    check_protocol,
    read_frame,
    write_frame,
)
from repro.core import (
    RouterConfig,
    SchemaGraph,
    SchemaRouter,
    SchemaSampler,
    SynthesisConfig,
    TemplateQuestioner,
    synthesize_training_data,
)
from repro.serving.service import ServingConfig


@pytest.fixture(scope="module")
def master_router() -> SchemaRouter:
    catalog = _cluster_catalog()
    graph = SchemaGraph.from_catalog(catalog)
    questioner = TemplateQuestioner(catalog=catalog, seed=23)
    sampler = SchemaSampler(graph, seed=23)
    report = synthesize_training_data(sampler, questioner,
                                      SynthesisConfig(num_samples=300))
    router = SchemaRouter(graph=graph, config=RouterConfig(
        epochs=10, embedding_dim=24, hidden_dim=40, num_beams=8, beam_groups=4,
        seed=23))
    router.fit(report.examples)
    return router


@pytest.fixture(scope="module")
def cluster_checkpoint(master_router, tmp_path_factory):
    """A saved 2-shard cluster both backends boot from."""
    built = ClusterRoutingService.from_router(
        master_router, ClusterConfig(num_shards=2, strategy="size_balanced"))
    path = save_cluster(built, tmp_path_factory.mktemp("procworker") / "cluster-ckpt")
    built.close()
    return path


def _shard_dir(cluster_checkpoint, shard_id: int = 0):
    return cluster_checkpoint / f"shard-{shard_id:02d}"


def _signature(route_lists):
    return [[(route.database, route.tables, route.score) for route in routes]
            for routes in route_lists]


# -- one worker over the wire --------------------------------------------------
class TestProcShardWorker:
    def test_handshake_announces_the_shard(self, cluster_checkpoint):
        with ProcShardWorker(0, _shard_dir(cluster_checkpoint)) as worker:
            assert worker.is_alive()
            assert worker.pid is not None and worker.pid != os.getpid()
            assert len(worker.databases) > 0
            local = ShardWorker.from_checkpoint(
                0, _shard_dir(cluster_checkpoint),
                serving_config=ServingConfig(enable_batching=False))
            assert set(worker.databases) == set(local.databases)
            local.close()

    def test_routes_bit_identical_to_inproc_worker(self, cluster_checkpoint):
        local = ShardWorker.from_checkpoint(
            0, _shard_dir(cluster_checkpoint),
            serving_config=ServingConfig(enable_batching=False),
            escalation_num_beams=4)
        with ProcShardWorker(0, _shard_dir(cluster_checkpoint),
                             escalation_num_beams=4) as worker:
            questions = list(QUESTIONS)
            assert _signature(worker.route_batch(questions, max_candidates=3)) \
                == _signature(local.route_batch(questions, max_candidates=3))
            # The careful (escalation) tier crosses the wire too.
            assert _signature(worker.route_batch(questions, careful=True)) \
                == _signature(local.route_batch(questions, careful=True))
        local.close()

    def test_ping_stats_and_cache_invalidation(self, cluster_checkpoint):
        with ProcShardWorker(0, _shard_dir(cluster_checkpoint)) as worker:
            assert worker.ping() < 30.0
            worker.route_batch(list(QUESTIONS[:2]))
            worker.route_batch(list(QUESTIONS[:2]))  # second wave hits the cache
            stats = worker.stats()
            assert stats["shard_id"] == 0
            assert stats["counters"]["requests"] >= 4
            assert stats["counters"]["cache_hits"] >= 2
            assert stats["transport"]["alive"] is True
            assert stats["transport"]["backend"] == "subprocess"
            worker.notify_catalog_changed()  # must not raise; empties the cache
            worker.route_batch(list(QUESTIONS[:2]))
            assert worker.stats()["cache"]["size"] >= 1

    def test_graceful_close_stops_the_process(self, cluster_checkpoint):
        worker = ProcShardWorker(0, _shard_dir(cluster_checkpoint))
        process = worker.process
        worker.close()
        assert process.poll() is not None  # actually exited, not just orphaned
        assert not worker.is_alive()
        with pytest.raises(RuntimeError):
            worker.route_batch(["anything"])

    def test_crash_mid_request_raises_and_respawn_recovers(self, cluster_checkpoint):
        with ProcShardWorker(0, _shard_dir(cluster_checkpoint)) as worker:
            first_pid = worker.pid
            baseline = worker.route_batch(list(QUESTIONS[:2]))
            worker.crash()
            assert not worker.is_alive()
            assert worker.crashes == 1
            # auto-respawn: the next request boots a fresh process from the
            # same checkpoint and answers identically.
            again = worker.route_batch(list(QUESTIONS[:2]))
            assert worker.is_alive()
            assert worker.pid != first_pid
            assert worker.respawns == 1
            assert _signature(again) == _signature(baseline)

    def test_crash_without_auto_respawn_surfaces(self, cluster_checkpoint):
        with ProcShardWorker(0, _shard_dir(cluster_checkpoint),
                             auto_respawn=False) as worker:
            worker.crash()
            with pytest.raises(WorkerCrashedError):
                worker.route_batch(list(QUESTIONS[:1]))

    def test_request_timeout_kills_the_wedged_process(self, cluster_checkpoint):
        with ProcShardWorker(0, _shard_dir(cluster_checkpoint),
                             request_timeout_seconds=0.001) as worker:
            victim = worker.process
            with pytest.raises(ShardTimeoutError):
                worker.route_batch(list(QUESTIONS))
            assert worker.timeouts == 1
            assert victim.poll() is not None  # a wedged worker is killed
            # Relaxing the deadline and retrying respawns and succeeds.
            worker.request_timeout_seconds = None
            assert len(worker.route_batch(list(QUESTIONS[:1]))) == 1

    def test_missing_checkpoint_fails_spawn(self, tmp_path):
        with pytest.raises(WorkerCrashedError):
            ProcShardWorker(0, tmp_path / "no-such-checkpoint",
                            spawn_timeout_seconds=30.0)

    def test_set_databases_is_refused_over_the_wire(self, cluster_checkpoint,
                                                    master_router):
        with ProcShardWorker(0, _shard_dir(cluster_checkpoint)) as worker:
            with pytest.raises(Exception, match="re-projected"):
                worker.set_databases(("world_atlas",), master_router)


class TestFastBackendOverTheWire:
    def test_subprocess_worker_rides_fast_decode_tier(self, master_router,
                                                      tmp_path_factory):
        """A cluster saved from a ``decode_backend="fast"`` master boots
        subprocess workers that decode on the fast tier transparently -- the
        knob rides the per-shard router checkpoints, no wire change."""
        fast_master = SchemaRouter(
            graph=master_router.graph,
            config=master_router.config.ablated(decode_backend="fast"))
        fast_master.restore(master_router.model, master_router.source_vocabulary,
                            master_router.target_vocabulary,
                            master_router.training_losses)
        built = ClusterRoutingService.from_router(
            fast_master, ClusterConfig(num_shards=2, strategy="size_balanced"))
        path = save_cluster(built, tmp_path_factory.mktemp("fastproc") / "ckpt")
        built.close()
        local = ShardWorker.from_checkpoint(
            0, path / "shard-00",
            serving_config=ServingConfig(enable_batching=False))
        assert local.router.config.decode_backend == "fast"
        with ProcShardWorker(0, path / "shard-00") as worker:
            questions = list(QUESTIONS[:6])
            over_wire = worker.route_batch(questions, max_candidates=3)
            in_process = local.route_batch(questions, max_candidates=3)
            # Same checkpoint, same kernel, same machine: the wire must not
            # change the fast tier's answers.
            assert _signature(over_wire) == _signature(in_process)
        local.close()


# -- the serve loop, driven in-process ----------------------------------------
class TestServeLoop:
    def _pipes(self):
        to_worker_read, to_worker_write = os.pipe()
        from_worker_read, from_worker_write = os.pipe()
        return (os.fdopen(to_worker_read, "rb", buffering=0),
                os.fdopen(to_worker_write, "wb", buffering=0),
                os.fdopen(from_worker_read, "rb", buffering=0),
                os.fdopen(from_worker_write, "wb", buffering=0))

    def _start(self, cluster_checkpoint):
        worker = ShardWorker.from_checkpoint(
            0, _shard_dir(cluster_checkpoint),
            serving_config=ServingConfig(enable_batching=False))
        worker_in, to_worker, from_worker, worker_out = self._pipes()
        thread = threading.Thread(target=serve, args=(worker, worker_in, worker_out),
                                  daemon=True)
        thread.start()
        hello = read_frame(from_worker)
        assert hello["type"] == "hello"
        check_protocol(hello)
        write_frame(to_worker, {"type": "hello_ack", "protocol": PROTOCOL_VERSION})
        return worker, thread, to_worker, from_worker

    def test_request_scoped_errors_keep_the_worker_serving(self, cluster_checkpoint):
        worker, thread, to_worker, from_worker = self._start(cluster_checkpoint)
        try:
            # "pong" is a valid frame but not something a worker handles: the
            # reply is an error frame, not a dead worker.
            write_frame(to_worker, {"type": "pong", "id": 1})
            reply = read_frame(from_worker)
            assert reply["type"] == "error" and reply["id"] == 1
            # a malformed batch (questions not a list) is request-scoped too
            write_frame(to_worker, {"type": "route_batch_request", "id": 2,
                                    "questions": None})
            assert read_frame(from_worker)["type"] == "error"
            # ...and the worker still answers real requests afterwards
            write_frame(to_worker, {"type": "route_batch_request", "id": 3,
                                    "questions": [QUESTIONS[0]]})
            reply = read_frame(from_worker)
            assert reply["type"] == "route_response" and reply["id"] == 3
            assert len(reply["routes"]) == 1
        finally:
            write_frame(to_worker, {"type": "shutdown", "id": 99})
            assert read_frame(from_worker)["type"] == "shutdown_ack"
            thread.join(timeout=10.0)
            assert not thread.is_alive()
            worker.close()

    def test_closing_the_pipe_shuts_the_worker_down(self, cluster_checkpoint):
        worker, thread, to_worker, from_worker = self._start(cluster_checkpoint)
        to_worker.close()  # dispatcher vanishes; EOF is treated as shutdown
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert read_frame(from_worker) is None
        worker.close()


# -- the whole cluster over subprocesses ---------------------------------------
class TestSubprocessCluster:
    def test_backend_agreement_on_seeded_workload(self, cluster_checkpoint):
        """Acceptance bar: >= 95% top-1 agreement between backends on a
        seeded 200-question workload (deterministic decode makes it exact)."""
        from repro.serving import LoadGenerator, WorkloadConfig

        inproc = load_cluster(cluster_checkpoint)
        sub = load_cluster(cluster_checkpoint,
                           config=ClusterConfig(worker_backend="subprocess"))
        try:
            workload = LoadGenerator(list(QUESTIONS), WorkloadConfig(
                num_requests=200, distribution="zipf", skew=1.0, seed=29)).workload()
            distinct = list(dict.fromkeys(workload))
            inproc_answers = dict(zip(distinct, inproc.submit_many(distinct,
                                                                   max_candidates=1)))
            sub_answers = dict(zip(distinct, sub.submit_many(distinct,
                                                             max_candidates=1)))
            agreements = sum(
                1 for question in workload
                if inproc_answers[question] and sub_answers[question]
                and inproc_answers[question][0].database
                == sub_answers[question][0].database
            )
            assert agreements / len(workload) >= 0.95
            # Scores travel as hex floats, so the match is in fact bit-exact.
            assert {q: _signature([r]) for q, r in sub_answers.items()} \
                == {q: _signature([r]) for q, r in inproc_answers.items()}
            stats = sub.stats()
            assert stats["worker_backend"] == "subprocess"
            assert stats["dispatcher"]["shard_failures"] == 0
            transports = [worker["transport"]
                          for shard in stats["shards"] for worker in shard["workers"]]
            assert all(t["alive"] for t in transports)
            assert len({t["pid"] for t in transports}) == len(transports)
        finally:
            inproc.close()
            sub.close()

    def test_worker_killed_mid_batch_fails_over_and_respawns(self, cluster_checkpoint):
        """The crash-respawn acceptance path: kill one worker mid-batch; the
        replica set fails over (no failed requests), and the killed worker is
        respawned from its checkpoint on the next attempt."""
        sub = load_cluster(cluster_checkpoint, config=ClusterConfig(
            worker_backend="subprocess", replicas=2, quarantine_seconds=0.0))
        try:
            baseline = sub.submit_many(list(QUESTIONS))
            victim = sub.shards[0].workers[0]
            victim.crash()  # dies mid-request, like an OOM kill would
            assert not victim.is_alive()
            survived = sub.submit_many(list(QUESTIONS))
            assert _signature(survived) == _signature(baseline)  # nothing failed
            # quarantine_seconds=0 means the crashed replica is retried on a
            # later wave, which transparently respawns it.
            for _ in range(3):
                sub.submit_many(list(QUESTIONS[:2]))
            assert victim.is_alive()
            assert victim.respawns >= 1
            assert sub.stats()["dispatcher"]["shard_failures"] == 0
        finally:
            sub.close()

    def test_from_router_builds_and_owns_a_temp_checkpoint(self, master_router):
        service = ClusterRoutingService.from_router(
            master_router, ClusterConfig(num_shards=2, worker_backend="subprocess"))
        owned = service._owned_checkpoint_dir
        try:
            assert owned is not None and owned.is_dir()
            routes = service.submit(QUESTIONS[0], max_candidates=2)
            assert routes and routes[0].database
        finally:
            service.close()
        assert not owned.exists()  # the temp checkpoint is cleaned up

    def test_shard_timeouts_are_counted(self, cluster_checkpoint):
        from repro.cluster import ClusterError

        sub = load_cluster(cluster_checkpoint, config=ClusterConfig(
            worker_backend="subprocess", allow_partial=True,
            shard_timeout_seconds=0.001))
        try:
            # With a 1 ms decode budget, anything from "one shard dropped" to
            # "every shard dropped" can happen; either way the misses must be
            # *counted as timeouts*, never silently folded into the gather.
            try:
                sub.submit_many(list(QUESTIONS))
            except ClusterError:
                pass  # every shard missed the budget: the request itself fails
            stats = sub.stats()
            assert stats["dispatcher"]["shards_timed_out"] >= 1
            assert stats["dispatcher"]["shards_timed_out"] \
                <= stats["dispatcher"]["shard_failures"]
        finally:
            sub.close()
