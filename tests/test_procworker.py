"""Multi-process shard workers: spawn, serve, crash, respawn, agree.

Uses a real 2-shard cluster checkpoint (trained once per module) so the
subprocess workers boot exactly the artifact production would hand them.  The
core contracts:

* a subprocess worker answers **bit-identically** to an in-process worker
  booted from the same shard checkpoint (scores cross the wire as hex floats);
* the whole subprocess-backed cluster matches the inproc-backed cluster on a
  seeded workload (the >= 95%% acceptance bar -- deterministic decode actually
  makes it 100%%);
* a worker killed mid-batch is survived: the replica layer fails over, the
  proxy respawns the process from its checkpoint, and no request fails;
* a request that outlives its timeout kills the wedged process and surfaces
  as :class:`ShardTimeoutError`, counted in ``shards_timed_out``;
* a traced request comes back as ONE stitched trace: the worker's spans ride
  the ``route_response`` frame and splice under the dispatcher's ``wire``
  span, while protocol-1 peers keep exchanging exactly the old frames;
* crashed or abandoned shard requests close their spans with an error status
  instead of leaking open traces.
"""

from __future__ import annotations

import os
import random
import threading
import time

import pytest

from test_cluster import QUESTIONS, _cluster_catalog

from repro.cluster import (
    ClusterConfig,
    ClusterRoutingService,
    ProcShardWorker,
    ShardTimeoutError,
    ShardWorker,
    WorkerCrashedError,
    load_cluster,
    save_cluster,
)
from repro.cluster.procworker import SLOW_CAREFUL_ENV, serve
from repro.cluster.transport import (
    BINARY_KEY,
    PROTOCOL_VERSION,
    check_protocol,
    read_frame,
    route_lists_from_binary,
    route_lists_from_payload,
    write_frame,
)
from repro.core import (
    RouterConfig,
    SchemaGraph,
    SchemaRouter,
    SchemaSampler,
    SynthesisConfig,
    TemplateQuestioner,
    synthesize_training_data,
)
from repro.obs import Tracer
from repro.serving.service import ServingConfig


@pytest.fixture(scope="module")
def master_router() -> SchemaRouter:
    catalog = _cluster_catalog()
    graph = SchemaGraph.from_catalog(catalog)
    questioner = TemplateQuestioner(catalog=catalog, seed=23)
    sampler = SchemaSampler(graph, seed=23)
    report = synthesize_training_data(sampler, questioner,
                                      SynthesisConfig(num_samples=300))
    router = SchemaRouter(graph=graph, config=RouterConfig(
        epochs=10, embedding_dim=24, hidden_dim=40, num_beams=8, beam_groups=4,
        seed=23))
    router.fit(report.examples)
    return router


@pytest.fixture(scope="module")
def cluster_checkpoint(master_router, tmp_path_factory):
    """A saved 2-shard cluster both backends boot from."""
    built = ClusterRoutingService.from_router(
        master_router, ClusterConfig(num_shards=2, strategy="size_balanced"))
    path = save_cluster(built, tmp_path_factory.mktemp("procworker") / "cluster-ckpt")
    built.close()
    return path


def _shard_dir(cluster_checkpoint, shard_id: int = 0):
    return cluster_checkpoint / f"shard-{shard_id:02d}"


def _signature(route_lists):
    return [[(route.database, route.tables, route.score) for route in routes]
            for routes in route_lists]


def _reply_routes(reply):
    """Decode a ``route_response`` in either wire form (binary or JSON)."""
    if "routes_binary" in reply:
        return route_lists_from_binary(reply["routes_binary"], reply[BINARY_KEY])
    return route_lists_from_payload(reply["routes"])


def _wait_until(predicate, timeout_seconds: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout_seconds
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


# -- one worker over the wire --------------------------------------------------
class TestProcShardWorker:
    def test_handshake_announces_the_shard(self, cluster_checkpoint):
        with ProcShardWorker(0, _shard_dir(cluster_checkpoint)) as worker:
            assert worker.is_alive()
            assert worker.pid is not None and worker.pid != os.getpid()
            assert len(worker.databases) > 0
            local = ShardWorker.from_checkpoint(
                0, _shard_dir(cluster_checkpoint),
                serving_config=ServingConfig(enable_batching=False))
            assert set(worker.databases) == set(local.databases)
            local.close()

    def test_routes_bit_identical_to_inproc_worker(self, cluster_checkpoint):
        local = ShardWorker.from_checkpoint(
            0, _shard_dir(cluster_checkpoint),
            serving_config=ServingConfig(enable_batching=False),
            escalation_num_beams=4)
        with ProcShardWorker(0, _shard_dir(cluster_checkpoint),
                             escalation_num_beams=4) as worker:
            questions = list(QUESTIONS)
            assert _signature(worker.route_batch(questions, max_candidates=3)) \
                == _signature(local.route_batch(questions, max_candidates=3))
            # The careful (escalation) tier crosses the wire too.
            assert _signature(worker.route_batch(questions, careful=True)) \
                == _signature(local.route_batch(questions, careful=True))
        local.close()

    def test_ping_stats_and_cache_invalidation(self, cluster_checkpoint):
        with ProcShardWorker(0, _shard_dir(cluster_checkpoint)) as worker:
            assert worker.ping() < 30.0
            worker.route_batch(list(QUESTIONS[:2]))
            worker.route_batch(list(QUESTIONS[:2]))  # second wave hits the cache
            stats = worker.stats()
            assert stats["shard_id"] == 0
            assert stats["counters"]["requests"] >= 4
            assert stats["counters"]["cache_hits"] >= 2
            assert stats["transport"]["alive"] is True
            assert stats["transport"]["backend"] == "subprocess"
            worker.notify_catalog_changed()  # must not raise; empties the cache
            worker.route_batch(list(QUESTIONS[:2]))
            assert worker.stats()["cache"]["size"] >= 1

    def test_graceful_close_stops_the_process(self, cluster_checkpoint):
        worker = ProcShardWorker(0, _shard_dir(cluster_checkpoint))
        process = worker.process
        worker.close()
        assert process.poll() is not None  # actually exited, not just orphaned
        assert not worker.is_alive()
        with pytest.raises(RuntimeError):
            worker.route_batch(["anything"])

    def test_crash_mid_request_raises_and_respawn_recovers(self, cluster_checkpoint):
        with ProcShardWorker(0, _shard_dir(cluster_checkpoint)) as worker:
            first_pid = worker.pid
            baseline = worker.route_batch(list(QUESTIONS[:2]))
            worker.crash()
            assert not worker.is_alive()
            assert worker.crashes == 1
            # auto-respawn: the next request boots a fresh process from the
            # same checkpoint and answers identically.
            again = worker.route_batch(list(QUESTIONS[:2]))
            assert worker.is_alive()
            assert worker.pid != first_pid
            assert worker.respawns == 1
            assert _signature(again) == _signature(baseline)

    def test_crash_without_auto_respawn_surfaces(self, cluster_checkpoint):
        with ProcShardWorker(0, _shard_dir(cluster_checkpoint),
                             auto_respawn=False) as worker:
            worker.crash()
            with pytest.raises(WorkerCrashedError):
                worker.route_batch(list(QUESTIONS[:1]))

    def test_request_timeout_kills_the_wedged_process(self, cluster_checkpoint):
        with ProcShardWorker(0, _shard_dir(cluster_checkpoint),
                             request_timeout_seconds=0.001) as worker:
            victim = worker.process
            with pytest.raises(ShardTimeoutError):
                worker.route_batch(list(QUESTIONS))
            assert worker.timeouts == 1
            assert victim.poll() is not None  # a wedged worker is killed
            # Relaxing the deadline and retrying respawns and succeeds.
            worker.request_timeout_seconds = None
            assert len(worker.route_batch(list(QUESTIONS[:1]))) == 1

    def test_missing_checkpoint_fails_spawn(self, tmp_path):
        with pytest.raises(WorkerCrashedError):
            ProcShardWorker(0, tmp_path / "no-such-checkpoint",
                            spawn_timeout_seconds=30.0)

    def test_set_databases_is_refused_over_the_wire(self, cluster_checkpoint,
                                                    master_router):
        with ProcShardWorker(0, _shard_dir(cluster_checkpoint)) as worker:
            with pytest.raises(Exception, match="re-projected"):
                worker.set_databases(("world_atlas",), master_router)


class TestFastBackendOverTheWire:
    def test_subprocess_worker_rides_fast_decode_tier(self, master_router,
                                                      tmp_path_factory):
        """A cluster saved from a ``decode_backend="fast"`` master boots
        subprocess workers that decode on the fast tier transparently -- the
        knob rides the per-shard router checkpoints, no wire change."""
        fast_master = SchemaRouter(
            graph=master_router.graph,
            config=master_router.config.ablated(decode_backend="fast"))
        fast_master.restore(master_router.model, master_router.source_vocabulary,
                            master_router.target_vocabulary,
                            master_router.training_losses)
        built = ClusterRoutingService.from_router(
            fast_master, ClusterConfig(num_shards=2, strategy="size_balanced"))
        path = save_cluster(built, tmp_path_factory.mktemp("fastproc") / "ckpt")
        built.close()
        local = ShardWorker.from_checkpoint(
            0, path / "shard-00",
            serving_config=ServingConfig(enable_batching=False))
        assert local.router.config.decode_backend == "fast"
        with ProcShardWorker(0, path / "shard-00") as worker:
            questions = list(QUESTIONS[:6])
            over_wire = worker.route_batch(questions, max_candidates=3)
            in_process = local.route_batch(questions, max_candidates=3)
            # Same checkpoint, same kernel, same machine: the wire must not
            # change the fast tier's answers.
            assert _signature(over_wire) == _signature(in_process)
        local.close()


# -- the serve loop, driven in-process ----------------------------------------
class TestServeLoop:
    def _pipes(self):
        to_worker_read, to_worker_write = os.pipe()
        from_worker_read, from_worker_write = os.pipe()
        return (os.fdopen(to_worker_read, "rb", buffering=0),
                os.fdopen(to_worker_write, "wb", buffering=0),
                os.fdopen(from_worker_read, "rb", buffering=0),
                os.fdopen(from_worker_write, "wb", buffering=0))

    def _start(self, cluster_checkpoint, protocol: int = PROTOCOL_VERSION,
               escalation_num_beams: int | None = None, **serve_kwargs):
        worker = ShardWorker.from_checkpoint(
            0, _shard_dir(cluster_checkpoint),
            serving_config=ServingConfig(enable_batching=False),
            escalation_num_beams=escalation_num_beams)
        worker_in, to_worker, from_worker, worker_out = self._pipes()
        thread = threading.Thread(target=serve, args=(worker, worker_in, worker_out),
                                  kwargs=serve_kwargs, daemon=True)
        thread.start()
        hello = read_frame(from_worker)
        assert hello["type"] == "hello"
        check_protocol(hello)
        write_frame(to_worker, {"type": "hello_ack", "protocol": protocol})
        return worker, thread, to_worker, from_worker

    def _stop(self, worker, thread, to_worker, from_worker):
        write_frame(to_worker, {"type": "shutdown", "id": 99})
        assert read_frame(from_worker)["type"] == "shutdown_ack"
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        worker.close()

    def test_request_scoped_errors_keep_the_worker_serving(self, cluster_checkpoint):
        worker, thread, to_worker, from_worker = self._start(cluster_checkpoint)
        try:
            # "pong" is a valid frame but not something a worker handles: the
            # reply is an error frame, not a dead worker.
            write_frame(to_worker, {"type": "pong", "id": 1})
            reply = read_frame(from_worker)
            assert reply["type"] == "error" and reply["id"] == 1
            # a malformed batch (questions not a list) is request-scoped too
            write_frame(to_worker, {"type": "route_batch_request", "id": 2,
                                    "questions": None})
            assert read_frame(from_worker)["type"] == "error"
            # ...and the worker still answers real requests afterwards
            write_frame(to_worker, {"type": "route_batch_request", "id": 3,
                                    "questions": [QUESTIONS[0]]})
            reply = read_frame(from_worker)
            assert reply["type"] == "route_response" and reply["id"] == 3
            assert len(_reply_routes(reply)) == 1
        finally:
            self._stop(worker, thread, to_worker, from_worker)

    def test_closing_the_pipe_shuts_the_worker_down(self, cluster_checkpoint):
        worker, thread, to_worker, from_worker = self._start(cluster_checkpoint)
        to_worker.close()  # dispatcher vanishes; EOF is treated as shutdown
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert read_frame(from_worker) is None
        worker.close()

    def test_traceless_requests_get_exactly_the_old_reply_shape(self, cluster_checkpoint):
        """A protocol-1 dispatcher never sends the ``trace`` field; the reply
        it gets back must not grow a ``spans`` key (or a binary segment) it
        cannot know about."""
        worker, thread, to_worker, from_worker = self._start(cluster_checkpoint,
                                                             protocol=1)
        try:
            write_frame(to_worker, {"type": "route_batch_request", "id": 1,
                                    "questions": [QUESTIONS[0]]})
            reply = read_frame(from_worker)
            assert reply["type"] == "route_response" and reply["id"] == 1
            assert "spans" not in reply
            assert "routes_binary" not in reply and BINARY_KEY not in reply
            assert len(reply["routes"]) == 1  # plain hex-float JSON payload
        finally:
            self._stop(worker, thread, to_worker, from_worker)

    def test_binary_payloads_match_protocol_2_json_bit_exactly(self, cluster_checkpoint):
        """The v3 binary segment is an *encoding*, not a different answer:
        decoding it must reproduce the protocol-2 hex-float JSON routes
        bit-for-bit from the same worker checkpoint."""
        v3 = self._start(cluster_checkpoint)
        v2 = self._start(cluster_checkpoint, protocol=2)
        try:
            request = {"type": "route_batch_request", "id": 1,
                       "questions": list(QUESTIONS[:3]), "max_candidates": 3}
            write_frame(v3[2], dict(request))
            write_frame(v2[2], dict(request))
            reply3 = read_frame(v3[3])
            reply2 = read_frame(v2[3])
            assert "routes_binary" in reply3 and BINARY_KEY in reply3
            assert isinstance(reply3[BINARY_KEY], bytes)
            assert "routes" in reply2 and BINARY_KEY not in reply2
            assert _signature(_reply_routes(reply3)) \
                == _signature(_reply_routes(reply2))
        finally:
            self._stop(*v3)
            self._stop(*v2)

    def test_responses_demux_out_of_order_by_correlation_id(self, cluster_checkpoint):
        """Multiplexing at the serve loop: a slow careful frame sent FIRST
        must not block the fast frames pipelined behind it -- replies come
        back in completion order and the correlation ids pair them up."""
        worker, thread, to_worker, from_worker = self._start(
            cluster_checkpoint, escalation_num_beams=4,
            slow_careful_seconds=1.0)
        try:
            rng = random.Random(7)
            for _ in range(2):
                ids = rng.sample(range(10, 100), 5)
                careful_id, fast_ids = ids[0], ids[1:]
                write_frame(to_worker, {"type": "route_batch_request",
                                        "id": careful_id, "careful": True,
                                        "questions": [QUESTIONS[0]]})
                for fast_id in fast_ids:
                    write_frame(to_worker, {
                        "type": "route_batch_request", "id": fast_id,
                        "questions": [QUESTIONS[fast_id % len(QUESTIONS)]]})
                replies = [read_frame(from_worker) for _ in ids]
                assert all(reply["type"] == "route_response" for reply in replies)
                # every id answered exactly once, whatever the arrival order
                assert sorted(reply["id"] for reply in replies) == sorted(ids)
                assert all(len(_reply_routes(reply)) == 1 for reply in replies)
                # the slow careful frame went out first but answers last:
                # responses genuinely overtake each other on the pipe
                assert replies[-1]["id"] == careful_id
        finally:
            self._stop(worker, thread, to_worker, from_worker)

    def test_shutdown_drains_in_flight_decodes_first(self, cluster_checkpoint):
        """Graceful drain: a shutdown pipelined behind a slow request must
        let the in-flight decode answer before the ack."""
        worker, thread, to_worker, from_worker = self._start(
            cluster_checkpoint, escalation_num_beams=4,
            slow_careful_seconds=0.5)
        write_frame(to_worker, {"type": "route_batch_request", "id": 5,
                                "careful": True, "questions": [QUESTIONS[0]]})
        write_frame(to_worker, {"type": "shutdown", "id": 9})
        first = read_frame(from_worker)
        assert first["type"] == "route_response" and first["id"] == 5
        ack = read_frame(from_worker)
        assert ack["type"] == "shutdown_ack" and ack["id"] == 9
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        worker.close()

    def test_trace_field_comes_back_as_adopted_spans(self, cluster_checkpoint):
        """The child-side wire contract: a ``trace`` payload on the request
        frame makes the worker adopt that trace id and ship its span tree
        back in ``route_response.spans``."""
        worker, thread, to_worker, from_worker = self._start(cluster_checkpoint)
        try:
            write_frame(to_worker, {
                "type": "route_batch_request", "id": 1,
                "questions": [QUESTIONS[0], QUESTIONS[1]],
                "trace": {"trace_id": "t" * 16, "parent_span_id": "p" * 16},
            })
            reply = read_frame(from_worker)
            assert reply["type"] == "route_response"
            spans = reply["spans"]
            assert {span["trace_id"] for span in spans} == {"t" * 16}
            by_name = {span["name"]: span for span in spans}
            assert by_name["worker"]["parent_id"] == "p" * 16
            assert by_name["worker"]["attributes"]["shard"] == 0
            worker_id = by_name["worker"]["span_id"]
            for stage in ("encode", "decode", "parse"):
                assert by_name[stage]["parent_id"] == worker_id
                assert by_name[stage]["status"] == "ok"
            assert by_name["decode"]["attributes"]["steps"] >= 1
        finally:
            write_frame(to_worker, {"type": "shutdown", "id": 99})
            assert read_frame(from_worker)["type"] == "shutdown_ack"
            thread.join(timeout=10.0)
            worker.close()


# -- the multiplexing client, end to end ----------------------------------------
class TestMultiplexedTransport:
    def test_careful_escalation_overlaps_fast_tier(self, cluster_checkpoint,
                                                   monkeypatch):
        """The acceptance path for pipelining: with a careful request wedged
        in the worker (injected 2s stall), fast requests on the SAME worker
        still answer -- the wire carries both frames concurrently instead of
        queueing the fast tier behind the slow one."""
        monkeypatch.setenv(SLOW_CAREFUL_ENV, "2.0")
        with ProcShardWorker(0, _shard_dir(cluster_checkpoint),
                             escalation_num_beams=4) as worker:
            careful_routes = []

            def run_careful():
                careful_routes.append(
                    worker.route_batch([QUESTIONS[0]], careful=True))

            thread = threading.Thread(target=run_careful, daemon=True)
            started = time.monotonic()
            thread.start()
            assert _wait_until(lambda: worker.in_flight >= 1)
            fast = worker.route_batch(list(QUESTIONS[:2]))
            fast_elapsed = time.monotonic() - started
            # the fast wave finished while the careful frame was still in
            # flight: wall-clock proof the tiers overlapped on one worker
            assert thread.is_alive()
            assert fast_elapsed < 2.0
            assert len(fast) == 2 and all(fast)
            thread.join(timeout=30.0)
            assert not thread.is_alive() and careful_routes[0][0]
            stats = worker.transport_stats()
            assert stats["max_in_flight"] >= 2
            assert stats["pipelined_frames"] >= 1
            assert stats["binary_responses"] >= 2

    def test_ping_and_health_answer_out_of_band_while_busy(self, cluster_checkpoint,
                                                           monkeypatch):
        """PR-7's health probe had to assume a lock-busy worker was working;
        now the probe's ping is answered on the child's reader thread even
        with a decode wedged, so 'busy' and 'alive' are separable."""
        from repro.obs.health import HealthPolicy

        monkeypatch.setenv(SLOW_CAREFUL_ENV, "3.0")
        with ProcShardWorker(0, _shard_dir(cluster_checkpoint),
                             escalation_num_beams=4) as worker:
            worker.ping()  # establish a heartbeat before wedging the worker
            thread = threading.Thread(
                target=lambda: worker.route_batch([QUESTIONS[0]], careful=True),
                daemon=True)
            thread.start()
            assert _wait_until(lambda: worker.in_flight >= 1)
            assert worker.ping() < 1.0  # out-of-band: not behind the stall
            # force the stale-heartbeat branch: the probe must re-check with
            # a real ping instead of assuming, and report what it measured
            report = worker.health(HealthPolicy(heartbeat_max_age_seconds=0.0))
            assert report.status == "ok"
            assert report.details["in_flight"] >= 1
            assert report.details["heartbeat_check"].startswith("ping answered")
            thread.join(timeout=30.0)
            assert not thread.is_alive()

    def test_crash_mid_wave_fails_all_in_flight_then_respawns_clean(
            self, cluster_checkpoint, monkeypatch):
        monkeypatch.setenv(SLOW_CAREFUL_ENV, "5.0")
        with ProcShardWorker(0, _shard_dir(cluster_checkpoint),
                             escalation_num_beams=4) as worker:
            errors = []

            def run_careful():
                try:
                    worker.route_batch([QUESTIONS[0]], careful=True)
                except Exception as error:  # noqa: BLE001 - collected for asserts
                    errors.append(error)

            threads = [threading.Thread(target=run_careful, daemon=True)
                       for _ in range(3)]
            for thread in threads:
                thread.start()
            assert _wait_until(lambda: worker.in_flight >= 3)
            worker.crash()
            for thread in threads:
                thread.join(timeout=10.0)
            assert not any(thread.is_alive() for thread in threads)
            # every in-flight frame failed loudly -- none hung, none vanished
            assert len(errors) == 3
            assert all(isinstance(error, WorkerCrashedError) for error in errors)
            assert worker.crashes == 1
            assert worker.in_flight == 0
            # the respawned child must not inherit the stall
            monkeypatch.delenv(SLOW_CAREFUL_ENV)
            again = worker.route_batch(list(QUESTIONS[:2]))
            assert len(again) == 2 and worker.respawns == 1

    def test_timeout_mid_wave_kills_the_worker_and_fails_peers(
            self, cluster_checkpoint, monkeypatch):
        monkeypatch.setenv(SLOW_CAREFUL_ENV, "5.0")
        with ProcShardWorker(0, _shard_dir(cluster_checkpoint),
                             escalation_num_beams=4,
                             request_timeout_seconds=0.5) as worker:
            victim = worker.process
            errors = []

            def run_careful():
                try:
                    worker.route_batch([QUESTIONS[0]], careful=True)
                except Exception as error:  # noqa: BLE001 - collected for asserts
                    errors.append(error)

            threads = [threading.Thread(target=run_careful, daemon=True)
                       for _ in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
            assert not any(thread.is_alive() for thread in threads)
            # the first deadline to fire kills the wedged process; its peers
            # fail as either their own timeout or the induced crash -- but
            # every one of them fails, and the kill is counted
            assert len(errors) == 3
            assert all(isinstance(error, (ShardTimeoutError, WorkerCrashedError))
                       for error in errors)
            assert any(isinstance(error, ShardTimeoutError) for error in errors)
            assert worker.timeouts >= 1
            assert victim.poll() is not None
            monkeypatch.delenv(SLOW_CAREFUL_ENV)
            worker.request_timeout_seconds = None
            assert len(worker.route_batch([QUESTIONS[0]])) == 1
            assert worker.respawns >= 1

    def test_protocol_2_peer_answers_bit_identically(self, cluster_checkpoint):
        """Interop: capping the handshake at protocol 2 makes the same child
        binary speak the old hex-float JSON frames -- and the answers must be
        bit-identical to the v3 binary path on both tiers."""
        questions = list(QUESTIONS[:6])
        with ProcShardWorker(0, _shard_dir(cluster_checkpoint),
                             escalation_num_beams=4) as v3, \
                ProcShardWorker(0, _shard_dir(cluster_checkpoint),
                                escalation_num_beams=4, protocol_cap=2) as v2:
            assert v3.peer_protocol == PROTOCOL_VERSION
            assert v2.peer_protocol == 2
            assert _signature(v2.route_batch(questions, max_candidates=3)) \
                == _signature(v3.route_batch(questions, max_candidates=3))
            assert _signature(v2.route_batch(questions, careful=True)) \
                == _signature(v3.route_batch(questions, careful=True))
            assert v3.transport_stats()["binary_responses"] >= 2
            v2_stats = v2.transport_stats()
            assert v2_stats["protocol"] == 2
            assert v2_stats["binary_responses"] == 0

    def test_serial_twin_keeps_one_frame_in_flight(self, cluster_checkpoint):
        """``pipeline=False`` is the pre-multiplexing discipline: concurrent
        callers serialize at the gate, so the wire never carries more than
        one frame -- the faithful baseline the bench compares against."""
        with ProcShardWorker(0, _shard_dir(cluster_checkpoint),
                             pipeline=False, protocol_cap=2) as worker:
            threads = [threading.Thread(
                target=lambda index=index: worker.route_batch(
                    [QUESTIONS[index % len(QUESTIONS)]]),
                daemon=True) for index in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            assert not any(thread.is_alive() for thread in threads)
            stats = worker.transport_stats()
            assert stats["pipelined"] is False
            assert stats["max_in_flight"] == 1
            assert stats["pipelined_frames"] == 0


# -- tracing across the process boundary ---------------------------------------
class TestTracingOverTheWire:
    def test_single_request_produces_one_stitched_trace(self, cluster_checkpoint):
        """The acceptance path: one seeded request through a subprocess-backed
        cluster yields one complete trace -- per-shard scatter and wire spans,
        the workers' own encode/decode/parse spans stitched in from across the
        process boundary, the merge, and (threshold 1.0 forces it) the
        escalation pass -- all under a single trace id."""
        sub = load_cluster(cluster_checkpoint,
                           config=ClusterConfig(worker_backend="subprocess"))
        try:
            # the escalation threshold rides the checkpoint (it is a decode
            # -shape knob); raise it on the live dispatcher so the cascade is
            # guaranteed to fire (merged top-1 softmax weight is always < 1)
            sub.dispatcher.escalation_threshold = 1.0
            routes = sub.submit(QUESTIONS[0], max_candidates=2)
            assert routes and routes[0].database
            journal = sub.tracer.journal
            assert journal.open_trace_count() == 0
            assert journal.open_span_count() == 0
            (record,) = journal.slowest()
            assert record["status"] == "ok"
            spans = record["spans"]
            assert {span["trace_id"] for span in spans} == {record["trace_id"]}
            assert all(span["ended"] is not None for span in spans)
            by_name: dict[str, list[dict]] = {}
            for span in spans:
                by_name.setdefault(span["name"], []).append(span)

            (root,) = by_name["request"]
            (escalation,) = by_name["escalation"]
            # each tier merges its own gather: one under the root, one under
            # the escalation span
            assert {span["parent_id"] for span in by_name["merge"]} \
                == {root["span_id"], escalation["span_id"]}
            # both tiers scatter to both shards: 2 fast + 2 careful arms
            assert len(by_name["scatter"]) == 4
            assert len(by_name["wire"]) == 4
            assert {span["parent_id"] for span in by_name["scatter"]} \
                == {root["span_id"], escalation["span_id"]}
            scatter_ids = {span["span_id"] for span in by_name["scatter"]}
            assert all(span["parent_id"] in scatter_ids
                       for span in by_name["wire"])
            # every wire span reports how deep its worker's pipeline was when
            # the frame went out (>= 1: at least this request was in flight)
            assert all(span["attributes"]["in_flight"] >= 1
                       for span in by_name["wire"])

            # the workers' spans crossed the wire: remote, rebased, and
            # parented under their wire anchors
            workers = by_name["worker"]
            assert len(workers) == 4 and all(s["remote"] for s in workers)
            wire_ids = {span["span_id"] for span in by_name["wire"]}
            assert all(span["parent_id"] in wire_ids for span in workers)
            assert {span["attributes"]["shard"] for span in workers} == {0, 1}
            worker_ids = {span["span_id"] for span in workers}
            for stage in ("encode", "decode", "parse"):
                assert len(by_name[stage]) == 4
                assert all(span["remote"] for span in by_name[stage])
                assert all(span["parent_id"] in worker_ids
                           for span in by_name[stage])
            decode = by_name["decode"][0]
            assert decode["attributes"]["steps"] >= 1
            assert "mask_cache_hits" in decode["attributes"]
            assert "mask_cache_misses" in decode["attributes"]

            # locally-recorded spans feed the cluster's stage breakdown;
            # the journal summary rides the stats snapshot
            stats = sub.stats()
            assert {"request", "scatter", "wire", "merge", "escalation"} \
                <= set(stats["stages"])
            assert stats["traces"]["completed"] == 1
            assert stats["traces"]["slowest"][0]["trace_id"] == record["trace_id"]
            # ...and the workers recorded their stages against their own
            # registries (remote spans are never double-counted locally)
            assert "decode" not in stats["stages"]
            worker_stats = stats["shards"][0]["workers"][0]
            assert worker_stats["stages"]["decode"]["count"] >= 1
        finally:
            sub.close()

    def test_trace_fields_are_withheld_from_protocol_1_peers(self, cluster_checkpoint):
        """Interop: a dispatcher that traces must keep speaking old frames to
        a protocol-1 worker -- no ``trace`` field on the wire, no remote spans
        expected back, and the request itself still answers."""
        with ProcShardWorker(0, _shard_dir(cluster_checkpoint)) as worker:
            assert worker.peer_protocol == PROTOCOL_VERSION
            worker.peer_protocol = 1  # as if an old worker image answered hello
            tracer = Tracer()
            trace = tracer.start_trace("request")
            routes = worker.route_batch([QUESTIONS[0]], max_candidates=2,
                                        trace=trace)
            trace.finish()
            assert len(routes) == 1 and routes[0]
            (wire,) = trace.find_spans("wire")
            assert wire.status == "ok"
            # the suppressed field means the (actually trace-aware) child saw
            # no trace and shipped no spans: nothing remote got stitched
            assert not [span for span in trace.spans() if span.remote]
            assert tracer.journal.open_trace_count() == 0

    def test_crashed_shard_request_closes_its_span_as_an_error(self, cluster_checkpoint):
        """The leak guard at the proxy: a worker that dies mid-request ends
        the ``wire`` span with an error status, and finishing the trace
        leaves nothing open in the journal."""
        tracer = Tracer()
        with ProcShardWorker(0, _shard_dir(cluster_checkpoint),
                             auto_respawn=False) as worker:
            worker.crash()
            trace = tracer.start_trace("request")
            with pytest.raises(WorkerCrashedError):
                worker.route_batch([QUESTIONS[0]], trace=trace)
            trace.finish()
        (wire,) = trace.find_spans("wire")
        assert wire.status == "error"
        assert "WorkerCrashedError" in wire.error
        assert trace.root.status == "ok"  # the trace completed, fully closed
        assert tracer.journal.open_trace_count() == 0
        assert tracer.journal.open_span_count() == 0
        assert tracer.journal.completed == 1


# -- the whole cluster over subprocesses ---------------------------------------
class TestSubprocessCluster:
    def test_backend_agreement_on_seeded_workload(self, cluster_checkpoint):
        """Acceptance bar: >= 95% top-1 agreement between backends on a
        seeded 200-question workload (deterministic decode makes it exact)."""
        from repro.serving import LoadGenerator, WorkloadConfig

        inproc = load_cluster(cluster_checkpoint)
        sub = load_cluster(cluster_checkpoint,
                           config=ClusterConfig(worker_backend="subprocess"))
        try:
            workload = LoadGenerator(list(QUESTIONS), WorkloadConfig(
                num_requests=200, distribution="zipf", skew=1.0, seed=29)).workload()
            distinct = list(dict.fromkeys(workload))
            inproc_answers = dict(zip(distinct, inproc.submit_many(distinct,
                                                                   max_candidates=1)))
            sub_answers = dict(zip(distinct, sub.submit_many(distinct,
                                                             max_candidates=1)))
            agreements = sum(
                1 for question in workload
                if inproc_answers[question] and sub_answers[question]
                and inproc_answers[question][0].database
                == sub_answers[question][0].database
            )
            assert agreements / len(workload) >= 0.95
            # Scores travel as hex floats, so the match is in fact bit-exact.
            assert {q: _signature([r]) for q, r in sub_answers.items()} \
                == {q: _signature([r]) for q, r in inproc_answers.items()}
            stats = sub.stats()
            assert stats["worker_backend"] == "subprocess"
            assert stats["dispatcher"]["shard_failures"] == 0
            transports = [worker["transport"]
                          for shard in stats["shards"] for worker in shard["workers"]]
            assert all(t["alive"] for t in transports)
            assert len({t["pid"] for t in transports}) == len(transports)
            # the cluster-level rollup aggregates every worker's transport
            rollup = stats["transport"]
            assert rollup["workers"] == len(transports)
            # one batched scatter frame per worker (plus the stats poll)
            assert rollup["requests_sent"] >= len(transports)
            assert rollup["binary_responses"] >= len(transports)
            assert rollup["bytes_sent"] > 0 and rollup["bytes_received"] > 0
            assert rollup["crashes"] == 0 and rollup["timeouts"] == 0
        finally:
            inproc.close()
            sub.close()

    def test_worker_killed_mid_batch_fails_over_and_respawns(self, cluster_checkpoint):
        """The crash-respawn acceptance path: kill one worker mid-batch; the
        replica set fails over (no failed requests), and the killed worker is
        respawned from its checkpoint on the next attempt."""
        sub = load_cluster(cluster_checkpoint, config=ClusterConfig(
            worker_backend="subprocess", replicas=2, quarantine_seconds=0.0))
        try:
            baseline = sub.submit_many(list(QUESTIONS))
            victim = sub.shards[0].workers[0]
            victim.crash()  # dies mid-request, like an OOM kill would
            assert not victim.is_alive()
            survived = sub.submit_many(list(QUESTIONS))
            assert _signature(survived) == _signature(baseline)  # nothing failed
            # quarantine_seconds=0 means the crashed replica is retried on a
            # later wave, which transparently respawns it.
            for _ in range(3):
                sub.submit_many(list(QUESTIONS[:2]))
            assert victim.is_alive()
            assert victim.respawns >= 1
            stats = sub.stats()
            assert stats["dispatcher"]["shard_failures"] == 0
            # the chaos left no trace half-open: every span of every wave --
            # including any failed-over shard attempt -- was closed
            assert stats["traces"]["open_traces"] == 0
            assert stats["traces"]["open_spans"] == 0
            assert stats["traces"]["completed"] >= 5
        finally:
            sub.close()

    def test_from_router_builds_and_owns_a_temp_checkpoint(self, master_router):
        service = ClusterRoutingService.from_router(
            master_router, ClusterConfig(num_shards=2, worker_backend="subprocess"))
        owned = service._owned_checkpoint_dir
        try:
            assert owned is not None and owned.is_dir()
            routes = service.submit(QUESTIONS[0], max_candidates=2)
            assert routes and routes[0].database
        finally:
            service.close()
        assert not owned.exists()  # the temp checkpoint is cleaned up

    def test_pipelined_transport_off_is_a_faithful_protocol_2_cluster(
            self, cluster_checkpoint):
        """``pipelined_transport=False`` boots the serial twin fleet: every
        worker handshakes at protocol 2 (hex-float JSON, one frame in
        flight) and still answers bit-identically to the pipelined fleet."""
        serial = load_cluster(cluster_checkpoint, config=ClusterConfig(
            worker_backend="subprocess", pipelined_transport=False))
        pipelined = load_cluster(cluster_checkpoint,
                                 config=ClusterConfig(worker_backend="subprocess"))
        try:
            questions = list(QUESTIONS[:6])
            assert _signature(serial.submit_many(questions)) \
                == _signature(pipelined.submit_many(questions))
            stats = serial.stats()
            transports = [worker["transport"]
                          for shard in stats["shards"]
                          for worker in shard["workers"]]
            assert all(t["protocol"] == 2 for t in transports)
            assert all(t["pipelined"] is False for t in transports)
            assert stats["transport"]["binary_responses"] == 0
            assert stats["transport"]["max_in_flight"] <= 1
        finally:
            serial.close()
            pipelined.close()

    def test_shard_timeouts_are_counted(self, cluster_checkpoint):
        from repro.cluster import ClusterError

        sub = load_cluster(cluster_checkpoint, config=ClusterConfig(
            worker_backend="subprocess", allow_partial=True,
            shard_timeout_seconds=0.001))
        try:
            # With a 1 ms decode budget, anything from "one shard dropped" to
            # "every shard dropped" can happen; either way the misses must be
            # *counted as timeouts*, never silently folded into the gather.
            try:
                sub.submit_many(list(QUESTIONS))
            except ClusterError:
                pass  # every shard missed the budget: the request itself fails
            stats = sub.stats()
            assert stats["dispatcher"]["shards_timed_out"] >= 1
            assert stats["dispatcher"]["shards_timed_out"] \
                <= stats["dispatcher"]["shard_failures"]
        finally:
            sub.close()
