"""The control plane: admission, the adaptive gate, and the controller loop.

The contracts:

* the admission controller's three gates (queue depth, burn shedding, token
  bucket) judge deterministically on an injected clock — shed-then-recover
  is a hysteresis lifecycle, not a flicker;
* a :class:`RoutingService` with admission sheds cache-missing decodes with
  a typed, fast :class:`AdmissionRejected`, surfaces the rejections in
  ``stats()`` / ``health()`` / the trace journal, and never interferes with
  steady-state traffic;
* the adaptive escalation gate converges on its target rate, respects its
  frozen bounds, and re-anchors on counter resets;
* the controller splits hot shards and merges cold ones under hysteresis
  and per-database cooldown — and a tick never raises;
* the monitor's observer hook feeds every successful tick to subscribers
  and survives a subscriber that throws.
"""

from __future__ import annotations

import pytest

from test_serving import _serving_catalog

from repro.core import (
    RouterConfig,
    SchemaGraph,
    SchemaRouter,
    SchemaSampler,
    SynthesisConfig,
    TemplateQuestioner,
    synthesize_training_data,
)
from repro.cluster import ClusterConfig, ClusterRoutingService
from repro.cluster.dispatcher import ClusterDispatcher
from repro.control import (
    AdaptiveEscalationConfig,
    AdaptiveEscalationGate,
    AdmissionController,
    AdmissionPolicy,
    AdmissionRejected,
    Controller,
    ControllerConfig,
)
from repro.obs.health import HealthPolicy, HealthReport
from repro.obs.monitor import Monitor
from repro.serving import (
    RoutingService,
    ScenarioConfig,
    ScenarioDriver,
    ScenarioPhase,
    ServingConfig,
    named_scenario,
)
from repro.serving.metrics import WindowedCounter


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def trained_router() -> SchemaRouter:
    catalog = _serving_catalog()
    graph = SchemaGraph.from_catalog(catalog)
    questioner = TemplateQuestioner(catalog=catalog, seed=11)
    sampler = SchemaSampler(graph, seed=11)
    report = synthesize_training_data(sampler, questioner,
                                      SynthesisConfig(num_samples=250))
    router = SchemaRouter(graph=graph, config=RouterConfig(
        epochs=10, embedding_dim=24, hidden_dim=40, num_beams=4,
        beam_groups=2, seed=11))
    router.fit(report.examples)
    return router


# -- the admission controller --------------------------------------------------
class TestAdmissionPolicy:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_qps=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(burst_requests=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(shed_burn=1.0, recover_burn=2.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(shed_admit_every=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(queue_shed_ratio=-1.0)


class TestTokenBucket:
    def test_burst_then_ceiling_then_refill(self):
        clock = FakeClock()
        controller = AdmissionController(
            AdmissionPolicy(max_qps=10.0, burst_requests=2.0), clock=clock)
        controller.admit()
        controller.admit()
        with pytest.raises(AdmissionRejected) as excinfo:
            controller.admit()
        assert excinfo.value.reason == "rate_limit"
        assert excinfo.value.retry_after_seconds == pytest.approx(0.1)
        # A tenth of a second refills exactly one token at 10 qps.
        clock.advance(0.1)
        controller.admit()
        stats = controller.stats()
        assert stats["admitted"] == 3
        assert stats["rejected"] == 1
        assert stats["rejected_by_reason"]["rate_limit"] == 1

    def test_wave_weight_is_atomic(self):
        clock = FakeClock()
        controller = AdmissionController(
            AdmissionPolicy(max_qps=10.0, burst_requests=4.0), clock=clock)
        with pytest.raises(AdmissionRejected):
            controller.admit(weight=5)
        controller.admit(weight=4)
        assert controller.stats()["admitted"] == 4


class TestQueueGate:
    def test_backlog_rejects_and_recovers(self):
        controller = AdmissionController(
            AdmissionPolicy(queue_shed_ratio=4.0), clock=FakeClock())
        with pytest.raises(AdmissionRejected) as excinfo:
            controller.admit(queue_depth=32, queue_capacity=8)
        assert excinfo.value.reason == "queue_depth"
        controller.admit(queue_depth=31, queue_capacity=8)

    def test_no_capacity_means_no_gate(self):
        controller = AdmissionController(clock=FakeClock())
        controller.admit(queue_depth=10_000, queue_capacity=None)


class TestBurnShedding:
    def test_shed_then_recover_lifecycle(self):
        clock = FakeClock()
        controller = AdmissionController(
            AdmissionPolicy(shed_burn=2.0, recover_burn=1.0,
                            min_shed_seconds=5.0, shed_admit_every=4),
            clock=clock)
        assert controller.observe_burn(1.5) is False  # below shed_burn
        assert controller.observe_burn(2.5) is True
        # Deterministic 1-in-4 admission while shedding.
        outcomes = []
        for _ in range(8):
            try:
                controller.admit()
                outcomes.append("admitted")
            except AdmissionRejected as rejection:
                assert rejection.reason == "burn_rate"
                outcomes.append("shed")
        assert outcomes.count("admitted") == 2
        assert outcomes.count("shed") == 6
        # Burn recovered, but the hysteresis window has not passed yet.
        clock.advance(2.0)
        assert controller.observe_burn(0.5) is True
        clock.advance(4.0)
        assert controller.observe_burn(0.5) is False
        controller.admit()
        stats = controller.stats()
        assert stats["shed_events"] == 1
        assert stats["shedding"] is False

    def test_flicker_around_threshold_does_not_flap(self):
        clock = FakeClock()
        controller = AdmissionController(
            AdmissionPolicy(shed_burn=2.0, recover_burn=1.0,
                            min_shed_seconds=5.0), clock=clock)
        controller.observe_burn(2.1)
        for _ in range(10):
            clock.advance(0.2)
            # Oscillating in the hysteresis band keeps the mode latched.
            assert controller.observe_burn(1.5) is True
        assert controller.stats()["shed_events"] == 1


# -- admission wired into the serving front ------------------------------------
class TestServiceAdmission:
    def _service(self, router, clock) -> RoutingService:
        controller = AdmissionController(
            AdmissionPolicy(min_shed_seconds=5.0, shed_admit_every=2),
            clock=clock)
        config = ServingConfig(enable_cache=False, enable_batching=False)
        return RoutingService(router, config=config, admission=controller)

    def test_steady_state_never_interferes(self, trained_router):
        clock = FakeClock()
        with self._service(trained_router, clock) as service:
            for _ in range(10):
                assert service.submit("How many singers are there?")
            stats = service.stats()
            assert stats["admission"]["rejected"] == 0
            assert stats["counters"].get("admission_rejected", 0) == 0
            assert service.health().status == "ok"

    def test_burst_sheds_then_recovers(self, trained_router):
        clock = FakeClock()
        with self._service(trained_router, clock) as service:
            service.admission.observe_burn(3.0)
            admitted = shed = 0
            for _ in range(8):
                try:
                    service.submit("How many singers are there?")
                    admitted += 1
                except AdmissionRejected:
                    shed += 1
            assert admitted == 4 and shed == 4  # every 2nd admitted
            stats = service.stats()
            assert stats["admission"]["shedding"] is True
            assert stats["admission"]["rejected"] == 4
            assert stats["counters"]["admission_rejected"] == 4
            # Shed requests are journaled as rejected traces, not dropped.
            assert any(record["status"] == "rejected"
                       for record in stats["traces"]["slowest"])
            health = service.health()
            assert health.status == "degraded"
            assert health.details["admission_shedding"] is True
            assert any("shedding" in reason for reason in health.reasons)
            # Recovery: burn subsides and the hysteresis window passes.
            clock.advance(6.0)
            service.admission.observe_burn(0.2)
            for _ in range(5):
                service.submit("How many singers are there?")
            assert service.health().status == "ok"
            assert service.stats()["admission"]["shedding"] is False

    def test_wave_is_admitted_atomically(self, trained_router):
        clock = FakeClock()
        controller = AdmissionController(
            AdmissionPolicy(max_qps=1.0, burst_requests=2.0), clock=clock)
        config = ServingConfig(enable_cache=False, enable_batching=False)
        with RoutingService(trained_router, config=config,
                            admission=controller) as service:
            questions = ["How many singers are there?",
                         "List the names of all cities.",
                         "How many concerts are there?"]
            with pytest.raises(AdmissionRejected):
                service.submit_many(questions)  # 3 > 2 tokens: whole wave shed
            assert service.submit_many(questions[:2])
            assert service.stats()["admission"]["admitted"] == 2

    def test_cache_hits_bypass_admission(self, trained_router):
        clock = FakeClock()
        controller = AdmissionController(
            AdmissionPolicy(max_qps=1.0, burst_requests=1.0), clock=clock)
        config = ServingConfig(enable_cache=True, enable_batching=False)
        with RoutingService(trained_router, config=config,
                            admission=controller) as service:
            service.submit("How many singers are there?")  # miss: takes the token
            for _ in range(20):  # hits: free regardless of the empty bucket
                service.submit("How many singers are there?")
            assert service.stats()["admission"]["admitted"] == 1


# -- the adaptive escalation gate ----------------------------------------------
class TestAdaptiveGate:
    def test_rate_above_target_lowers_threshold(self):
        gate = AdaptiveEscalationGate(AdaptiveEscalationConfig(min_requests=10),
                                      initial_threshold=0.8)
        threshold = gate.observe_cumulative(100, 50)
        assert threshold is not None and threshold < 0.8

    def test_rate_below_target_raises_threshold(self):
        gate = AdaptiveEscalationGate(AdaptiveEscalationConfig(min_requests=10),
                                      initial_threshold=0.8)
        threshold = gate.observe_cumulative(100, 0)
        assert threshold is not None and threshold > 0.8

    def test_threshold_never_leaves_frozen_bounds(self):
        config = AdaptiveEscalationConfig(min_requests=1, max_step=0.2)
        gate = AdaptiveEscalationGate(config, initial_threshold=0.8)
        for round_index in range(1, 50):
            gate.observe_cumulative(round_index * 10, round_index * 10)
        assert gate.threshold == pytest.approx(config.min_threshold)
        for round_index in range(50, 120):
            gate.observe_cumulative(round_index * 10, 500)
        assert gate.threshold == pytest.approx(config.max_threshold)

    def test_accumulates_until_min_requests(self):
        gate = AdaptiveEscalationGate(AdaptiveEscalationConfig(min_requests=16))
        assert gate.observe_cumulative(10, 5) is None
        assert gate.observe_cumulative(15, 7) is None
        assert gate.observe_cumulative(16, 8) is not None

    def test_counter_reset_reanchors(self):
        gate = AdaptiveEscalationGate(AdaptiveEscalationConfig(min_requests=10))
        gate.observe_cumulative(100, 10)
        assert gate.observe_cumulative(5, 0) is None  # restarted service
        threshold = gate.observe_cumulative(25, 20)
        assert threshold is not None  # 20 new requests since the re-anchor

    def test_initial_threshold_clamped(self):
        gate = AdaptiveEscalationGate(AdaptiveEscalationConfig(), 0.2)
        assert gate.threshold == pytest.approx(0.5)


class TestDispatcherThreshold:
    def _target(self, questions, max_candidates, trace=None):
        return [[] for _ in questions]

    def test_set_escalation_threshold(self):
        dispatcher = ClusterDispatcher([self._target],
                                       careful_targets=[self._target],
                                       escalation_threshold=0.8)
        dispatcher.set_escalation_threshold(0.5)
        assert dispatcher.escalation_threshold == 0.5
        with pytest.raises(ValueError):
            dispatcher.set_escalation_threshold(0.0)
        dispatcher.close()

    def test_rejected_without_careful_tier(self):
        dispatcher = ClusterDispatcher([self._target])
        with pytest.raises(ValueError):
            dispatcher.set_escalation_threshold(0.5)
        dispatcher.close()


# -- the windowed counter ------------------------------------------------------
class TestWindowedCounter:
    def test_expires_outside_the_window(self):
        clock = FakeClock()
        counter = WindowedCounter(window_seconds=60, clock=clock)
        counter.note(5)
        clock.advance(30)
        counter.note(2)
        assert counter.total() == 7
        clock.advance(31)  # the first bucket is now 61s old
        assert counter.total() == 2
        clock.advance(61)
        assert counter.total() == 0

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            WindowedCounter(window_seconds=0)


# -- the scenario driver -------------------------------------------------------
class TestScenarioDriver:
    QUESTIONS = [f"question {index}" for index in range(128)]

    def test_plan_and_schedule_are_deterministic(self):
        config = named_scenario("burst", num_requests=60, qps=100.0, seed=7)
        driver = ScenarioDriver(self.QUESTIONS, config)
        assert driver.plan() == driver.plan()
        assert driver.schedule() == driver.schedule()
        assert len(driver.plan()) == 60

    def test_phase_lengths_cover_the_budget(self):
        config = named_scenario("burst", num_requests=100, qps=50.0)
        assert sum(config.phase_lengths()) == 100
        assert [phase.name for phase in config.phases] == \
            ["warmup", "burst", "recover"]

    def test_schedule_spacing_follows_phase_qps(self):
        config = ScenarioConfig(phases=(ScenarioPhase("steady", 1.0, 2.0),),
                                num_requests=4)
        offsets = ScenarioDriver(self.QUESTIONS, config).schedule()
        assert offsets == [0.0, 0.5, 1.0, 1.5]

    def test_shift_hot_set_changes_the_head(self):
        config = named_scenario("shift_hot_set", num_requests=80, qps=1000.0)
        plan = ScenarioDriver(self.QUESTIONS, config).plan()
        first = {question for name, question in plan if name == "hot_a"}
        second = {question for name, question in plan if name == "hot_b"}
        assert first != second

    def test_shed_counts_apart_from_errors(self):
        config = named_scenario("steady", num_requests=12, qps=5000.0)
        driver = ScenarioDriver(self.QUESTIONS, config)
        calls = [0]

        def submit(question):
            calls[0] += 1
            if calls[0] % 3 == 0:
                raise AdmissionRejected("rate_limit", "shed")
            if calls[0] % 4 == 0:
                raise RuntimeError("boom")

        report = driver.run(submit)
        assert report.num_requests == 12
        assert report.shed == 4
        assert report.errors == 2
        assert report.admitted == 6
        assert report.shed_fraction == pytest.approx(4 / 12)
        payload = report.to_json()
        assert payload["phases"]["steady"]["shed"] == 4

    def test_progress_hook_fires(self):
        config = named_scenario("steady", num_requests=10, qps=5000.0)
        driver = ScenarioDriver(self.QUESTIONS, config)
        seen = []
        driver.run(lambda question: None,
                   on_progress=lambda done, total: seen.append((done, total)),
                   progress_every=5)
        assert seen == [(5, 10), (10, 10)]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            named_scenario("quiet-sunday")

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            ScenarioConfig(phases=(ScenarioPhase("a", 0.5, 10.0),
                                   ScenarioPhase("b", 0.4, 10.0)))


# -- the controller ------------------------------------------------------------
class _StubDispatcher:
    def __init__(self, threshold: float = 0.8) -> None:
        self.escalation_threshold = threshold
        self.calls: list[float] = []

    def set_escalation_threshold(self, threshold: float) -> None:
        self.escalation_threshold = threshold
        self.calls.append(threshold)


class _StubRebalancer:
    def __init__(self) -> None:
        self.moves: list[tuple[str, int]] = []

    def move_database(self, database: str, shard_id: int) -> None:
        self.moves.append((database, shard_id))


class _StubCluster:
    def __init__(self) -> None:
        self.dispatcher = _StubDispatcher()
        self.snapshot: dict = {}

    def stats(self) -> dict:
        return self.snapshot


def _snapshot(assignment, per_database, requests=1000, escalations=0,
              qps_window=50.0) -> dict:
    return {
        "counters": {"requests": requests},
        "dispatcher": {"escalations": escalations},
        "qps_window": qps_window,
        "assignment": [list(shard) for shard in assignment],
        "routing_load": {"window_seconds": 60,
                         "total": sum(per_database.values()),
                         "per_database": dict(per_database),
                         "per_shard": []},
        "stages": {},
    }


class TestController:
    def _controller(self, clock, **overrides):
        cluster = _StubCluster()
        rebalancer = _StubRebalancer()
        config = ControllerConfig(hysteresis_seconds=60.0,
                                  database_cooldown_seconds=300.0,
                                  **overrides)
        controller = Controller(cluster, rebalancer=rebalancer,
                                config=config, clock=clock)
        return controller, cluster, rebalancer

    def test_hot_shard_split_moves_coldest_database(self):
        clock = FakeClock()
        controller, _, rebalancer = self._controller(clock)
        snapshot = _snapshot([["a", "b"], ["c"]], {"a": 90, "b": 10})
        outcome = controller.tick(snapshot=snapshot)
        assert outcome["action"]["kind"] == "split"
        assert rebalancer.moves == [("b", 1)]

    def test_hysteresis_blocks_back_to_back_actions(self):
        clock = FakeClock()
        controller, _, rebalancer = self._controller(clock)
        snapshot = _snapshot([["a", "b"], ["c"]], {"a": 90, "b": 10})
        assert controller.tick(snapshot=snapshot)["action"] is not None
        clock.advance(30.0)
        assert controller.tick(snapshot=snapshot)["action"] is None
        clock.advance(31.0)
        assert controller.tick(snapshot=snapshot)["action"] is not None
        assert len(rebalancer.moves) == 2

    def test_database_cooldown_prevents_removing(self):
        clock = FakeClock()
        controller, _, rebalancer = self._controller(clock)
        snapshot = _snapshot([["a", "b"], ["c"]], {"a": 90, "b": 10})
        controller.tick(snapshot=snapshot)
        clock.advance(61.0)
        controller.tick(snapshot=snapshot)
        # "b" just moved; inside its cooldown the planner must pick another.
        assert [move[0] for move in rebalancer.moves] == ["b", "a"]

    def test_settled_assignment_takes_no_action(self):
        clock = FakeClock()
        controller, _, rebalancer = self._controller(clock)
        # After the split: shard 0 owns the hot db, shard 1 the cold ones.
        snapshot = _snapshot([["a"], ["b", "c"]], {"a": 90, "b": 10})
        assert controller.tick(snapshot=snapshot)["action"] is None
        assert rebalancer.moves == []

    def test_cold_shards_merge(self):
        clock = FakeClock()
        controller, _, rebalancer = self._controller(clock)
        snapshot = _snapshot([["a"], ["c"], ["d"], ["e"]],
                             {"a": 1, "c": 1, "d": 30, "e": 30})
        outcome = controller.tick(snapshot=snapshot)
        assert outcome["action"]["kind"] == "merge"
        assert rebalancer.moves == [("a", 1)]

    def test_idle_cluster_is_left_alone(self):
        clock = FakeClock()
        controller, _, rebalancer = self._controller(clock)
        snapshot = _snapshot([["a", "b"], ["c"]], {"a": 90, "b": 10},
                             qps_window=0.1)
        assert controller.tick(snapshot=snapshot)["action"] is None
        assert rebalancer.moves == []

    def test_single_database_shard_cannot_split(self):
        clock = FakeClock()
        controller, _, rebalancer = self._controller(clock)
        snapshot = _snapshot([["a"], ["c"]], {"a": 95, "c": 5})
        assert controller.tick(snapshot=snapshot)["action"] is None
        assert rebalancer.moves == []

    def test_escalation_threshold_is_adapted_and_applied(self):
        clock = FakeClock()
        controller, cluster, _ = self._controller(clock)
        snapshot = _snapshot([["a"], ["c"]], {}, requests=100, escalations=50,
                             qps_window=0.0)
        outcome = controller.tick(snapshot=snapshot)
        assert outcome["escalation_threshold"] < 0.8
        assert cluster.dispatcher.escalation_threshold == \
            outcome["escalation_threshold"]

    def test_burn_feeds_admission_for_page_severity_only(self):
        clock = FakeClock()
        admission = AdmissionController(AdmissionPolicy(), clock=clock)
        controller = Controller(_StubCluster(), admission=admission,
                                clock=clock)
        outcome = controller.tick(
            snapshot=_snapshot([], {}, qps_window=0.0),
            slo_status=[{"severity": "ticket", "fast_burn": 99.0},
                        {"severity": "page", "fast_burn": 3.0}])
        assert outcome["burn"] == pytest.approx(3.0)
        assert admission.shedding is True

    def test_tick_never_raises(self):
        clock = FakeClock()

        class ExplodingCluster:
            dispatcher = None

            def stats(self):
                raise RuntimeError("boom")

        controller = Controller(ExplodingCluster(), clock=clock)
        outcome = controller.tick()
        assert outcome["action"] is None
        assert controller.tick_errors == 1
        assert "boom" in controller.last_error

    def test_stats_shape(self):
        clock = FakeClock()
        controller, _, _ = self._controller(clock)
        snapshot = _snapshot([["a", "b"], ["c"]], {"a": 90, "b": 10})
        controller.tick(snapshot=snapshot)
        stats = controller.stats()
        assert stats["ticks"] == 1
        assert stats["splits"] == 1 and stats["merges"] == 0
        assert stats["actions"][0]["status"] == "ok"
        assert stats["escalation"]["bounds"] == [0.5, 0.95]
        import json
        json.dumps(stats)  # JSON-safe


# -- the monitor observer hook -------------------------------------------------
class _StubService:
    def stats(self) -> dict:
        return {"counters": {"requests": 100, "errors": 0},
                "latency": {"p95_ms": 1.0}, "stages": {}}

    def health(self, policy=None) -> HealthReport:
        return HealthReport(component="stub")


class TestMonitorObservers:
    def test_observer_sees_every_successful_tick(self):
        clock = FakeClock()
        monitor = Monitor(_StubService(), clock=clock, track_baselines=False)
        seen = []
        monitor.add_observer(seen.append)
        monitor.tick()
        monitor.tick()
        assert len(seen) == 2
        assert seen[0]["snapshot"]["counters"]["requests"] == 100
        assert "slo" in seen[0]
        assert monitor.summary()["observers"] == 1
        assert monitor.summary()["observer_errors"] == 0

    def test_observer_errors_are_counted_not_fatal(self):
        clock = FakeClock()
        monitor = Monitor(_StubService(), clock=clock, track_baselines=False)

        def explode(latest):
            raise RuntimeError("observer boom")

        monitor.add_observer(explode)
        assert monitor.tick() is not None
        assert monitor.tick_errors == 0
        assert monitor.observer_errors == 1
        assert "observer boom" in monitor.summary()["last_error"]

    def test_controller_rides_the_monitor(self):
        clock = FakeClock()
        service = _StubService()
        monitor = Monitor(service, clock=clock, track_baselines=False)
        controller = Controller(service, clock=clock).attach(monitor)
        monitor.tick()
        assert controller.ticks == 1


# -- routed-load windows on a live cluster -------------------------------------
class TestClusterRoutingLoad:
    def test_routing_load_and_window_qps_in_stats(self, trained_router):
        config = ClusterConfig(num_shards=2, enable_cache=False,
                               enable_tracing=False)
        with ClusterRoutingService.from_router(trained_router,
                                               config) as cluster:
            cluster.submit("How many singers are there?")
            cluster.submit_many(["List the names of all cities.",
                                 "How many concerts are there?"])
            stats = cluster.stats()
            load = stats["routing_load"]
            assert load["total"] == 3
            assert sum(load["per_database"].values()) == 3
            assert len(load["per_shard"]) == 2
            assert sum(load["per_shard"]) == 3
            for entry in stats["shards"]:
                assert "qps_window" in entry
            policy = HealthPolicy()
            assert cluster.health(policy).status in ("ok", "degraded")
