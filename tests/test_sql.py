"""Tests for the SQL layer: parser, printer, executor, metadata."""

from __future__ import annotations

import pytest

from repro.sql import (
    SqlExecutionError,
    SqlExecutor,
    SqlParseError,
    extract_metadata,
    parse_sql,
    to_sql,
)
from repro.sql.ast import BinaryOp, Literal, iter_subqueries


class TestParser:
    def test_simple_select(self):
        statement = parse_sql("SELECT name FROM singer WHERE age > 30")
        assert statement.from_table.table == "singer"
        assert isinstance(statement.where, BinaryOp)

    def test_join_with_aliases(self):
        sql = ("SELECT s.name FROM singer_in_concert AS sic "
               "JOIN singer AS s ON sic.singer_id = s.singer_id")
        statement = parse_sql(sql)
        assert len(statement.joins) == 1
        assert statement.joins[0].table.alias == "s"

    def test_database_qualified_table(self):
        statement = parse_sql("SELECT a FROM world.city")
        assert statement.from_table.database == "world"

    def test_group_order_limit(self):
        statement = parse_sql(
            "SELECT venue, COUNT(*) FROM concert GROUP BY venue ORDER BY COUNT(*) DESC LIMIT 3")
        assert statement.group_by and statement.order_by and statement.limit == 3
        assert statement.order_by[0].descending

    def test_in_subquery_and_not_in(self):
        statement = parse_sql(
            "SELECT name FROM singer WHERE singer_id NOT IN (SELECT singer_id FROM singer_in_concert)")
        subqueries = iter_subqueries(statement)
        assert len(subqueries) == 1

    def test_scalar_subquery(self):
        statement = parse_sql("SELECT name FROM singer WHERE age = (SELECT MAX(age) FROM singer)")
        assert iter_subqueries(statement)

    def test_string_escaping(self):
        statement = parse_sql("SELECT name FROM singer WHERE name = 'O''Brien'")
        literal = statement.where.right
        assert isinstance(literal, Literal) and literal.value == "O'Brien"

    def test_distinct_and_boolean_literals(self):
        statement = parse_sql("SELECT DISTINCT name FROM singer WHERE active = TRUE")
        assert statement.distinct

    @pytest.mark.parametrize("bad", [
        "", "SELECT", "SELECT FROM x", "SELECT a FROM", "DELETE FROM x",
        "SELECT a FROM t WHERE", "SELECT a FROM t GROUP", "SELECT a FROM order",
    ])
    def test_parse_errors(self, bad):
        with pytest.raises(SqlParseError):
            parse_sql(bad)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlParseError):
            parse_sql("SELECT a FROM t nonsense nonsense")

    @pytest.mark.parametrize("sql", [
        "SELECT s.name FROM singer AS s WHERE s.age >= 30 AND s.country = 'France'",
        "SELECT COUNT(DISTINCT name) FROM singer",
        "SELECT venue FROM concert WHERE year < 2020 OR venue LIKE 'Grand%'",
        "SELECT AVG(age) FROM singer GROUP BY country HAVING COUNT(*) > 1",
        "SELECT name FROM singer WHERE singer_id IN (SELECT singer_id FROM singer_in_concert WHERE concert_id = 1) ORDER BY name ASC LIMIT 5",
    ])
    def test_roundtrip(self, sql):
        statement = parse_sql(sql)
        assert parse_sql(to_sql(statement)) == statement


class TestExecutor:
    @pytest.fixture
    def executor(self, concert_instance):
        return SqlExecutor(concert_instance)

    def test_filter(self, executor):
        result = executor.execute_sql("SELECT name FROM singer WHERE country = 'France'")
        assert sorted(row[0] for row in result.rows) == ["Alice", "Carol"]

    def test_join_through_junction(self, executor):
        sql = ("SELECT s.name FROM singer_in_concert AS sic "
               "JOIN singer AS s ON sic.singer_id = s.singer_id "
               "JOIN concert AS c ON sic.concert_id = c.concert_id WHERE c.year = 2022")
        result = executor.execute_sql(sql)
        assert sorted(row[0] for row in result.rows) == ["Alice", "Bob"]

    def test_aggregates(self, executor):
        assert executor.execute_sql("SELECT COUNT(*) FROM singer").rows == [(3,)]
        assert executor.execute_sql("SELECT MAX(age) FROM singer").rows == [(40,)]
        avg = executor.execute_sql("SELECT AVG(age) FROM singer").rows[0][0]
        assert avg == pytest.approx(95 / 3)

    def test_group_by_having_order(self, executor):
        sql = ("SELECT country, COUNT(*) AS n FROM singer GROUP BY country "
               "HAVING COUNT(*) > 1 ORDER BY COUNT(*) DESC")
        result = executor.execute_sql(sql)
        assert result.rows == [("France", 2)]

    def test_grouped_join_count(self, executor):
        sql = ("SELECT c.venue FROM singer_in_concert AS sic "
               "JOIN concert AS c ON sic.concert_id = c.concert_id "
               "GROUP BY c.venue ORDER BY COUNT(*) DESC LIMIT 1")
        assert executor.execute_sql(sql).rows == [("Grand Arena",)]

    def test_in_subquery(self, executor):
        sql = ("SELECT name FROM singer WHERE singer_id IN "
               "(SELECT singer_id FROM singer_in_concert WHERE concert_id = 2)")
        assert executor.execute_sql(sql).rows == [("Carol",)]

    def test_scalar_subquery(self, executor):
        sql = "SELECT name FROM singer WHERE age = (SELECT MIN(age) FROM singer)"
        assert executor.execute_sql(sql).rows == [("Carol",)]

    def test_distinct_and_limit(self, executor):
        result = executor.execute_sql("SELECT DISTINCT country FROM singer LIMIT 1")
        assert len(result.rows) == 1

    def test_like(self, executor):
        result = executor.execute_sql("SELECT venue FROM concert WHERE venue LIKE 'Grand%'")
        assert result.rows == [("Grand Arena",)]

    def test_order_by_expression_not_projected(self, executor):
        result = executor.execute_sql("SELECT name FROM singer ORDER BY age DESC")
        assert [row[0] for row in result.rows] == ["Bob", "Alice", "Carol"]

    def test_unknown_table_raises(self, executor):
        with pytest.raises(SqlExecutionError):
            executor.execute_sql("SELECT x FROM nonexistent")

    def test_unknown_column_raises(self, executor):
        with pytest.raises(SqlExecutionError):
            executor.execute_sql("SELECT missing_column FROM singer")

    def test_wrong_database_qualifier(self, executor):
        with pytest.raises(SqlExecutionError):
            executor.execute_sql("SELECT name FROM other_db.singer")

    def test_aggregate_outside_group_context(self, executor):
        # Aggregates in plain WHERE clauses are invalid in this dialect.
        with pytest.raises(SqlExecutionError):
            executor.execute_sql("SELECT name FROM singer WHERE MAX(age) > 10")


class TestMetadata:
    def test_tables_and_columns(self):
        metadata = extract_metadata(
            "SELECT s.name FROM singer AS s JOIN concert AS c ON s.singer_id = c.concert_id "
            "WHERE c.year = 2020")
        assert metadata.table_names == ["concert", "singer"]
        assert "name" in metadata.columns_of("singer")
        assert "year" in metadata.columns_of("concert")

    def test_subquery_tables_included(self):
        metadata = extract_metadata(
            "SELECT name FROM singer WHERE singer_id IN (SELECT singer_id FROM singer_in_concert)")
        assert "singer_in_concert" in metadata.table_names

    def test_aliases_resolved(self):
        metadata = extract_metadata("SELECT a.name FROM singer AS a")
        assert metadata.aliases["a"] == "singer"

    def test_accepts_parsed_statement(self):
        statement = parse_sql("SELECT name FROM singer")
        assert extract_metadata(statement).table_names == ["singer"]
