"""Tests for the serving subsystem: checkpoints, cache, batcher, service, loadgen."""

from __future__ import annotations

import json
import threading

import pytest

from repro.core import (
    RouterConfig,
    SchemaGraph,
    SchemaRouter,
    SchemaSampler,
    SynthesisConfig,
    TemplateQuestioner,
    synthesize_training_data,
)
from repro.nn.tokenizer import Vocabulary
from repro.schema import Catalog, Column, ColumnType, Database, ForeignKey, Table
from repro.serving import (
    CheckpointError,
    LoadGenerator,
    MicroBatcher,
    BatcherConfig,
    RouteCache,
    RoutingService,
    ServingConfig,
    WorkloadConfig,
    load_manifest,
    load_router,
    normalize_question,
    save_router,
)
from repro.serving.checkpoint import catalog_from_payload, catalog_to_payload
from repro.serving.metrics import LatencyRecorder, MetricsRegistry


def _serving_catalog() -> Catalog:
    """A private copy of the conftest ``small_catalog`` (module-scope training)."""
    concert = Database(name="concert_singer", tables=[
        Table("singer", [
            Column("singer_id", ColumnType.INTEGER, is_primary_key=True),
            Column("name"), Column("country"), Column("age", ColumnType.INTEGER),
        ]),
        Table("concert", [
            Column("concert_id", ColumnType.INTEGER, is_primary_key=True),
            Column("venue"), Column("year", ColumnType.INTEGER),
        ]),
        Table("singer_in_concert", [
            Column("singer_id", ColumnType.INTEGER),
            Column("concert_id", ColumnType.INTEGER),
        ]),
    ], foreign_keys=[
        ForeignKey("singer_in_concert", "singer_id", "singer", "singer_id"),
        ForeignKey("singer_in_concert", "concert_id", "concert", "concert_id"),
    ])
    world = Database(name="world", tables=[
        Table("country", [
            Column("country_id", ColumnType.INTEGER, is_primary_key=True),
            Column("name"), Column("continent"), Column("population", ColumnType.INTEGER),
        ]),
        Table("city", [
            Column("city_id", ColumnType.INTEGER, is_primary_key=True),
            Column("name"), Column("population", ColumnType.INTEGER),
            Column("country_id", ColumnType.INTEGER),
        ]),
    ], foreign_keys=[ForeignKey("city", "country_id", "country", "country_id")])
    return Catalog(name="serving_small", databases=[concert, world])


QUESTIONS = [
    "how many cities are there in each country",
    "which singers performed in a concert",
    "list the venues of all concerts",
    "what is the average population per continent",
    "show the name and age of every singer",
]


@pytest.fixture(scope="module")
def trained_router() -> SchemaRouter:
    catalog = _serving_catalog()
    graph = SchemaGraph.from_catalog(catalog)
    questioner = TemplateQuestioner(catalog=catalog, seed=11)
    sampler = SchemaSampler(graph, seed=11)
    report = synthesize_training_data(sampler, questioner, SynthesisConfig(num_samples=250))
    router = SchemaRouter(graph=graph, config=RouterConfig(
        epochs=10, embedding_dim=24, hidden_dim=40, num_beams=4, beam_groups=2, seed=11))
    router.fit(report.examples)
    return router


def _route_signature(routes) -> list[tuple[str, tuple[str, ...], float]]:
    return [(route.database, route.tables, route.score) for route in routes]


# -- checkpoint ----------------------------------------------------------------
class TestCheckpoint:
    def test_round_trip_identical_routes(self, trained_router, tmp_path):
        path = save_router(trained_router, tmp_path / "ckpt")
        reloaded = SchemaRouter.from_checkpoint(path)
        assert reloaded.is_trained
        assert reloaded.config == trained_router.config
        assert reloaded.num_parameters() == trained_router.num_parameters()
        for question in QUESTIONS:
            assert _route_signature(reloaded.route(question)) == \
                _route_signature(trained_router.route(question))

    def test_manifest_contents(self, trained_router, tmp_path):
        path = save_router(trained_router, tmp_path / "ckpt")
        manifest = load_manifest(path)
        assert manifest["format"] == "repro-router-checkpoint"
        assert manifest["version"] == 1
        assert manifest["weights"]["num_parameters"] == trained_router.num_parameters()
        # The manifest is plain JSON (round-trips through dumps/loads).
        assert json.loads(json.dumps(manifest)) == manifest

    def test_graph_reconstruction_preserves_edges(self, trained_router, tmp_path):
        path = save_router(trained_router, tmp_path / "ckpt")
        reloaded = load_router(path)
        original, rebuilt = trained_router.graph, reloaded.graph
        assert rebuilt.num_nodes() == original.num_nodes()
        assert rebuilt.num_edges() == original.num_edges()
        assert sorted(rebuilt.databases()) == sorted(original.databases())
        for database in original.databases():
            for table in original.tables_of(database):
                assert sorted(rebuilt.table_neighbors(database, table)) == \
                    sorted(original.table_neighbors(database, table))

    def test_catalog_payload_round_trip(self, trained_router):
        payload = catalog_to_payload(trained_router.graph.catalog)
        rebuilt = catalog_from_payload(json.loads(json.dumps(payload)))
        original = trained_router.graph.catalog
        assert rebuilt.database_names == original.database_names
        for database in original:
            twin = rebuilt.database(database.name)
            assert twin.table_names == database.table_names
            assert twin.foreign_keys == database.foreign_keys
            for table in database.tables:
                assert twin.table(table.name).column_names == table.column_names

    def test_corrupt_weights_rejected(self, trained_router, tmp_path):
        path = save_router(trained_router, tmp_path / "ckpt")
        weights = path / "weights.npz"
        original = weights.read_bytes()
        weights.write_bytes(bytes([original[0] ^ 0xFF]) + original[1:])
        with pytest.raises(CheckpointError, match="checksum"):
            load_router(path)

    def test_missing_and_invalid_checkpoints(self, tmp_path):
        with pytest.raises(CheckpointError, match="manifest"):
            load_router(tmp_path / "nowhere")
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "manifest.json").write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(CheckpointError, match="not a router checkpoint"):
            load_router(bad)

    def test_untrained_router_rejected(self, trained_router, tmp_path):
        untrained = SchemaRouter(graph=trained_router.graph)
        with pytest.raises(CheckpointError, match="untrained"):
            save_router(untrained, tmp_path / "ckpt")

    def test_save_state_npz_normalizes_suffix(self, trained_router, tmp_path):
        written = trained_router.model.save_state_npz(tmp_path / "weights")
        assert written == tmp_path / "weights.npz"
        assert written.is_file()

    def test_vocabulary_payload_round_trip(self):
        vocabulary = Vocabulary()
        vocabulary.add_text("how many cities are there")
        vocabulary.add("singer_in_concert")
        rebuilt = Vocabulary.from_payload(vocabulary.to_payload())
        assert rebuilt.tokens() == vocabulary.tokens()
        for token in vocabulary.tokens():
            assert rebuilt.id_of(token) == vocabulary.id_of(token)


# -- batched inference ---------------------------------------------------------
class TestRouteBatch:
    def test_matches_single_question_route(self, trained_router):
        batched = trained_router.route_batch(QUESTIONS)
        for question, routes in zip(QUESTIONS, batched):
            single = trained_router.route(question)
            assert [(r.database, r.tables) for r in routes] == \
                [(r.database, r.tables) for r in single]
            for left, right in zip(routes, single):
                assert left.score == pytest.approx(right.score, abs=1e-9)

    def test_empty_batch(self, trained_router):
        assert trained_router.route_batch([]) == []

    def test_untrained_raises(self, trained_router):
        router = SchemaRouter(graph=trained_router.graph)
        with pytest.raises(RuntimeError):
            router.route_batch(["anything"])


# -- cache ---------------------------------------------------------------------
class TestRouteCache:
    def test_lru_eviction_order(self):
        cache = RouteCache(max_size=2)
        cache.put("first question", 1)
        cache.put("second question", 2)
        assert cache.get("first question") == 1     # refresh "first"
        cache.put("third question", 3)              # evicts "second"
        assert cache.get("second question") is None
        assert cache.get("first question") == 1
        assert cache.get("third question") == 3
        assert cache.evictions == 1

    def test_key_normalization(self):
        cache = RouteCache(max_size=4)
        cache.put("How many Cities?", "routes")
        assert cache.get("how   many cities") == "routes"
        assert normalize_question("How many Cities?") == "how many cities"

    def test_ttl_expiration(self):
        now = [0.0]
        cache = RouteCache(max_size=4, ttl_seconds=10.0, clock=lambda: now[0])
        cache.put("question", "routes")
        now[0] = 9.9
        assert cache.get("question") == "routes"
        now[0] = 10.1
        assert cache.get("question") is None
        assert cache.expirations == 1

    def test_catalog_version_invalidation(self):
        cache = RouteCache(max_size=4)
        cache.put("question", "routes")
        assert cache.get("question") == "routes"
        cache.bump_version()
        assert cache.get("question") is None
        assert cache.invalidations == 1
        cache.put("question", "routes-v2")        # re-cached under new version
        assert cache.get("question") == "routes-v2"

    def test_stats_and_hit_rate(self):
        cache = RouteCache(max_size=4)
        cache.put("a b", 1)
        cache.get("a b")
        cache.get("missing")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert len(cache) == 1 and cache.keys() == ["a b"]

    def test_get_many_matches_per_question_gets(self):
        """The batched probe returns the same values, with the same hit/miss
        and TTL accounting, as one ``get`` per question."""
        now = [0.0]
        cache = RouteCache(max_size=8, ttl_seconds=10.0, clock=lambda: now[0])
        cache.put("alpha question", "a")
        cache.put("beta question", "b")
        cache.put("stale question", "old")
        now[0] = 10.5  # "stale question" is past its TTL; re-insert the rest
        cache.put("alpha question", "a")
        cache.put("beta question", "b")
        values = cache.get_many(["alpha question", "missing question",
                                 "stale question", "beta question",
                                 "ALPHA   Question"])
        assert values == ["a", None, None, "b", "a"]
        assert cache.hits == 3 and cache.misses == 2
        assert cache.expirations == 1
        # LRU order was refreshed by the batched probe, like get() would
        assert cache.keys()[-1] == normalize_question("ALPHA Question")

    def test_get_many_respects_the_variant_qualifier(self):
        cache = RouteCache(max_size=4)
        cache.put("question", "top1", variant=1)
        assert cache.get_many(["question"], variant=1) == ["top1"]
        assert cache.get_many(["question"], variant=5) == [None]


# -- micro-batcher -------------------------------------------------------------
class TestMicroBatcher:
    def test_coalesces_concurrent_requests(self):
        calls: list[list[str]] = []

        def route_batch(questions, max_candidates):
            calls.append(list(questions))
            return [f"routed:{question}" for question in questions]

        barrier = threading.Barrier(4)
        with MicroBatcher(route_batch, BatcherConfig(max_batch_size=4,
                                                     max_wait_seconds=0.2)) as batcher:
            futures: dict[str, object] = {}
            lock = threading.Lock()

            def client(question: str) -> None:
                barrier.wait()
                future = batcher.submit(question)
                with lock:
                    futures[question] = future.result()

            threads = [threading.Thread(target=client, args=(f"q{index}",))
                       for index in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert futures == {f"q{index}": f"routed:q{index}" for index in range(4)}
        assert batcher.requests_dispatched == 4
        assert max(len(call) for call in calls) > 1  # coalescing happened
        assert sum(batcher.batch_sizes.values()) == batcher.batches_dispatched

    def test_respects_max_batch_size(self):
        def route_batch(questions, max_candidates):
            assert len(questions) <= 2
            return list(questions)

        with MicroBatcher(route_batch, BatcherConfig(max_batch_size=2,
                                                     max_wait_seconds=0.01)) as batcher:
            futures = [batcher.submit(f"q{index}") for index in range(7)]
            assert [future.result() for future in futures] == [f"q{index}"
                                                               for index in range(7)]

    def test_error_propagates_to_futures(self):
        def route_batch(questions, max_candidates):
            raise ValueError("decode exploded")

        with MicroBatcher(route_batch) as batcher:
            future = batcher.submit("question")
            with pytest.raises(ValueError, match="decode exploded"):
                future.result(timeout=5)

    def test_submit_after_close_rejected(self):
        batcher = MicroBatcher(lambda questions, mc: list(questions))
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit("question")


# -- metrics -------------------------------------------------------------------
class TestMetrics:
    def test_latency_percentiles(self):
        recorder = LatencyRecorder()
        for value in range(1, 101):
            recorder.record(value / 1000.0)
        assert recorder.percentile(50) == pytest.approx(0.050)
        assert recorder.percentile(95) == pytest.approx(0.095)
        assert recorder.percentile(99) == pytest.approx(0.099)
        summary = recorder.summary()
        assert summary["count"] == 100
        assert summary["p95_ms"] == pytest.approx(95.0)

    def test_empty_window_yields_zeros(self):
        recorder = LatencyRecorder()
        assert recorder.percentile(50) == 0.0
        assert recorder.percentile(99) == 0.0
        summary = recorder.summary()
        buckets = summary.pop("buckets")
        assert all(count == 0 for count in buckets.values())
        assert buckets["+Inf"] == 0
        assert summary == {"count": 0, "total_seconds": 0.0, "mean_ms": 0.0,
                           "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0,
                           "max_ms": 0.0}
        empty_registry_snapshot = MetricsRegistry().snapshot()
        assert empty_registry_snapshot["qps"] == 0.0
        assert empty_registry_snapshot["mean_batch_size"] == 0.0

    def test_registry_snapshot(self):
        registry = MetricsRegistry()
        registry.increment("requests", 10)
        registry.observe_batch(4)
        registry.observe_batch(4)
        registry.observe_batch(2)
        registry.observe_latency(0.002)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["requests"] == 10
        # String keys: the snapshot crosses the cluster wire protocol as JSON
        # and must be identical before and after the round-trip.
        assert snapshot["batch_size_histogram"] == {"2": 1, "4": 2}
        assert snapshot["mean_batch_size"] == pytest.approx(10 / 3, rel=1e-2)
        assert snapshot["qps"] > 0


# -- the service façade --------------------------------------------------------
class TestRoutingService:
    def test_submit_matches_router(self, trained_router):
        with RoutingService(trained_router) as service:
            for question in QUESTIONS:
                assert _route_signature(service.submit(question)) == \
                    _route_signature(trained_router.route(question))

    def test_checkpoint_boot_matches_in_memory(self, trained_router, tmp_path):
        path = save_router(trained_router, tmp_path / "ckpt")
        with RoutingService.from_checkpoint(path) as service:
            for question in QUESTIONS:
                assert _route_signature(service.submit(question)) == \
                    _route_signature(trained_router.route(question))

    def test_repeated_question_hits_cache(self, trained_router):
        with RoutingService(trained_router) as service:
            first = service.submit(QUESTIONS[0])
            second = service.submit(QUESTIONS[0])
            assert _route_signature(first) == _route_signature(second)
            stats = service.stats()
            assert stats["counters"]["cache_hits"] == 1
            assert stats["counters"]["routed"] == 1
            assert stats["cache_hit_rate"] == pytest.approx(0.5)

    def test_submit_many_and_duplicates(self, trained_router):
        with RoutingService(trained_router) as service:
            questions = [QUESTIONS[0], QUESTIONS[1], QUESTIONS[0], QUESTIONS[2]]
            results = service.submit_many(questions)
            assert len(results) == 4
            assert _route_signature(results[0]) == _route_signature(results[2])
            # Only three distinct questions were actually decoded.
            assert service.stats()["counters"]["routed"] == 3

    def test_cache_does_not_alias_max_candidates(self, trained_router):
        # An ambiguous question ("name" exists in both databases) so the
        # router emits multiple candidates and truncation is observable.
        question = "what are the names"
        full = trained_router.route(question)
        assert len(full) >= 2
        with RoutingService(trained_router) as service:
            assert len(service.submit(question, max_candidates=1)) == 1
            # The truncated answer must not be served for the default request.
            assert len(service.submit(question)) == len(full)
            assert len(service.submit(question, max_candidates=1)) == 1

    def test_catalog_change_invalidates_cache(self, trained_router):
        with RoutingService(trained_router) as service:
            service.submit(QUESTIONS[0])
            service.notify_catalog_changed()
            service.submit(QUESTIONS[0])
            stats = service.stats()
            assert stats["counters"].get("cache_hits", 0) == 0
            assert stats["cache"]["invalidations"] == 1

    def test_unbatched_uncached_mode(self, trained_router):
        config = ServingConfig(enable_cache=False, enable_batching=False)
        with RoutingService(trained_router, config) as service:
            routes = service.submit(QUESTIONS[0])
            assert _route_signature(routes) == _route_signature(trained_router.route(QUESTIONS[0]))
            stats = service.stats()
            assert stats["cache"] is None and stats["batcher"] is None

    def test_untrained_router_rejected(self, trained_router):
        with pytest.raises(ValueError, match="trained"):
            RoutingService(SchemaRouter(graph=trained_router.graph))

    def test_replace_router_swaps_and_invalidates(self, trained_router):
        with RoutingService(trained_router) as service:
            service.submit(QUESTIONS[0])
            replacement = SchemaRouter(graph=trained_router.graph,
                                       config=trained_router.config)
            replacement.restore(trained_router.model,
                                trained_router.source_vocabulary,
                                trained_router.target_vocabulary)
            service.replace_router(replacement)
            assert service.router is replacement
            assert service.cache.catalog_version == 1
            with pytest.raises(ValueError, match="trained"):
                service.replace_router(SchemaRouter(graph=trained_router.graph))

    def test_concurrent_submits_coalesce(self, trained_router):
        config = ServingConfig(enable_cache=False, max_batch_size=8,
                               max_wait_seconds=0.05)
        with RoutingService(trained_router, config) as service:
            barrier = threading.Barrier(6)
            results: dict[int, object] = {}
            lock = threading.Lock()

            def client(index: int) -> None:
                barrier.wait()
                routes = service.submit(QUESTIONS[index % len(QUESTIONS)])
                with lock:
                    results[index] = routes

            threads = [threading.Thread(target=client, args=(index,)) for index in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for index, routes in results.items():
                expected = trained_router.route(QUESTIONS[index % len(QUESTIONS)])
                assert _route_signature(routes) == _route_signature(expected)
            histogram = service.stats()["batch_size_histogram"]
            # at least one multi-request batch formed
            assert max(int(size) for size in histogram) > 1


# -- load generation -----------------------------------------------------------
class TestLoadGenerator:
    def test_workload_is_deterministic(self):
        config = WorkloadConfig(num_requests=50, unique_fraction=0.2, seed=9)
        first = LoadGenerator(QUESTIONS, config).workload()
        second = LoadGenerator(QUESTIONS, config).workload()
        assert first == second
        assert len(first) == 50
        assert set(first) <= set(QUESTIONS)

    def test_unique_fraction_bounds_pool(self):
        config = WorkloadConfig(num_requests=100, unique_fraction=0.02, seed=1)
        workload = LoadGenerator(QUESTIONS, config).workload()
        assert len(set(workload)) <= 2

    def test_run_closed_loop_against_service(self, trained_router):
        with RoutingService(trained_router) as service:
            generator = LoadGenerator(QUESTIONS, WorkloadConfig(
                num_requests=20, unique_fraction=0.2, seed=4, concurrency=2))
            report = generator.run(service.submit)
        assert report.num_requests == 20
        assert report.errors == 0
        assert report.throughput_rps > 0
        assert report.latency["count"] == 20
        assert json.loads(json.dumps(report.to_json())) == report.to_json()

    def test_zipf_distribution_spans_the_whole_pool(self):
        config = WorkloadConfig(num_requests=400, distribution="zipf", skew=1.0,
                                seed=3)
        workload = LoadGenerator(QUESTIONS, config).workload()
        counts = {question: workload.count(question) for question in QUESTIONS}
        # Rank-weighted: the head question dominates, but the tail (which the
        # "head" distribution would truncate away entirely) still appears.
        assert counts[QUESTIONS[0]] == max(counts.values())
        assert all(count > 0 for count in counts.values())
        assert LoadGenerator(QUESTIONS, config).workload() == workload

    def test_run_batched_drives_submit_many_targets(self):
        waves: list[list[str]] = []

        def submit_many(questions):
            waves.append(list(questions))
            return [[] for _ in questions]

        generator = LoadGenerator(QUESTIONS, WorkloadConfig(
            num_requests=20, unique_fraction=0.25, seed=6))
        report = generator.run_batched(submit_many, batch_size=8)
        assert [len(wave) for wave in waves] == [8, 8, 4]
        assert report.num_requests == 20
        assert report.errors == 0
        assert report.latency["count"] == 20

    def test_burst_schedule_is_a_deterministic_qps_envelope(self):
        config = WorkloadConfig(num_requests=20, mode="burst", target_qps=100.0,
                                burst_qps=1000.0, burst_start_fraction=0.5,
                                burst_fraction=0.25, seed=2)
        generator = LoadGenerator(QUESTIONS, config)
        offsets = generator.schedule()
        assert offsets == LoadGenerator(QUESTIONS, config).schedule()
        assert offsets[0] == 0.0
        assert offsets == sorted(offsets)
        # Spike window: requests 10..14 released at burst spacing (1ms), the
        # steady phases at 10ms.
        gaps = [second - first for first, second in zip(offsets, offsets[1:])]
        assert gaps[4] == pytest.approx(0.010)
        assert gaps[10] == pytest.approx(0.001)
        assert [generator.phase_of(index) for index in range(20)].count("burst") == 5

    def test_burst_run_reports_per_phase_latency(self):
        config = WorkloadConfig(num_requests=30, mode="burst", target_qps=500.0,
                                burst_qps=5000.0, burst_start_fraction=0.4,
                                burst_fraction=0.2, seed=7)
        report = LoadGenerator(QUESTIONS, config).run(lambda question: [])
        assert report.num_requests == 30
        assert set(report.phases) == {"burst", "steady"}
        burst_count = report.phases["burst"]["count"]
        assert burst_count == 6
        assert report.phases["steady"]["count"] == 24
        assert "phases" in report.to_json()
        # Paced mode keeps the flat report shape.
        paced = LoadGenerator(QUESTIONS, WorkloadConfig(
            num_requests=5, mode="paced", target_qps=1000.0, seed=7)).run(
                lambda question: [])
        assert paced.phases == {}
        assert "phases" not in paced.to_json()

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_requests=0)
        with pytest.raises(ValueError):
            WorkloadConfig(mode="paced", target_qps=0.0)
        with pytest.raises(ValueError):
            WorkloadConfig(distribution="bursty")
        with pytest.raises(ValueError):
            WorkloadConfig(skew=-0.5)
        with pytest.raises(ValueError):
            LoadGenerator([], WorkloadConfig())
        with pytest.raises(ValueError):
            LoadGenerator(QUESTIONS).run_batched(lambda wave: wave, batch_size=0)

    def test_invalid_burst_configs_rejected(self):
        with pytest.raises(ValueError):  # burst needs a positive steady rate
            WorkloadConfig(mode="burst", burst_qps=100.0)
        with pytest.raises(ValueError):  # the spike must exceed the steady rate
            WorkloadConfig(mode="burst", target_qps=100.0, burst_qps=50.0)
        with pytest.raises(ValueError):
            WorkloadConfig(mode="burst", target_qps=10.0, burst_qps=100.0,
                           burst_start_fraction=1.0)
        with pytest.raises(ValueError):  # spike must fit inside the stream
            WorkloadConfig(mode="burst", target_qps=10.0, burst_qps=100.0,
                           burst_start_fraction=0.8, burst_fraction=0.5)
