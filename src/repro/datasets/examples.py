"""Example and dataset containers.

An :class:`Example` is one instance ``(N, S, Q)`` after dataset adaptation
(paper §4.1.2): a natural-language question, its SQL query schema
``S = <database, tables>``, and the gold SQL query.  A
:class:`BenchmarkDataset` bundles the catalog (massive database collection),
the stored rows, and the train/test example splits.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.engine.instance import CatalogInstance
from repro.schema.catalog import Catalog


@dataclass(frozen=True)
class Example:
    """One schema-agnostic NL2SQL instance."""

    question: str
    database: str
    tables: tuple[str, ...]
    sql: str
    columns: tuple[str, ...] = ()
    difficulty: str = "medium"
    template: str = ""

    @property
    def schema(self) -> tuple[str, tuple[str, ...]]:
        """The SQL query schema ``S = <D, T>``."""
        return (self.database, self.tables)

    def with_question(self, question: str) -> "Example":
        """A copy of the example with a rewritten question (robustness variants)."""
        return replace(self, question=question)


@dataclass
class BenchmarkDataset:
    """A full benchmark: catalog, data, and example splits."""

    name: str
    catalog: Catalog
    instances: CatalogInstance
    train_examples: list[Example] = field(default_factory=list)
    test_examples: list[Example] = field(default_factory=list)

    @property
    def num_databases(self) -> int:
        return len(self.catalog)

    @property
    def num_tables(self) -> int:
        return self.catalog.num_tables

    @property
    def num_columns(self) -> int:
        return self.catalog.num_columns

    def examples(self, split: str) -> list[Example]:
        if split == "train":
            return self.train_examples
        if split == "test":
            return self.test_examples
        raise ValueError(f"unknown split {split!r}; expected 'train' or 'test'")

    def with_test_examples(self, examples: Iterable[Example], suffix: str) -> "BenchmarkDataset":
        """A shallow variant sharing the catalog but with different test questions.

        Used to build the Spider-syn / Spider-real analogues, which share the
        database collection of the base dataset (paper Table 2).
        """
        return BenchmarkDataset(
            name=f"{self.name}_{suffix}",
            catalog=self.catalog,
            instances=self.instances,
            train_examples=list(self.train_examples),
            test_examples=list(examples),
        )
