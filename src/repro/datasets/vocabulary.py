"""Domain vocabulary used by the synthetic database and workload generators.

A *domain* describes one kind of database (concerts, flights, universities,
hospitals, ...) in terms of entities, their attributes, and the relationships
between them.  The database generator instantiates domains into concrete
schemas with rows, and the workload generator phrases natural-language
questions over them.

The synonym lexicon captures the "semantic mismatch" axis of the paper (C3):
questions posed by non-experts paraphrase schema terminology.  The schema
questioner and the Spider-syn analogue both draw from this lexicon.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.schema.column import ColumnType


@dataclass(frozen=True)
class AttributeSpec:
    """One attribute of an entity."""

    name: str
    column_type: ColumnType = ColumnType.TEXT
    value_pool: str = "word"
    synonyms: tuple[str, ...] = ()


@dataclass(frozen=True)
class EntitySpec:
    """One entity that becomes a table."""

    name: str
    attributes: tuple[AttributeSpec, ...]
    synonyms: tuple[str, ...] = ()


@dataclass(frozen=True)
class RelationSpec:
    """A relationship between two entities of a domain.

    ``one_to_many``: the child table gets a foreign key to the parent.
    ``many_to_many``: a junction table referencing both entities is created.
    """

    parent: str
    child: str
    kind: str = "one_to_many"
    junction_name: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("one_to_many", "many_to_many"):
            raise ValueError(f"unknown relation kind {self.kind!r}")


@dataclass(frozen=True)
class DomainSpec:
    """A complete domain description."""

    name: str
    entities: tuple[EntitySpec, ...]
    relations: tuple[RelationSpec, ...] = ()
    topic_words: tuple[str, ...] = ()

    def entity(self, name: str) -> EntitySpec:
        for entity in self.entities:
            if entity.name == name:
                return entity
        raise KeyError(f"domain {self.name!r} has no entity {name!r}")


def _attr(name: str, column_type: ColumnType = ColumnType.TEXT, pool: str = "word",
          synonyms: tuple[str, ...] = ()) -> AttributeSpec:
    return AttributeSpec(name=name, column_type=column_type, value_pool=pool, synonyms=synonyms)


_INT = ColumnType.INTEGER
_REAL = ColumnType.REAL
_TEXT = ColumnType.TEXT
_DATE = ColumnType.DATE
_BOOL = ColumnType.BOOLEAN


#: Global synonym lexicon: schema word -> natural-language paraphrases.
SYNONYM_LEXICON: dict[str, tuple[str, ...]] = {
    "name": ("title", "full name", "label"),
    "age": ("years old", "how old"),
    "year": ("calendar year", "when"),
    "country": ("nation", "state of origin"),
    "city": ("town", "municipality"),
    "population": ("number of residents", "inhabitants"),
    "salary": ("pay", "compensation", "wage"),
    "price": ("cost", "amount charged"),
    "budget": ("funding", "money allocated"),
    "revenue": ("income", "earnings", "turnover"),
    "capacity": ("maximum size", "number of seats"),
    "rating": ("score", "review score"),
    "singer": ("vocalist", "artist"),
    "concert": ("show", "performance", "gig"),
    "venue": ("location", "place", "stadium"),
    "student": ("pupil", "learner"),
    "teacher": ("instructor", "educator"),
    "course": ("class", "subject"),
    "department": ("division", "unit"),
    "employee": ("worker", "staff member"),
    "manager": ("supervisor", "boss"),
    "customer": ("client", "buyer", "shopper"),
    "order": ("purchase", "transaction"),
    "product": ("item", "good", "merchandise"),
    "flight": ("air trip", "plane journey"),
    "airport": ("airfield", "air terminal"),
    "airline": ("carrier", "air company"),
    "patient": ("person treated", "case"),
    "doctor": ("physician", "clinician"),
    "hospital": ("clinic", "medical center"),
    "treatment": ("therapy", "procedure"),
    "car": ("automobile", "vehicle"),
    "maker": ("manufacturer", "producer"),
    "model": ("version", "variant"),
    "horsepower": ("engine power", "power output"),
    "team": ("club", "squad"),
    "player": ("athlete", "sportsperson"),
    "match": ("game", "fixture"),
    "stadium": ("arena", "ground"),
    "movie": ("film", "picture"),
    "director": ("filmmaker",),
    "actor": ("performer", "cast member"),
    "book": ("publication", "volume"),
    "author": ("writer",),
    "publisher": ("publishing house",),
    "loan": ("credit", "borrowing"),
    "account": ("bank account", "ledger"),
    "balance": ("amount held", "funds"),
    "branch": ("office", "location"),
    "invoice": ("bill", "statement"),
    "shipment": ("delivery", "consignment"),
    "warehouse": ("depot", "storage facility"),
    "supplier": ("vendor", "provider"),
    "region": ("area", "territory"),
    "indicator": ("metric", "measure"),
    "value": ("figure", "amount"),
    "quarter": ("three month period",),
    "gdp": ("gross domestic product", "economic output"),
    "language": ("tongue", "spoken language"),
    "continent": ("landmass", "part of the world"),
    "river": ("waterway", "stream"),
    "mountain": ("peak", "summit"),
    "election": ("vote", "poll"),
    "party": ("political party", "faction"),
    "candidate": ("nominee", "contender"),
    "song": ("track", "tune"),
    "album": ("record", "release"),
    "genre": ("style", "category of music"),
    "grade": ("mark", "result"),
    "enrollment": ("number of students", "registered students"),
    "tuition": ("school fees", "cost of study"),
    "duration": ("length", "running time"),
    "distance": ("length of trip", "mileage"),
    "weight": ("mass", "heaviness"),
    "height": ("elevation", "tallness"),
    "status": ("state", "condition"),
    "type": ("kind", "category"),
    "date": ("day", "calendar date"),
    "quantity": ("amount", "number of units"),
    "stock": ("inventory", "units available"),
    "email": ("email address", "contact address"),
    "phone": ("phone number", "telephone"),
    "address": ("location", "street address"),
    "nationality": ("citizenship", "country of origin"),
    "position": ("role", "job title"),
    "wins": ("victories", "games won"),
    "losses": ("defeats", "games lost"),
    "points": ("score", "tally"),
    "seats": ("places", "chairs"),
    "rooms": ("chambers", "accommodations"),
    "guest": ("visitor", "patron"),
    "hotel": ("inn", "lodging"),
    "booking": ("reservation",),
    "premiere": ("first showing", "debut"),
    "episode": ("installment", "part"),
    "channel": ("network", "station"),
    "donation": ("contribution", "gift"),
    "donor": ("contributor", "benefactor"),
    "charity": ("nonprofit", "foundation"),
    "asset": ("holding", "property"),
    "bond": ("fixed income security", "debt instrument"),
    "fund": ("investment fund", "portfolio"),
    "trade": ("transaction", "deal"),
    "sector": ("industry", "segment"),
    "profit": ("net income", "gain"),
}


def synonyms_for(word: str) -> tuple[str, ...]:
    """Paraphrases for a schema word ('' tuple when none are known)."""
    return SYNONYM_LEXICON.get(word, ())


# --------------------------------------------------------------------------
# Domain catalogue
# --------------------------------------------------------------------------

DOMAINS: tuple[DomainSpec, ...] = (
    DomainSpec(
        name="concert_singer",
        topic_words=("music", "live"),
        entities=(
            EntitySpec("singer", (
                _attr("name", _TEXT, "person_name"),
                _attr("country", _TEXT, "country"),
                _attr("age", _INT, "age"),
                _attr("net_worth", _REAL, "money"),
            )),
            EntitySpec("concert", (
                _attr("concert_name", _TEXT, "event_name"),
                _attr("venue", _TEXT, "venue"),
                _attr("year", _INT, "year"),
                _attr("capacity", _INT, "capacity"),
            )),
            EntitySpec("stadium", (
                _attr("name", _TEXT, "venue"),
                _attr("city", _TEXT, "city"),
                _attr("capacity", _INT, "capacity"),
                _attr("average_attendance", _REAL, "capacity"),
            )),
        ),
        relations=(
            RelationSpec(parent="stadium", child="concert"),
            RelationSpec(parent="singer", child="concert", kind="many_to_many",
                         junction_name="singer_in_concert"),
        ),
    ),
    DomainSpec(
        name="world_geography",
        topic_words=("world", "geography"),
        entities=(
            EntitySpec("country", (
                _attr("name", _TEXT, "country"),
                _attr("continent", _TEXT, "continent"),
                _attr("population", _INT, "population"),
                _attr("surface_area", _REAL, "area"),
                _attr("gdp", _REAL, "money"),
            )),
            EntitySpec("city", (
                _attr("name", _TEXT, "city"),
                _attr("population", _INT, "population"),
                _attr("is_capital", _BOOL, "boolean"),
            )),
            EntitySpec("language", (
                _attr("name", _TEXT, "language"),
                _attr("speakers", _INT, "population"),
                _attr("is_official", _BOOL, "boolean"),
            )),
            EntitySpec("river", (
                _attr("name", _TEXT, "river"),
                _attr("length", _REAL, "distance"),
            )),
        ),
        relations=(
            RelationSpec(parent="country", child="city"),
            RelationSpec(parent="country", child="language"),
            RelationSpec(parent="country", child="river", kind="many_to_many",
                         junction_name="river_traversal"),
        ),
    ),
    DomainSpec(
        name="university",
        topic_words=("education", "campus"),
        entities=(
            EntitySpec("student", (
                _attr("name", _TEXT, "person_name"),
                _attr("age", _INT, "age"),
                _attr("major", _TEXT, "subject"),
                _attr("gpa", _REAL, "rating"),
            )),
            EntitySpec("course", (
                _attr("title", _TEXT, "subject"),
                _attr("credits", _INT, "small_count"),
                _attr("level", _TEXT, "level"),
            )),
            EntitySpec("department", (
                _attr("name", _TEXT, "department"),
                _attr("budget", _REAL, "money"),
                _attr("building", _TEXT, "venue"),
            )),
            EntitySpec("instructor", (
                _attr("name", _TEXT, "person_name"),
                _attr("salary", _REAL, "money"),
                _attr("title", _TEXT, "position"),
            )),
        ),
        relations=(
            RelationSpec(parent="department", child="course"),
            RelationSpec(parent="department", child="instructor"),
            RelationSpec(parent="student", child="course", kind="many_to_many",
                         junction_name="enrollment"),
        ),
    ),
    DomainSpec(
        name="airline_flights",
        topic_words=("travel", "aviation"),
        entities=(
            EntitySpec("airline", (
                _attr("name", _TEXT, "company"),
                _attr("country", _TEXT, "country"),
                _attr("fleet_size", _INT, "small_count"),
            )),
            EntitySpec("airport", (
                _attr("name", _TEXT, "venue"),
                _attr("city", _TEXT, "city"),
                _attr("code", _TEXT, "code"),
            )),
            EntitySpec("flight", (
                _attr("flight_number", _TEXT, "code"),
                _attr("distance", _REAL, "distance"),
                _attr("price", _REAL, "money"),
                _attr("departure_date", _DATE, "date"),
            )),
        ),
        relations=(
            RelationSpec(parent="airline", child="flight"),
            RelationSpec(parent="airport", child="flight"),
        ),
    ),
    DomainSpec(
        name="hospital_care",
        topic_words=("health", "medicine"),
        entities=(
            EntitySpec("patient", (
                _attr("name", _TEXT, "person_name"),
                _attr("age", _INT, "age"),
                _attr("city", _TEXT, "city"),
            )),
            EntitySpec("doctor", (
                _attr("name", _TEXT, "person_name"),
                _attr("specialty", _TEXT, "specialty"),
                _attr("salary", _REAL, "money"),
            )),
            EntitySpec("treatment", (
                _attr("name", _TEXT, "treatment"),
                _attr("cost", _REAL, "money"),
                _attr("duration", _INT, "duration"),
            )),
            EntitySpec("ward", (
                _attr("name", _TEXT, "department"),
                _attr("beds", _INT, "capacity"),
            )),
        ),
        relations=(
            RelationSpec(parent="ward", child="patient"),
            RelationSpec(parent="doctor", child="treatment"),
            RelationSpec(parent="patient", child="treatment", kind="many_to_many",
                         junction_name="patient_treatment"),
        ),
    ),
    DomainSpec(
        name="car_manufacturing",
        topic_words=("automotive", "industry"),
        entities=(
            EntitySpec("maker", (
                _attr("name", _TEXT, "company"),
                _attr("country", _TEXT, "country"),
                _attr("founded_year", _INT, "year"),
            )),
            EntitySpec("model", (
                _attr("name", _TEXT, "product"),
                _attr("horsepower", _INT, "horsepower"),
                _attr("price", _REAL, "money"),
                _attr("weight", _REAL, "weight"),
            )),
            EntitySpec("dealer", (
                _attr("name", _TEXT, "company"),
                _attr("city", _TEXT, "city"),
                _attr("rating", _REAL, "rating"),
            )),
        ),
        relations=(
            RelationSpec(parent="maker", child="model"),
            RelationSpec(parent="dealer", child="model", kind="many_to_many",
                         junction_name="dealer_stock"),
        ),
    ),
    DomainSpec(
        name="retail_orders",
        topic_words=("commerce", "shopping"),
        entities=(
            EntitySpec("customer", (
                _attr("name", _TEXT, "person_name"),
                _attr("city", _TEXT, "city"),
                _attr("email", _TEXT, "email"),
            )),
            EntitySpec("product", (
                _attr("name", _TEXT, "product"),
                _attr("price", _REAL, "money"),
                _attr("category", _TEXT, "category"),
                _attr("stock", _INT, "quantity"),
            )),
            EntitySpec("purchase", (
                _attr("order_date", _DATE, "date"),
                _attr("quantity", _INT, "quantity"),
                _attr("total_amount", _REAL, "money"),
            )),
        ),
        relations=(
            RelationSpec(parent="customer", child="purchase"),
            RelationSpec(parent="product", child="purchase"),
        ),
    ),
    DomainSpec(
        name="sports_league",
        topic_words=("sports", "competition"),
        entities=(
            EntitySpec("team", (
                _attr("name", _TEXT, "team"),
                _attr("city", _TEXT, "city"),
                _attr("wins", _INT, "small_count"),
                _attr("losses", _INT, "small_count"),
            )),
            EntitySpec("player", (
                _attr("name", _TEXT, "person_name"),
                _attr("age", _INT, "age"),
                _attr("position", _TEXT, "position"),
                _attr("salary", _REAL, "money"),
            )),
            EntitySpec("match", (
                _attr("season", _INT, "year"),
                _attr("attendance", _INT, "capacity"),
                _attr("home_score", _INT, "small_count"),
                _attr("away_score", _INT, "small_count"),
            )),
        ),
        relations=(
            RelationSpec(parent="team", child="player"),
            RelationSpec(parent="team", child="match"),
        ),
    ),
    DomainSpec(
        name="movie_streaming",
        topic_words=("entertainment", "film"),
        entities=(
            EntitySpec("movie", (
                _attr("title", _TEXT, "title"),
                _attr("release_year", _INT, "year"),
                _attr("rating", _REAL, "rating"),
                _attr("duration", _INT, "duration"),
            )),
            EntitySpec("director", (
                _attr("name", _TEXT, "person_name"),
                _attr("nationality", _TEXT, "country"),
            )),
            EntitySpec("actor", (
                _attr("name", _TEXT, "person_name"),
                _attr("age", _INT, "age"),
            )),
            EntitySpec("platform", (
                _attr("name", _TEXT, "company"),
                _attr("subscribers", _INT, "population"),
            )),
        ),
        relations=(
            RelationSpec(parent="director", child="movie"),
            RelationSpec(parent="actor", child="movie", kind="many_to_many",
                         junction_name="cast_member"),
            RelationSpec(parent="platform", child="movie", kind="many_to_many",
                         junction_name="streaming_catalog"),
        ),
    ),
    DomainSpec(
        name="library_books",
        topic_words=("reading", "archive"),
        entities=(
            EntitySpec("book", (
                _attr("title", _TEXT, "title"),
                _attr("publication_year", _INT, "year"),
                _attr("pages", _INT, "quantity"),
                _attr("genre", _TEXT, "genre"),
            )),
            EntitySpec("author", (
                _attr("name", _TEXT, "person_name"),
                _attr("nationality", _TEXT, "country"),
            )),
            EntitySpec("publisher", (
                _attr("name", _TEXT, "company"),
                _attr("city", _TEXT, "city"),
            )),
            EntitySpec("member", (
                _attr("name", _TEXT, "person_name"),
                _attr("join_date", _DATE, "date"),
            )),
        ),
        relations=(
            RelationSpec(parent="publisher", child="book"),
            RelationSpec(parent="author", child="book", kind="many_to_many",
                         junction_name="book_author"),
            RelationSpec(parent="member", child="book", kind="many_to_many",
                         junction_name="book_loan"),
        ),
    ),
    DomainSpec(
        name="banking_finance",
        topic_words=("finance", "money"),
        entities=(
            EntitySpec("account", (
                _attr("account_number", _TEXT, "code"),
                _attr("balance", _REAL, "money"),
                _attr("account_type", _TEXT, "category"),
            )),
            EntitySpec("branch", (
                _attr("name", _TEXT, "company"),
                _attr("city", _TEXT, "city"),
                _attr("assets", _REAL, "money"),
            )),
            EntitySpec("loan", (
                _attr("amount", _REAL, "money"),
                _attr("interest_rate", _REAL, "rating"),
                _attr("start_date", _DATE, "date"),
            )),
            EntitySpec("client", (
                _attr("name", _TEXT, "person_name"),
                _attr("city", _TEXT, "city"),
                _attr("credit_score", _INT, "capacity"),
            )),
        ),
        relations=(
            RelationSpec(parent="branch", child="account"),
            RelationSpec(parent="client", child="account"),
            RelationSpec(parent="client", child="loan"),
        ),
    ),
    DomainSpec(
        name="macro_economy",
        topic_words=("economy", "statistics"),
        entities=(
            EntitySpec("region", (
                _attr("name", _TEXT, "region"),
                _attr("population", _INT, "population"),
            )),
            EntitySpec("indicator", (
                _attr("name", _TEXT, "indicator"),
                _attr("unit", _TEXT, "unit"),
            )),
            EntitySpec("period", (
                _attr("year", _INT, "year"),
                _attr("quarter", _INT, "quarter"),
                _attr("period_type", _TEXT, "category"),
            )),
            EntitySpec("observation", (
                _attr("value", _REAL, "money"),
                _attr("is_estimate", _BOOL, "boolean"),
            )),
        ),
        relations=(
            RelationSpec(parent="region", child="observation"),
            RelationSpec(parent="indicator", child="observation"),
            RelationSpec(parent="period", child="observation"),
        ),
    ),
    DomainSpec(
        name="hotel_bookings",
        topic_words=("hospitality", "travel"),
        entities=(
            EntitySpec("hotel", (
                _attr("name", _TEXT, "company"),
                _attr("city", _TEXT, "city"),
                _attr("stars", _INT, "small_count"),
                _attr("rooms", _INT, "capacity"),
            )),
            EntitySpec("guest", (
                _attr("name", _TEXT, "person_name"),
                _attr("nationality", _TEXT, "country"),
            )),
            EntitySpec("booking", (
                _attr("check_in", _DATE, "date"),
                _attr("nights", _INT, "small_count"),
                _attr("price", _REAL, "money"),
            )),
        ),
        relations=(
            RelationSpec(parent="hotel", child="booking"),
            RelationSpec(parent="guest", child="booking"),
        ),
    ),
    DomainSpec(
        name="music_catalog",
        topic_words=("music", "audio"),
        entities=(
            EntitySpec("artist", (
                _attr("name", _TEXT, "person_name"),
                _attr("country", _TEXT, "country"),
                _attr("followers", _INT, "population"),
            )),
            EntitySpec("album", (
                _attr("title", _TEXT, "title"),
                _attr("release_year", _INT, "year"),
                _attr("sales", _INT, "population"),
            )),
            EntitySpec("song", (
                _attr("title", _TEXT, "title"),
                _attr("duration", _INT, "duration"),
                _attr("genre", _TEXT, "genre"),
            )),
        ),
        relations=(
            RelationSpec(parent="artist", child="album"),
            RelationSpec(parent="album", child="song"),
        ),
    ),
    DomainSpec(
        name="elections",
        topic_words=("politics", "government"),
        entities=(
            EntitySpec("candidate", (
                _attr("name", _TEXT, "person_name"),
                _attr("age", _INT, "age"),
                _attr("votes", _INT, "population"),
            )),
            EntitySpec("party", (
                _attr("name", _TEXT, "party"),
                _attr("founded_year", _INT, "year"),
                _attr("seats", _INT, "small_count"),
            )),
            EntitySpec("district", (
                _attr("name", _TEXT, "region"),
                _attr("registered_voters", _INT, "population"),
            )),
        ),
        relations=(
            RelationSpec(parent="party", child="candidate"),
            RelationSpec(parent="district", child="candidate"),
        ),
    ),
    DomainSpec(
        name="logistics_supply",
        topic_words=("logistics", "operations"),
        entities=(
            EntitySpec("warehouse", (
                _attr("name", _TEXT, "venue"),
                _attr("city", _TEXT, "city"),
                _attr("capacity", _INT, "capacity"),
            )),
            EntitySpec("supplier", (
                _attr("name", _TEXT, "company"),
                _attr("country", _TEXT, "country"),
                _attr("rating", _REAL, "rating"),
            )),
            EntitySpec("shipment", (
                _attr("weight", _REAL, "weight"),
                _attr("ship_date", _DATE, "date"),
                _attr("cost", _REAL, "money"),
            )),
            EntitySpec("item", (
                _attr("name", _TEXT, "product"),
                _attr("unit_price", _REAL, "money"),
                _attr("category", _TEXT, "category"),
            )),
        ),
        relations=(
            RelationSpec(parent="warehouse", child="shipment"),
            RelationSpec(parent="supplier", child="shipment"),
            RelationSpec(parent="shipment", child="item", kind="many_to_many",
                         junction_name="shipment_item"),
        ),
    ),
    DomainSpec(
        name="tv_broadcast",
        topic_words=("television", "media"),
        entities=(
            EntitySpec("channel", (
                _attr("name", _TEXT, "company"),
                _attr("country", _TEXT, "country"),
                _attr("launch_year", _INT, "year"),
            )),
            EntitySpec("series", (
                _attr("title", _TEXT, "title"),
                _attr("seasons", _INT, "small_count"),
                _attr("rating", _REAL, "rating"),
            )),
            EntitySpec("episode", (
                _attr("title", _TEXT, "title"),
                _attr("air_date", _DATE, "date"),
                _attr("viewers", _INT, "population"),
            )),
        ),
        relations=(
            RelationSpec(parent="channel", child="series"),
            RelationSpec(parent="series", child="episode"),
        ),
    ),
    DomainSpec(
        name="charity_donations",
        topic_words=("charity", "nonprofit"),
        entities=(
            EntitySpec("charity", (
                _attr("name", _TEXT, "company"),
                _attr("cause", _TEXT, "category"),
                _attr("founded_year", _INT, "year"),
            )),
            EntitySpec("donor", (
                _attr("name", _TEXT, "person_name"),
                _attr("city", _TEXT, "city"),
            )),
            EntitySpec("donation", (
                _attr("amount", _REAL, "money"),
                _attr("donation_date", _DATE, "date"),
                _attr("is_recurring", _BOOL, "boolean"),
            )),
        ),
        relations=(
            RelationSpec(parent="charity", child="donation"),
            RelationSpec(parent="donor", child="donation"),
        ),
    ),
    DomainSpec(
        name="real_estate",
        topic_words=("property", "housing"),
        entities=(
            EntitySpec("property", (
                _attr("address", _TEXT, "address"),
                _attr("price", _REAL, "money"),
                _attr("bedrooms", _INT, "small_count"),
                _attr("area", _REAL, "area"),
            )),
            EntitySpec("agent", (
                _attr("name", _TEXT, "person_name"),
                _attr("agency", _TEXT, "company"),
                _attr("commission_rate", _REAL, "rating"),
            )),
            EntitySpec("viewing", (
                _attr("viewing_date", _DATE, "date"),
                _attr("feedback_score", _INT, "small_count"),
            )),
        ),
        relations=(
            RelationSpec(parent="property", child="viewing"),
            RelationSpec(parent="agent", child="viewing"),
        ),
    ),
    DomainSpec(
        name="energy_grid",
        topic_words=("energy", "utilities"),
        entities=(
            EntitySpec("plant", (
                _attr("name", _TEXT, "venue"),
                _attr("fuel_type", _TEXT, "category"),
                _attr("capacity", _REAL, "capacity"),
            )),
            EntitySpec("operator", (
                _attr("name", _TEXT, "company"),
                _attr("country", _TEXT, "country"),
            )),
            EntitySpec("reading", (
                _attr("reading_date", _DATE, "date"),
                _attr("output", _REAL, "capacity"),
                _attr("efficiency", _REAL, "rating"),
            )),
        ),
        relations=(
            RelationSpec(parent="operator", child="plant"),
            RelationSpec(parent="plant", child="reading"),
        ),
    ),
    DomainSpec(
        name="investment_funds",
        topic_words=("investment", "markets"),
        entities=(
            EntitySpec("fund", (
                _attr("name", _TEXT, "company"),
                _attr("inception_year", _INT, "year"),
                _attr("total_assets", _REAL, "money"),
            )),
            EntitySpec("security", (
                _attr("ticker", _TEXT, "code"),
                _attr("sector", _TEXT, "category"),
                _attr("price", _REAL, "money"),
            )),
            EntitySpec("holding", (
                _attr("shares", _INT, "quantity"),
                _attr("market_value", _REAL, "money"),
            )),
            EntitySpec("trade", (
                _attr("trade_date", _DATE, "date"),
                _attr("quantity", _INT, "quantity"),
                _attr("side", _TEXT, "category"),
            )),
        ),
        relations=(
            RelationSpec(parent="fund", child="holding"),
            RelationSpec(parent="security", child="holding"),
            RelationSpec(parent="fund", child="trade"),
            RelationSpec(parent="security", child="trade"),
        ),
    ),
    DomainSpec(
        name="restaurant_reviews",
        topic_words=("dining", "food"),
        entities=(
            EntitySpec("restaurant", (
                _attr("name", _TEXT, "company"),
                _attr("city", _TEXT, "city"),
                _attr("cuisine", _TEXT, "category"),
                _attr("average_price", _REAL, "money"),
            )),
            EntitySpec("reviewer", (
                _attr("name", _TEXT, "person_name"),
                _attr("review_count", _INT, "small_count"),
            )),
            EntitySpec("review", (
                _attr("rating", _REAL, "rating"),
                _attr("review_date", _DATE, "date"),
            )),
        ),
        relations=(
            RelationSpec(parent="restaurant", child="review"),
            RelationSpec(parent="reviewer", child="review"),
        ),
    ),
    DomainSpec(
        name="research_grants",
        topic_words=("research", "science"),
        entities=(
            EntitySpec("researcher", (
                _attr("name", _TEXT, "person_name"),
                _attr("field", _TEXT, "subject"),
                _attr("h_index", _INT, "small_count"),
            )),
            EntitySpec("grant", (
                _attr("title", _TEXT, "title"),
                _attr("amount", _REAL, "money"),
                _attr("start_year", _INT, "year"),
            )),
            EntitySpec("institution", (
                _attr("name", _TEXT, "company"),
                _attr("country", _TEXT, "country"),
                _attr("ranking", _INT, "small_count"),
            )),
        ),
        relations=(
            RelationSpec(parent="institution", child="researcher"),
            RelationSpec(parent="researcher", child="grant", kind="many_to_many",
                         junction_name="grant_award"),
        ),
    ),
    DomainSpec(
        name="insurance_claims",
        topic_words=("insurance", "risk"),
        entities=(
            EntitySpec("policy", (
                _attr("policy_number", _TEXT, "code"),
                _attr("premium", _REAL, "money"),
                _attr("coverage_type", _TEXT, "category"),
            )),
            EntitySpec("policyholder", (
                _attr("name", _TEXT, "person_name"),
                _attr("age", _INT, "age"),
                _attr("city", _TEXT, "city"),
            )),
            EntitySpec("claim", (
                _attr("claim_date", _DATE, "date"),
                _attr("amount", _REAL, "money"),
                _attr("status", _TEXT, "status"),
            )),
        ),
        relations=(
            RelationSpec(parent="policyholder", child="policy"),
            RelationSpec(parent="policy", child="claim"),
        ),
    ),
)


def domain_by_name(name: str) -> DomainSpec:
    """Look up a domain by its base name."""
    for domain in DOMAINS:
        if domain.name == name:
            return domain
    raise KeyError(f"unknown domain {name!r}")
