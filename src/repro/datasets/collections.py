"""Benchmark collection builders.

Three collections mirror the paper's evaluation datasets (Table 2):

* :func:`build_spider_like` -- many cross-domain databases with a handful of
  tables each (Spider: 166 DBs / 876 tables in the adapted collection).
* :func:`build_bird_like` -- fewer databases but wider tables with noisy
  generic columns (BIRD: 80 DBs / 597 tables / 4337 columns).
* :func:`build_fiben_like` -- a single enterprise-style database with a large
  number of interconnected tables (Fiben: 1 DB / 152 tables), test-only.

Every builder is seeded and scale-configurable: the defaults target CPU-minute
experiments, and ``scale`` can be raised to approach the paper's sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.datasets.examples import BenchmarkDataset, Example
from repro.datasets.generator import DatabaseGenerator, GeneratedDatabase, GeneratorConfig
from repro.datasets.vocabulary import DOMAINS, DomainSpec
from repro.datasets.workload import WorkloadConfig, WorkloadGenerator
from repro.engine.instance import CatalogInstance
from repro.schema.catalog import Catalog
from repro.schema.database import Database
from repro.engine.instance import DatabaseInstance
from repro.utils.rng import SeededRng


@dataclass(frozen=True)
class CollectionConfig:
    """Configuration of one benchmark collection."""

    name: str = "spider_like"
    num_databases: int = 24
    rows_per_table: int = 30
    extra_columns: int = 0
    examples_per_database: int = 30
    #: Fraction of databases whose examples form the *test* split.  Following
    #: Spider, train and test databases are disjoint, which is what makes
    #: generative retrieval trained only on original data fail (Table 7, "OD").
    test_database_fraction: float = 0.35
    seed: int = 13

    def scaled(self, scale: float) -> "CollectionConfig":
        """Scale database and example counts by ``scale`` (>=1 grows)."""
        return replace(
            self,
            num_databases=max(1, int(round(self.num_databases * scale))),
            examples_per_database=max(4, int(round(self.examples_per_database * scale))),
        )


def spider_like_config(seed: int = 13) -> CollectionConfig:
    return CollectionConfig(name="spider_like", num_databases=30, rows_per_table=30,
                            extra_columns=0, examples_per_database=30, seed=seed)


def bird_like_config(seed: int = 17) -> CollectionConfig:
    return CollectionConfig(name="bird_like", num_databases=14, rows_per_table=40,
                            extra_columns=5, examples_per_database=36, seed=seed)


def fiben_like_config(seed: int = 19) -> CollectionConfig:
    return CollectionConfig(name="fiben_like", num_databases=1, rows_per_table=30,
                            extra_columns=1, examples_per_database=120,
                            test_database_fraction=1.0, seed=seed)


# -- generic builder ---------------------------------------------------------------

def build_collection(config: CollectionConfig) -> BenchmarkDataset:
    """Build a multi-database benchmark collection from ``config``."""
    rng = SeededRng(config.seed)
    generator_config = GeneratorConfig(rows_per_table=config.rows_per_table,
                                       extra_columns=config.extra_columns)
    workload_generator = WorkloadGenerator(
        config=WorkloadConfig(examples_per_database=config.examples_per_database),
        seed=config.seed + 1,
    )

    catalog = Catalog(name=config.name)
    generated_databases: list[tuple[GeneratedDatabase, DomainSpec]] = []
    domain_cycle = _domain_variants(config.num_databases, rng)
    for database_name, domain, variant in domain_cycle:
        variant_generator = DatabaseGenerator(
            config=replace(generator_config, pluralize_tables=(variant % 2 == 1),
                           attribute_dropout=0.15 if variant > 0 else 0.0),
            seed=config.seed + variant * 1000 + 7,
        )
        generated = variant_generator.generate(domain, name=database_name)
        catalog.add_database(generated.database)
        generated_databases.append((generated, domain))

    instances = CatalogInstance(
        catalog=catalog,
        instances={g.database.name: g.instance for g, _ in generated_databases},
    )

    # Workload per database, then split by database into train / test.
    examples_by_database: dict[str, list[Example]] = {}
    for generated, domain in generated_databases:
        examples_by_database[generated.database.name] = workload_generator.generate(generated, domain)

    database_names = rng.shuffled(catalog.database_names)
    num_test = max(1, int(round(len(database_names) * config.test_database_fraction)))
    test_databases = set(database_names[:num_test])

    train_examples: list[Example] = []
    test_examples: list[Example] = []
    for database_name, examples in examples_by_database.items():
        if database_name in test_databases:
            test_examples.extend(examples)
        else:
            train_examples.extend(examples)

    return BenchmarkDataset(
        name=config.name,
        catalog=catalog,
        instances=instances,
        train_examples=rng.shuffled(train_examples),
        test_examples=rng.shuffled(test_examples),
    )


def _domain_variants(num_databases: int, rng: SeededRng) -> list[tuple[str, DomainSpec, int]]:
    """Produce ``num_databases`` (name, domain, variant_index) triples."""
    ordered = rng.shuffled(DOMAINS)
    triples: list[tuple[str, DomainSpec, int]] = []
    variant = 0
    while len(triples) < num_databases:
        for domain in ordered:
            if len(triples) >= num_databases:
                break
            name = domain.name if variant == 0 else f"{domain.name}_{variant + 1}"
            triples.append((name, domain, variant))
        variant += 1
    return triples


# -- named builders --------------------------------------------------------------------

def build_spider_like(seed: int = 13, scale: float = 1.0) -> BenchmarkDataset:
    """Spider-style collection: many small cross-domain databases."""
    return build_collection(spider_like_config(seed).scaled(scale))


def build_bird_like(seed: int = 17, scale: float = 1.0) -> BenchmarkDataset:
    """BIRD-style collection: fewer databases with wide, noisy tables."""
    return build_collection(bird_like_config(seed).scaled(scale))


def build_fiben_like(seed: int = 19, scale: float = 1.0) -> BenchmarkDataset:
    """Fiben-style collection: one enterprise database with many tables.

    Multiple domains are packed into a single database with per-domain table
    prefixes, mimicking a financial data mart whose schema conforms to a large
    shared ontology.  Like the original Fiben benchmark it only has a test
    split.
    """
    config = fiben_like_config(seed).scaled(scale)
    rng = SeededRng(config.seed)
    generator_config = GeneratorConfig(rows_per_table=config.rows_per_table,
                                       extra_columns=config.extra_columns)
    database_generator = DatabaseGenerator(config=generator_config, seed=config.seed)

    # Prefer finance-flavoured domains first, then fill with the rest so the
    # single database reaches a large table count.
    preferred = ("banking_finance", "investment_funds", "macro_economy",
                 "insurance_claims", "retail_orders", "logistics_supply",
                 "real_estate", "charity_donations", "energy_grid", "research_grants")
    domains = [d for name in preferred for d in DOMAINS if d.name == name]
    domains += [d for d in DOMAINS if d not in domains][: max(0, 14 - len(domains))]

    merged = Database(name="fin_mart", domain="enterprise",
                      comment="enterprise financial data mart")
    per_domain: list[tuple[GeneratedDatabase, DomainSpec]] = []
    for index, domain in enumerate(domains):
        generated = database_generator.generate(domain, name=f"fin_mart_part_{index}",
                                                table_prefix=f"d{index}_")
        for table in generated.database.tables:
            merged.add_table(table)
        for foreign_key in generated.database.foreign_keys:
            merged.add_foreign_key(foreign_key)
        per_domain.append((generated, domain))

    merged_instance = DatabaseInstance(schema=merged)
    for generated, _ in per_domain:
        for table_name, rows in generated.instance.tables.items():
            merged_instance.tables[table_name].extend(rows)

    catalog = Catalog(name=config.name, databases=[merged])
    instances = CatalogInstance(catalog=catalog, instances={merged.name: merged_instance})

    workload_generator = WorkloadGenerator(
        config=WorkloadConfig(examples_per_database=max(4, config.examples_per_database // max(len(domains), 1))),
        seed=config.seed + 1,
    )
    test_examples: list[Example] = []
    for generated, domain in per_domain:
        view = GeneratedDatabase(
            database=merged,
            instance=merged_instance,
            entity_tables=generated.entity_tables,
            primary_keys=generated.primary_keys,
        )
        test_examples.extend(workload_generator.generate(view, domain))

    return BenchmarkDataset(
        name=config.name,
        catalog=catalog,
        instances=instances,
        train_examples=[],
        test_examples=rng.shuffled(test_examples),
    )
