"""Synthetic NL2SQL workload generator.

Produces ``(question, SQL, schema)`` examples over a generated database.  The
query templates mirror the shapes highlighted by the paper and by Spider/BIRD:
single-table filters and aggregates, superlatives, foreign-key joins, joins
through junction tables (paper Example 2), grouped counts with ordering, and
nested sub-queries (paper Example 3).

Question phrasing intentionally mentions schema words (table/column names);
the robustness transforms later replace them with paraphrases to recreate
Spider-syn / Spider-real.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.examples import Example
from repro.datasets.generator import GeneratedDatabase
from repro.datasets.values import FILTERABLE_TEXT_POOLS
from repro.datasets.vocabulary import DomainSpec
from repro.schema.column import Column, ColumnType
from repro.schema.table import Table
from repro.utils.rng import SeededRng
from repro.utils.text import pluralize


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs controlling workload generation."""

    #: Number of examples to aim for per database.
    examples_per_database: int = 30
    #: Probability that a schema word in a question gets replaced by a
    #: paraphrase from the synonym lexicon.  Real benchmark questions rarely
    #: quote identifiers verbatim, so a moderate rate keeps the lexical gap
    #: between questions and schemata realistic (the robustness variants push
    #: this much further).
    paraphrase_probability: float = 0.35


@dataclass
class _TemplateContext:
    """Everything a template needs to emit an example."""

    generated: GeneratedDatabase
    domain: DomainSpec
    rng: SeededRng

    @property
    def database_name(self) -> str:
        return self.generated.database.name


class WorkloadGenerator:
    """Generates NL/SQL example pairs for a generated database."""

    def __init__(self, config: WorkloadConfig | None = None, seed: int = 0) -> None:
        self.config = config or WorkloadConfig()
        self._rng = SeededRng(seed)

    # -- public API -----------------------------------------------------------
    def generate(self, generated: GeneratedDatabase, domain: DomainSpec) -> list[Example]:
        """Generate examples for one database."""
        rng = self._rng.child(generated.database.name)
        context = _TemplateContext(generated=generated, domain=domain, rng=rng)
        templates = [
            self._list_with_filter,
            self._count_with_filter,
            self._aggregate,
            self._superlative,
            self._join_one_to_many,
            self._join_junction,
            self._grouped_count,
            self._nested_max,
            self._in_subquery,
        ]
        examples: list[Example] = []
        attempts = 0
        max_attempts = self.config.examples_per_database * 6
        while len(examples) < self.config.examples_per_database and attempts < max_attempts:
            attempts += 1
            template = rng.choice(templates)
            example = template(context)
            if example is not None:
                examples.append(self._apply_paraphrases(example, context))
        return examples

    def _apply_paraphrases(self, example: Example, context: _TemplateContext) -> Example:
        """Lightly paraphrase schema words so questions are not verbatim schema."""
        if self.config.paraphrase_probability <= 0.0:
            return example
        # Imported here to keep the module dependency one-way at import time.
        from repro.datasets.robustness import perturb_question_synonyms

        database = context.generated.database
        schema_words: set[str] = set()
        for table_name in example.tables:
            table = database.table(table_name)
            schema_words.update(table.words)
            for column in table.columns:
                schema_words.update(column.words)
        question = perturb_question_synonyms(
            example.question, schema_words,
            context.rng.child(f"paraphrase:{example.question}"),
            probability=self.config.paraphrase_probability,
        )
        return example.with_question(question)

    # -- template helpers ---------------------------------------------------------
    def _entity_table(self, context: _TemplateContext, exclude: set[str] | None = None) -> tuple[str, Table] | None:
        """Pick a random (entity, table) pair, skipping junction tables."""
        candidates = [
            (entity, context.generated.database.table(table_name))
            for entity, table_name in context.generated.entity_tables.items()
            if exclude is None or entity not in exclude
        ]
        if not candidates:
            return None
        return context.rng.choice(candidates)

    def _filter_column(self, table: Table, context: _TemplateContext) -> Column | None:
        """Pick a column usable in a WHERE equality/range filter."""
        candidates = [
            column for column in table.columns
            if not column.is_primary_key and not column.name.endswith("_id")
        ]
        if not candidates:
            return None
        return context.rng.choice(candidates)

    def _display_column(self, table: Table, context: _TemplateContext,
                        exclude: str | None = None) -> Column | None:
        """Pick a human-meaningful column to project (prefer text columns)."""
        text_columns = [
            column for column in table.columns
            if column.column_type is ColumnType.TEXT and not column.is_primary_key
            and column.name != exclude and not column.name.endswith("_id")
        ]
        other_columns = [
            column for column in table.columns
            if not column.is_primary_key and column.name != exclude
            and not column.name.endswith("_id")
        ]
        candidates = text_columns or other_columns
        if not candidates:
            return None
        return context.rng.choice(candidates)

    @staticmethod
    def _identity_column(table: Table) -> Column | None:
        """The column that naturally identifies a row ("name", "title", ...).

        Questions like "Which singer ..." implicitly ask for this column, so
        templates that do not mention the projected column explicitly use it;
        otherwise the question would be unanswerable even with a gold schema.
        """
        preferred = ("name", "title")
        for column in table.columns:
            if column.name in preferred:
                return column
        for column in table.columns:
            if column.name.endswith("_name") or column.name.endswith("_title"):
                return column
        return None

    def _numeric_column(self, table: Table, context: _TemplateContext) -> Column | None:
        candidates = [
            column for column in table.columns
            if column.column_type.is_numeric and not column.is_primary_key
            and not column.name.endswith("_id")
        ]
        if not candidates:
            return None
        return context.rng.choice(candidates)

    def _sample_value(self, context: _TemplateContext, table: Table, column: Column) -> object | None:
        """Pick a value of ``column`` that actually occurs in the stored rows."""
        instance = context.generated.instance
        rows = instance.tables.get(table.name, [])
        if not rows:
            return None
        index = table.column_names.index(column.name)
        values = [row[index] for row in rows if row[index] is not None]
        if not values:
            return None
        return context.rng.choice(values)

    def _filter_sql_and_phrase(self, context: _TemplateContext, table: Table,
                               column: Column, alias: str | None = None) -> tuple[str, str] | None:
        """Build a WHERE fragment and its natural-language phrasing."""
        value = self._sample_value(context, table, column)
        if value is None:
            return None
        qualifier = f"{alias}." if alias else ""
        word = column.name.replace("_", " ")
        if column.column_type is ColumnType.TEXT or column.column_type is ColumnType.DATE:
            sql = f"{qualifier}{column.name} = '{value}'"
            phrase = f"whose {word} is {value}"
        elif column.column_type is ColumnType.BOOLEAN:
            literal = "TRUE" if value else "FALSE"
            sql = f"{qualifier}{column.name} = {literal}"
            phrase = f"where {word} is {str(bool(value)).lower()}"
        else:
            if context.rng.coin(0.5):
                sql = f"{qualifier}{column.name} > {value}"
                phrase = f"with {word} greater than {value}"
            else:
                sql = f"{qualifier}{column.name} < {value}"
                phrase = f"with {word} less than {value}"
        return sql, phrase

    @staticmethod
    def _columns_of(*pairs: tuple[str, Column | None]) -> tuple[str, ...]:
        names = []
        for table_name, column in pairs:
            if column is not None:
                names.append(f"{table_name}.{column.name}")
        return tuple(names)

    # -- templates --------------------------------------------------------------------
    def _list_with_filter(self, context: _TemplateContext) -> Example | None:
        picked = self._entity_table(context)
        if picked is None:
            return None
        entity, table = picked
        display = self._display_column(table, context)
        filter_column = self._filter_column(table, context)
        if display is None or filter_column is None or display.name == filter_column.name:
            return None
        built = self._filter_sql_and_phrase(context, table, filter_column)
        if built is None:
            return None
        condition, phrase = built
        sql = f"SELECT {display.name} FROM {table.name} WHERE {condition}"
        question = context.rng.choice([
            f"What is the {display.name.replace('_', ' ')} of the {entity} {phrase}?",
            f"List the {display.name.replace('_', ' ')} of {pluralize(entity)} {phrase}.",
            f"Show the {display.name.replace('_', ' ')} for every {entity} {phrase}.",
        ])
        return Example(
            question=question, database=context.database_name, tables=(table.name,),
            sql=sql, columns=self._columns_of((table.name, display), (table.name, filter_column)),
            difficulty="easy", template="list_with_filter",
        )

    def _count_with_filter(self, context: _TemplateContext) -> Example | None:
        picked = self._entity_table(context)
        if picked is None:
            return None
        entity, table = picked
        filter_column = self._filter_column(table, context)
        if filter_column is None:
            return None
        built = self._filter_sql_and_phrase(context, table, filter_column)
        if built is None:
            return None
        condition, phrase = built
        sql = f"SELECT COUNT(*) FROM {table.name} WHERE {condition}"
        question = context.rng.choice([
            f"How many {pluralize(entity)} are there {phrase}?",
            f"Count the {pluralize(entity)} {phrase}.",
            f"What is the number of {pluralize(entity)} {phrase}?",
        ])
        return Example(
            question=question, database=context.database_name, tables=(table.name,),
            sql=sql, columns=self._columns_of((table.name, filter_column)),
            difficulty="easy", template="count_with_filter",
        )

    def _aggregate(self, context: _TemplateContext) -> Example | None:
        picked = self._entity_table(context)
        if picked is None:
            return None
        entity, table = picked
        numeric = self._numeric_column(table, context)
        if numeric is None:
            return None
        function = context.rng.choice(["AVG", "MAX", "MIN", "SUM"])
        sql = f"SELECT {function}({numeric.name}) FROM {table.name}"
        wording = {"AVG": "average", "MAX": "maximum", "MIN": "minimum", "SUM": "total"}[function]
        question = context.rng.choice([
            f"What is the {wording} {numeric.name.replace('_', ' ')} of all {pluralize(entity)}?",
            f"Find the {wording} {numeric.name.replace('_', ' ')} across {pluralize(entity)}.",
        ])
        return Example(
            question=question, database=context.database_name, tables=(table.name,),
            sql=sql, columns=self._columns_of((table.name, numeric)),
            difficulty="easy", template="aggregate",
        )

    def _superlative(self, context: _TemplateContext) -> Example | None:
        picked = self._entity_table(context)
        if picked is None:
            return None
        entity, table = picked
        identity = self._identity_column(table)
        numeric = self._numeric_column(table, context)
        if numeric is None:
            return None
        descending = context.rng.coin(0.5)
        direction = "DESC" if descending else "ASC"
        wording = "highest" if descending else "lowest"
        if identity is not None and context.rng.coin(0.5):
            # Implicit projection: "which singer" asks for the identity column.
            display = identity
            question = f"Which {entity} has the {wording} {numeric.name.replace('_', ' ')}?"
        else:
            display = self._display_column(table, context)
            if display is None or display.name == numeric.name:
                return None
            question = (f"Give the {display.name.replace('_', ' ')} of the {entity} "
                        f"with the {wording} {numeric.name.replace('_', ' ')}.")
        sql = (f"SELECT {display.name} FROM {table.name} "
               f"ORDER BY {numeric.name} {direction} LIMIT 1")
        return Example(
            question=question, database=context.database_name, tables=(table.name,),
            sql=sql, columns=self._columns_of((table.name, display), (table.name, numeric)),
            difficulty="medium", template="superlative",
        )

    def _one_to_many_relation(self, context: _TemplateContext):
        relations = [r for r in context.domain.relations if r.kind == "one_to_many"]
        if not relations:
            return None
        return context.rng.choice(relations)

    def _join_one_to_many(self, context: _TemplateContext) -> Example | None:
        relation = self._one_to_many_relation(context)
        if relation is None:
            return None
        generated = context.generated
        parent_table = generated.database.table(generated.entity_tables[relation.parent])
        child_table = generated.database.table(generated.entity_tables[relation.child])
        parent_pk = generated.primary_keys[parent_table.name]
        display = self._display_column(child_table, context)
        filter_column = self._filter_column(parent_table, context)
        if display is None or filter_column is None:
            return None
        built = self._filter_sql_and_phrase(context, parent_table, filter_column, alias="p")
        if built is None:
            return None
        condition, phrase = built
        sql = (f"SELECT c.{display.name} FROM {child_table.name} AS c "
               f"JOIN {parent_table.name} AS p ON c.{parent_pk} = p.{parent_pk} "
               f"WHERE {condition}")
        question = context.rng.choice([
            f"Show the {display.name.replace('_', ' ')} of {pluralize(relation.child)} "
            f"belonging to the {relation.parent} {phrase}.",
            f"What are the {display.name.replace('_', ' ')} values of {pluralize(relation.child)} "
            f"for the {relation.parent} {phrase}?",
            f"List every {relation.child} {display.name.replace('_', ' ')} of the "
            f"{relation.parent} {phrase}.",
        ])
        return Example(
            question=question, database=context.database_name,
            tables=(child_table.name, parent_table.name), sql=sql,
            columns=self._columns_of((child_table.name, display),
                                     (parent_table.name, filter_column)),
            difficulty="medium", template="join_one_to_many",
        )

    def _join_junction(self, context: _TemplateContext) -> Example | None:
        relations = [r for r in context.domain.relations if r.kind == "many_to_many"]
        if not relations:
            return None
        relation = context.rng.choice(relations)
        generated = context.generated
        parent_table = generated.database.table(generated.entity_tables[relation.parent])
        child_table = generated.database.table(generated.entity_tables[relation.child])
        junction_name = relation.junction_name or f"{relation.parent}_{relation.child}"
        junction_table = next(
            table for table in generated.database.tables if table.name.endswith(junction_name)
        )
        parent_pk = generated.primary_keys[parent_table.name]
        child_pk = generated.primary_keys[child_table.name]
        identity = self._identity_column(parent_table)
        filter_column = self._filter_column(child_table, context)
        if filter_column is None:
            return None
        built = self._filter_sql_and_phrase(context, child_table, filter_column, alias="c")
        if built is None:
            return None
        condition, phrase = built
        if identity is not None and context.rng.coin(0.6):
            display = identity
            question = context.rng.choice([
                f"Which {pluralize(relation.parent)} are linked to the {relation.child} {phrase}?",
                f"Find the {pluralize(relation.parent)} connected to a {relation.child} {phrase}.",
            ])
        else:
            display = self._display_column(parent_table, context)
            if display is None:
                return None
            question = (f"Show the {display.name.replace('_', ' ')} of {pluralize(relation.parent)} "
                        f"associated with {pluralize(relation.child)} {phrase}.")
        sql = (f"SELECT p.{display.name} FROM {junction_table.name} AS j "
               f"JOIN {parent_table.name} AS p ON j.{parent_pk} = p.{parent_pk} "
               f"JOIN {child_table.name} AS c ON j.{child_pk} = c.{child_pk} "
               f"WHERE {condition}")
        return Example(
            question=question, database=context.database_name,
            tables=(junction_table.name, parent_table.name, child_table.name), sql=sql,
            columns=self._columns_of((parent_table.name, display),
                                     (child_table.name, filter_column)),
            difficulty="hard", template="join_junction",
        )

    def _grouped_count(self, context: _TemplateContext) -> Example | None:
        relation = self._one_to_many_relation(context)
        if relation is None:
            return None
        generated = context.generated
        parent_table = generated.database.table(generated.entity_tables[relation.parent])
        child_table = generated.database.table(generated.entity_tables[relation.child])
        parent_pk = generated.primary_keys[parent_table.name]
        identity = self._identity_column(parent_table)
        if identity is not None and context.rng.coin(0.6):
            display = identity
            question = f"Which {relation.parent} has the most {pluralize(relation.child)}?"
        else:
            display = self._display_column(parent_table, context)
            if display is None:
                return None
            question = (f"Find the {relation.parent} {display.name.replace('_', ' ')} with the "
                        f"largest number of {pluralize(relation.child)}.")
        sql = (f"SELECT p.{display.name} FROM {child_table.name} AS c "
               f"JOIN {parent_table.name} AS p ON c.{parent_pk} = p.{parent_pk} "
               f"GROUP BY p.{display.name} ORDER BY COUNT(*) DESC LIMIT 1")
        return Example(
            question=question, database=context.database_name,
            tables=(child_table.name, parent_table.name), sql=sql,
            columns=self._columns_of((parent_table.name, display)),
            difficulty="hard", template="grouped_count",
        )

    def _nested_max(self, context: _TemplateContext) -> Example | None:
        picked = self._entity_table(context)
        if picked is None:
            return None
        entity, table = picked
        identity = self._identity_column(table)
        numeric = self._numeric_column(table, context)
        if numeric is None:
            return None
        function = context.rng.choice(["MAX", "MIN"])
        wording = "largest" if function == "MAX" else "smallest"
        if identity is not None and context.rng.coin(0.5):
            display = identity
            question = f"Which {entity} has the {wording} {numeric.name.replace('_', ' ')}?"
        else:
            display = self._display_column(table, context)
            if display is None or display.name == numeric.name:
                return None
            question = (f"Return the {display.name.replace('_', ' ')} of the {entity} whose "
                        f"{numeric.name.replace('_', ' ')} is the {wording}.")
        sql = (f"SELECT {display.name} FROM {table.name} "
               f"WHERE {numeric.name} = (SELECT {function}({numeric.name}) FROM {table.name})")
        return Example(
            question=question, database=context.database_name, tables=(table.name,),
            sql=sql, columns=self._columns_of((table.name, display), (table.name, numeric)),
            difficulty="medium", template="nested_max",
        )

    def _in_subquery(self, context: _TemplateContext) -> Example | None:
        relation = self._one_to_many_relation(context)
        if relation is None:
            return None
        generated = context.generated
        parent_table = generated.database.table(generated.entity_tables[relation.parent])
        child_table = generated.database.table(generated.entity_tables[relation.child])
        parent_pk = generated.primary_keys[parent_table.name]
        identity = self._identity_column(parent_table)
        filter_column = self._filter_column(child_table, context)
        if filter_column is None:
            return None
        built = self._filter_sql_and_phrase(context, child_table, filter_column)
        if built is None:
            return None
        condition, phrase = built
        if identity is not None and context.rng.coin(0.6):
            display = identity
            question = f"Which {pluralize(relation.parent)} have a {relation.child} {phrase}?"
        else:
            display = self._display_column(parent_table, context)
            if display is None:
                return None
            question = (f"List the {display.name.replace('_', ' ')} of {pluralize(relation.parent)} "
                        f"that have at least one {relation.child} {phrase}.")
        sql = (f"SELECT {display.name} FROM {parent_table.name} "
               f"WHERE {parent_pk} IN (SELECT {parent_pk} FROM {child_table.name} "
               f"WHERE {condition})")
        return Example(
            question=question, database=context.database_name,
            tables=(parent_table.name, child_table.name), sql=sql,
            columns=self._columns_of((parent_table.name, display),
                                     (child_table.name, filter_column)),
            difficulty="hard", template="in_subquery",
        )


#: Pools re-exported for tests that check filterability assumptions.
__all__ = ["WorkloadConfig", "WorkloadGenerator", "FILTERABLE_TEXT_POOLS"]
