"""Value pools for synthetic row generation.

Each attribute of a domain names a *value pool* (``person_name``, ``city``,
``money``, ...).  The pools provide realistic-looking values so that SQL
filters (``WHERE city = 'Berlin'``), joins on value overlap, and aggregate
queries all behave like they would on real benchmark databases.
"""

from __future__ import annotations

from repro.schema.column import ColumnType
from repro.utils.rng import SeededRng

_FIRST_NAMES = (
    "Alice", "Bob", "Carol", "David", "Elena", "Frank", "Grace", "Hiro", "Ingrid",
    "Jamal", "Keiko", "Lucas", "Maria", "Noah", "Olga", "Pedro", "Quinn", "Rosa",
    "Sven", "Tara", "Umar", "Vera", "Wei", "Ximena", "Yusuf", "Zara",
)
_LAST_NAMES = (
    "Smith", "Garcia", "Chen", "Patel", "Kim", "Okafor", "Mueller", "Rossi",
    "Silva", "Tanaka", "Novak", "Dubois", "Ivanov", "Haddad", "Larsen", "Costa",
)
_CITIES = (
    "Berlin", "Paris", "Tokyo", "Nairobi", "Lima", "Toronto", "Sydney", "Mumbai",
    "Seoul", "Chicago", "Madrid", "Cairo", "Oslo", "Santiago", "Vienna", "Denver",
    "Hangzhou", "Porto", "Austin", "Krakow",
)
_COUNTRIES = (
    "France", "Japan", "Brazil", "Kenya", "Canada", "Australia", "India", "Korea",
    "Spain", "Egypt", "Norway", "Chile", "Austria", "Germany", "Portugal", "Peru",
    "China", "Mexico", "Italy", "Sweden",
)
_CONTINENTS = ("Asia", "Europe", "Africa", "North America", "South America", "Oceania")
_LANGUAGES = (
    "English", "Mandarin", "Spanish", "Hindi", "Arabic", "Portuguese", "Swahili",
    "French", "German", "Japanese", "Korean", "Italian",
)
_RIVERS = ("Nile", "Amazon", "Danube", "Mekong", "Volga", "Rhine", "Ganges", "Parana")
_COMPANIES = (
    "Acme Corp", "Globex", "Initech", "Umbrella", "Hooli", "Stark Industries",
    "Wayne Enterprises", "Wonka", "Tyrell", "Cyberdyne", "Aperture", "Soylent",
)
_VENUES = (
    "Grand Arena", "Riverside Hall", "Sunset Pavilion", "Central Stadium",
    "Harbor Theater", "Summit Center", "Maple Auditorium", "Crystal Dome",
)
_EVENT_NAMES = (
    "Summer Jam", "Winter Gala", "Spring Fest", "Harvest Night", "Aurora Tour",
    "Echo Live", "Skyline Session", "Velvet Evening",
)
_PRODUCTS = (
    "Laptop", "Espresso Machine", "Road Bike", "Desk Lamp", "Headphones",
    "Backpack", "Monitor", "Keyboard", "Water Bottle", "Camera", "Notebook",
)
_CATEGORIES = (
    "electronics", "furniture", "clothing", "groceries", "sports", "books",
    "toys", "garden", "beauty", "automotive",
)
_GENRES = ("rock", "jazz", "pop", "classical", "hip hop", "folk", "electronic", "blues")
_SUBJECTS = (
    "Mathematics", "Biology", "History", "Computer Science", "Economics",
    "Philosophy", "Chemistry", "Linguistics", "Physics", "Sociology",
)
_DEPARTMENTS = (
    "Engineering", "Marketing", "Finance", "Operations", "Research", "Cardiology",
    "Radiology", "Admissions", "Humanities", "Athletics",
)
_POSITIONS = (
    "manager", "analyst", "forward", "goalkeeper", "professor", "associate",
    "director", "specialist", "coordinator", "midfielder",
)
_SPECIALTIES = (
    "cardiology", "neurology", "oncology", "pediatrics", "orthopedics",
    "dermatology", "psychiatry", "radiology",
)
_TREATMENTS = (
    "physiotherapy", "chemotherapy", "dialysis", "vaccination", "surgery",
    "acupuncture", "radiotherapy", "transfusion",
)
_TITLES = (
    "Silent Horizon", "Golden Hour", "Paper Cities", "The Long Road",
    "Midnight Garden", "Broken Compass", "Glass Rivers", "Second Spring",
    "Hidden Valley", "Iron Harvest", "Falling Stars", "Quiet Storm",
)
_PARTIES = ("Unity Party", "Progress Alliance", "Green Front", "Liberty Union", "Civic Forum")
_REGIONS = ("North", "South", "East", "West", "Central", "Coastal", "Highland", "Metro")
_INDICATORS = ("GDP", "CPI", "Unemployment", "Exports", "Imports", "Retail Sales")
_UNITS = ("billion usd", "percent", "thousand persons", "index", "million usd")
_STATUSES = ("open", "closed", "pending", "approved", "rejected")
_LEVELS = ("introductory", "intermediate", "advanced", "graduate")
_ADDRESSES = (
    "12 Oak Street", "98 Elm Avenue", "5 Harbor Road", "44 Birch Lane",
    "301 Main Street", "77 Cedar Court", "15 Lake View", "8 Hill Crescent",
)


class ValuePools:
    """Draws values for a named pool using a seeded RNG."""

    def __init__(self, rng: SeededRng) -> None:
        self._rng = rng
        self._counters: dict[str, int] = {}

    def draw(self, pool: str, column_type: ColumnType) -> object:
        """Draw one value from ``pool`` coerced to ``column_type`` semantics."""
        if column_type is ColumnType.BOOLEAN or pool == "boolean":
            return self._rng.coin(0.5)
        if column_type is ColumnType.INTEGER:
            return self._draw_integer(pool)
        if column_type is ColumnType.REAL:
            return round(self._draw_real(pool), 2)
        if column_type is ColumnType.DATE or pool == "date":
            return self._draw_date()
        return self._draw_text(pool)

    # -- typed draws -------------------------------------------------------
    def _draw_integer(self, pool: str) -> int:
        ranges = {
            "age": (18, 75),
            "year": (1980, 2024),
            "population": (10_000, 40_000_000),
            "capacity": (100, 90_000),
            "quantity": (1, 500),
            "small_count": (0, 30),
            "duration": (5, 240),
            "horsepower": (70, 650),
            "quarter": (1, 4),
        }
        low, high = ranges.get(pool, (1, 1000))
        return self._rng.randint(low, high)

    def _draw_real(self, pool: str) -> float:
        ranges = {
            "money": (1_000.0, 5_000_000.0),
            "rating": (1.0, 10.0),
            "distance": (50.0, 12_000.0),
            "weight": (0.5, 2_500.0),
            "area": (10.0, 1_000_000.0),
            "capacity": (50.0, 5_000.0),
        }
        low, high = ranges.get(pool, (0.0, 100.0))
        return self._rng.uniform(low, high)

    def _draw_date(self) -> str:
        year = self._rng.randint(2015, 2024)
        month = self._rng.randint(1, 12)
        day = self._rng.randint(1, 28)
        return f"{year:04d}-{month:02d}-{day:02d}"

    def _draw_text(self, pool: str) -> str:
        pools: dict[str, tuple[str, ...]] = {
            "person_name": (),  # handled below (composed)
            "city": _CITIES,
            "country": _COUNTRIES,
            "continent": _CONTINENTS,
            "language": _LANGUAGES,
            "river": _RIVERS,
            "company": _COMPANIES,
            "venue": _VENUES,
            "event_name": _EVENT_NAMES,
            "product": _PRODUCTS,
            "category": _CATEGORIES,
            "genre": _GENRES,
            "subject": _SUBJECTS,
            "department": _DEPARTMENTS,
            "position": _POSITIONS,
            "specialty": _SPECIALTIES,
            "treatment": _TREATMENTS,
            "title": _TITLES,
            "party": _PARTIES,
            "region": _REGIONS,
            "indicator": _INDICATORS,
            "unit": _UNITS,
            "status": _STATUSES,
            "level": _LEVELS,
            "address": _ADDRESSES,
        }
        if pool == "person_name":
            return f"{self._rng.choice(_FIRST_NAMES)} {self._rng.choice(_LAST_NAMES)}"
        if pool == "email":
            name = self._rng.choice(_FIRST_NAMES).lower()
            number = self._next_counter("email")
            return f"{name}{number}@example.com"
        if pool == "code":
            number = self._next_counter("code")
            prefix = self._rng.choice(("AA", "BX", "CR", "DL", "EF", "GH"))
            return f"{prefix}{number:04d}"
        values = pools.get(pool)
        if values:
            return self._rng.choice(values)
        # Generic fallback: an opaque but unique-ish token.
        return f"{pool}_{self._next_counter(pool)}"

    def _next_counter(self, key: str) -> int:
        self._counters[key] = self._counters.get(key, 0) + 1
        return self._counters[key]


#: Pools whose values are categorical enough to be used in WHERE equality
#: filters by the workload generator (numeric pools use comparisons instead).
FILTERABLE_TEXT_POOLS = {
    "city", "country", "continent", "language", "genre", "category", "subject",
    "department", "position", "specialty", "status", "level", "party", "region",
    "indicator", "venue",
}
