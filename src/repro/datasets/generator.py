"""Synthetic database generator.

Turns a :class:`~repro.datasets.vocabulary.DomainSpec` into a concrete
:class:`~repro.schema.Database` (tables, columns, foreign keys) and a
:class:`~repro.engine.DatabaseInstance` populated with rows whose foreign keys
are referentially consistent -- so that multi-table SQL queries return
non-empty, meaningful results.

The generator supports *variants* of a domain (used to scale a collection past
the number of hand-written domains, like the many near-duplicate domains in
Spider) and *width padding* (extra generic columns, used by the BIRD-style
collection whose tables are much wider than Spider's).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.values import ValuePools
from repro.datasets.vocabulary import AttributeSpec, DomainSpec, EntitySpec
from repro.engine.instance import DatabaseInstance
from repro.schema.column import Column, ColumnType
from repro.schema.database import Database
from repro.schema.table import ForeignKey, Table
from repro.utils.rng import SeededRng
from repro.utils.text import pluralize


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs controlling schema and data generation."""

    rows_per_table: int = 30
    #: Extra generic columns appended to every entity table (BIRD-style width).
    extra_columns: int = 0
    #: Probability of dropping an optional (non-filterable) attribute in a variant.
    attribute_dropout: float = 0.0
    #: Use plural table names (Spider mixes singular/plural; variants differ).
    pluralize_tables: bool = False
    #: Add a short comment to every table/column (used by the questioner).
    with_comments: bool = True
    #: Number of auxiliary satellite tables added per database.  Real databases
    #: contain many tables that no particular question needs (histories, logs,
    #: ratings, contacts); they share entity words with the core tables, which
    #: is what makes element-wise retrieval over massive schemata hard (paper
    #: challenges C1/C2).
    auxiliary_tables: int = 3


#: Auxiliary satellite-table kinds: (suffix, attribute specs).
_AUXILIARY_KINDS: tuple[tuple[str, tuple[AttributeSpec, ...]], ...] = (
    ("history", (
        AttributeSpec("event_date", ColumnType.DATE, "date"),
        AttributeSpec("change_type", ColumnType.TEXT, "category"),
        AttributeSpec("old_value", ColumnType.TEXT, "word"),
    )),
    ("rating_log", (
        AttributeSpec("score", ColumnType.REAL, "rating"),
        AttributeSpec("review_date", ColumnType.DATE, "date"),
        AttributeSpec("reviewer_name", ColumnType.TEXT, "person_name"),
    )),
    ("contact", (
        AttributeSpec("email", ColumnType.TEXT, "email"),
        AttributeSpec("phone", ColumnType.TEXT, "code"),
        AttributeSpec("city", ColumnType.TEXT, "city"),
    )),
    ("award", (
        AttributeSpec("award_name", ColumnType.TEXT, "title"),
        AttributeSpec("award_year", ColumnType.INTEGER, "year"),
    )),
    ("document", (
        AttributeSpec("file_name", ColumnType.TEXT, "code"),
        AttributeSpec("uploaded_at", ColumnType.DATE, "date"),
        AttributeSpec("page_count", ColumnType.INTEGER, "small_count"),
    )),
    ("audit_log", (
        AttributeSpec("action", ColumnType.TEXT, "category"),
        AttributeSpec("performed_at", ColumnType.DATE, "date"),
        AttributeSpec("performed_by", ColumnType.TEXT, "person_name"),
    )),
)

_GENERIC_ATTRIBUTES = (
    AttributeSpec("created_at", ColumnType.DATE, "date"),
    AttributeSpec("updated_at", ColumnType.DATE, "date"),
    AttributeSpec("notes", ColumnType.TEXT, "word"),
    AttributeSpec("external_code", ColumnType.TEXT, "code"),
    AttributeSpec("is_active", ColumnType.BOOLEAN, "boolean"),
    AttributeSpec("priority", ColumnType.INTEGER, "small_count"),
    AttributeSpec("source_system", ColumnType.TEXT, "category"),
    AttributeSpec("last_reviewed", ColumnType.DATE, "date"),
)


@dataclass
class GeneratedDatabase:
    """The output of the generator: schema, rows, and naming metadata."""

    database: Database
    instance: DatabaseInstance
    #: entity name -> table name chosen for it.
    entity_tables: dict[str, str] = field(default_factory=dict)
    #: table name -> primary key column name.
    primary_keys: dict[str, str] = field(default_factory=dict)
    #: auxiliary table name -> (parent entity, attribute specs).
    auxiliary_tables: dict[str, tuple[str, tuple[AttributeSpec, ...]]] = field(default_factory=dict)


class DatabaseGenerator:
    """Generates databases (schema + rows) from domain specifications."""

    def __init__(self, config: GeneratorConfig | None = None, seed: int = 0) -> None:
        self.config = config or GeneratorConfig()
        self._rng = SeededRng(seed)

    # -- public API -----------------------------------------------------------
    def generate(
        self,
        domain: DomainSpec,
        name: str | None = None,
        table_prefix: str = "",
    ) -> GeneratedDatabase:
        """Generate one database for ``domain``.

        Parameters
        ----------
        domain:
            The domain specification to instantiate.
        name:
            Database name (defaults to the domain name).
        table_prefix:
            Optional prefix prepended to every table name; used by the
            Fiben-style builder which packs many domains into one database.
        """
        rng = self._rng.child(name or domain.name)
        database_name = name or domain.name
        database = Database(name=database_name, domain=domain.name,
                            comment=" ".join(domain.topic_words))
        generated = GeneratedDatabase(database=database,
                                      instance=DatabaseInstance(schema=database))

        for entity in domain.entities:
            table = self._build_entity_table(entity, rng, table_prefix)
            database.add_table(table)
            generated.entity_tables[entity.name] = table.name
            generated.primary_keys[table.name] = f"{entity.name}_id"

        for relation in domain.relations:
            parent_table = generated.entity_tables[relation.parent]
            child_table = generated.entity_tables[relation.child]
            parent_pk = generated.primary_keys[parent_table]
            if relation.kind == "one_to_many":
                fk_column = Column(parent_pk, ColumnType.INTEGER,
                                   comment=f"reference to {relation.parent}")
                database.table(child_table).add_column(fk_column)
                database.add_foreign_key(ForeignKey(child_table, parent_pk,
                                                    parent_table, parent_pk))
            else:
                junction = self._build_junction_table(relation.junction_name or
                                                      f"{relation.parent}_{relation.child}",
                                                      relation.parent, relation.child,
                                                      table_prefix)
                database.add_table(junction)
                generated.primary_keys[junction.name] = ""
                child_pk = generated.primary_keys[child_table]
                database.add_foreign_key(ForeignKey(junction.name, parent_pk,
                                                    parent_table, parent_pk))
                database.add_foreign_key(ForeignKey(junction.name, child_pk,
                                                    child_table, child_pk))

        self._add_auxiliary_tables(domain, generated, table_prefix, rng)

        # The DatabaseInstance was created before columns/tables were added, so
        # rebuild it now that the schema is final.
        generated.instance = DatabaseInstance(schema=database)
        self._populate(domain, generated, rng)
        return generated

    def _add_auxiliary_tables(self, domain: DomainSpec, generated: GeneratedDatabase,
                              table_prefix: str, rng: SeededRng) -> None:
        """Attach satellite tables (histories, logs, contacts) to random entities."""
        database = generated.database
        entity_names = [entity.name for entity in domain.entities]
        kinds = rng.shuffled(_AUXILIARY_KINDS)
        for index in range(self.config.auxiliary_tables):
            entity = entity_names[index % len(entity_names)]
            suffix, attributes = kinds[index % len(kinds)]
            table_name = f"{table_prefix}{entity}_{suffix}"
            if database.has_table(table_name):
                continue
            parent_table = generated.entity_tables[entity]
            parent_pk = generated.primary_keys[parent_table]
            columns = [Column(parent_pk, ColumnType.INTEGER,
                              comment=f"reference to {entity}")]
            columns.extend(
                Column(attribute.name, attribute.column_type,
                       comment=f"{attribute.name.replace('_', ' ')} of the {entity}"
                       if self.config.with_comments else "")
                for attribute in attributes
            )
            comment = f"{suffix.replace('_', ' ')} records for {entity}" \
                if self.config.with_comments else ""
            database.add_table(Table(name=table_name, columns=columns, comment=comment))
            database.add_foreign_key(ForeignKey(table_name, parent_pk, parent_table, parent_pk))
            generated.auxiliary_tables[table_name] = (entity, attributes)

    # -- schema construction -----------------------------------------------------
    def _build_entity_table(self, entity: EntitySpec, rng: SeededRng,
                            table_prefix: str) -> Table:
        base_name = pluralize(entity.name) if self.config.pluralize_tables else entity.name
        table_name = f"{table_prefix}{base_name}"
        columns = [Column(f"{entity.name}_id", ColumnType.INTEGER, is_primary_key=True,
                          comment=f"unique identifier of the {entity.name}")]
        for attribute in entity.attributes:
            if (self.config.attribute_dropout > 0.0
                    and attribute.column_type is not ColumnType.TEXT
                    and rng.coin(self.config.attribute_dropout)):
                continue
            comment = f"{attribute.name.replace('_', ' ')} of the {entity.name}" \
                if self.config.with_comments else ""
            columns.append(Column(attribute.name, attribute.column_type,
                                  comment=comment, synonyms=attribute.synonyms))
        for index in range(self.config.extra_columns):
            generic = _GENERIC_ATTRIBUTES[index % len(_GENERIC_ATTRIBUTES)]
            suffix = "" if index < len(_GENERIC_ATTRIBUTES) else f"_{index}"
            columns.append(Column(f"{generic.name}{suffix}", generic.column_type))
        comment = f"{entity.name} records" if self.config.with_comments else ""
        return Table(name=table_name, columns=columns, comment=comment,
                     synonyms=entity.synonyms)

    def _build_junction_table(self, name: str, parent: str, child: str,
                              table_prefix: str) -> Table:
        columns = [
            Column(f"{parent}_id", ColumnType.INTEGER,
                   comment=f"reference to {parent}"),
            Column(f"{child}_id", ColumnType.INTEGER,
                   comment=f"reference to {child}"),
        ]
        comment = f"links {parent} and {child}" if self.config.with_comments else ""
        return Table(name=f"{table_prefix}{name}", columns=columns, comment=comment)

    # -- row generation -------------------------------------------------------------
    def _populate(self, domain: DomainSpec, generated: GeneratedDatabase,
                  rng: SeededRng) -> None:
        pools = ValuePools(rng.child("values"))
        database = generated.database
        instance = generated.instance
        rows = self.config.rows_per_table

        # Entity tables first (so that foreign keys can reference existing ids).
        entity_ids: dict[str, list[int]] = {}
        attribute_by_column: dict[tuple[str, str], AttributeSpec] = {}
        for entity in domain.entities:
            for attribute in entity.attributes:
                attribute_by_column[(entity.name, attribute.name)] = attribute

        # Determine, per child table, which one_to_many parents it references.
        fk_parents: dict[str, list[tuple[str, str]]] = {}
        for relation in domain.relations:
            if relation.kind != "one_to_many":
                continue
            child_table = generated.entity_tables[relation.child]
            parent_table = generated.entity_tables[relation.parent]
            parent_pk = generated.primary_keys[parent_table]
            fk_parents.setdefault(child_table, []).append((parent_pk, relation.parent))

        # Parents before children keeps foreign keys resolvable.
        ordered_entities = _topological_entities(domain)
        for entity in ordered_entities:
            table_name = generated.entity_tables[entity.name]
            table = database.table(table_name)
            ids: list[int] = []
            for row_number in range(1, rows + 1):
                values: list[object] = []
                for column in table.columns:
                    if column.is_primary_key:
                        values.append(row_number)
                        continue
                    parent_entity = _fk_parent_for(column.name, fk_parents.get(table_name, ()))
                    if parent_entity is not None:
                        parent_ids = entity_ids[parent_entity]
                        values.append(rng.choice(parent_ids))
                        continue
                    attribute = attribute_by_column.get((entity.name, column.name))
                    pool = attribute.value_pool if attribute else "word"
                    values.append(pools.draw(pool, column.column_type))
                instance.insert(table_name, values)
                ids.append(row_number)
            entity_ids[entity.name] = ids

        # Auxiliary satellite tables: rows referencing their parent entity.
        for table_name, (entity, attributes) in generated.auxiliary_tables.items():
            parent_ids = entity_ids[entity]
            table = database.table(table_name)
            for _ in range(max(rows // 2, 1)):
                values = []
                for column in table.columns:
                    if column.name == generated.primary_keys[generated.entity_tables[entity]]:
                        values.append(rng.choice(parent_ids))
                        continue
                    attribute = next((a for a in attributes if a.name == column.name), None)
                    pool = attribute.value_pool if attribute else "word"
                    values.append(pools.draw(pool, column.column_type))
                instance.insert(table_name, values)

        # Junction tables: random pairs of existing ids (deduplicated).
        for relation in domain.relations:
            if relation.kind != "many_to_many":
                continue
            junction_name = relation.junction_name or f"{relation.parent}_{relation.child}"
            table_name = next(
                table.name for table in database.tables
                if table.name.endswith(junction_name)
            )
            parent_ids = entity_ids[relation.parent]
            child_ids = entity_ids[relation.child]
            seen: set[tuple[int, int]] = set()
            for _ in range(rows):
                pair = (rng.choice(parent_ids), rng.choice(child_ids))
                if pair in seen:
                    continue
                seen.add(pair)
                instance.insert(table_name, pair)


def _fk_parent_for(column_name: str, fk_parents: "tuple[tuple[str, str], ...] | list[tuple[str, str]]") -> str | None:
    for parent_pk, parent_entity in fk_parents:
        if column_name == parent_pk:
            return parent_entity
    return None


def _topological_entities(domain: DomainSpec) -> list[EntitySpec]:
    """Order entities so that one-to-many parents come before their children."""
    dependencies: dict[str, set[str]] = {entity.name: set() for entity in domain.entities}
    for relation in domain.relations:
        if relation.kind == "one_to_many":
            dependencies[relation.child].add(relation.parent)
    ordered: list[EntitySpec] = []
    resolved: set[str] = set()
    remaining = {entity.name: entity for entity in domain.entities}
    while remaining:
        progressed = False
        for name in list(remaining):
            if dependencies[name] <= resolved:
                ordered.append(remaining.pop(name))
                resolved.add(name)
                progressed = True
        if not progressed:
            # Cycle (should not happen with the shipped domains); break it by
            # taking the remaining entities in declaration order.
            ordered.extend(remaining.values())
            break
    return ordered
