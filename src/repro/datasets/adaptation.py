"""Dataset adaptation (paper §4.1.2).

The paper adapts single-database NL2SQL datasets to the schema-agnostic
setting by (1) dropping the single-database constraint, (2) parsing every SQL
query to extract its metadata (tables and columns) and excluding queries that
cannot be parsed, and (3) forming instances ``(N, S, Q)`` from the question,
the extracted SQL query schema, and the query.

:func:`adapt_examples` applies the same procedure to synthetic examples --
re-deriving the schema from the SQL instead of trusting the generator -- and
:func:`dataset_statistics` summarises a dataset the way the paper's Table 2
does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.examples import BenchmarkDataset, Example
from repro.schema.statistics import describe_catalog
from repro.sql.errors import SqlError
from repro.sql.metadata import extract_metadata


@dataclass(frozen=True)
class AdaptationReport:
    """Summary of an adaptation pass."""

    total: int
    kept: int
    dropped_unparseable: int
    corrected_tables: int


def adapt_examples(examples: list[Example]) -> tuple[list[Example], AdaptationReport]:
    """Re-derive each example's SQL query schema from its SQL text.

    Returns the kept examples (with tables/columns re-extracted from SQL) and
    a report of how many were dropped or corrected.
    """
    kept: list[Example] = []
    dropped = 0
    corrected = 0
    for example in examples:
        try:
            metadata = extract_metadata(example.sql)
        except SqlError:
            dropped += 1
            continue
        tables = tuple(sorted(metadata.tables))
        columns = tuple(sorted(
            f"{table}.{column}"
            for table, cols in metadata.tables.items()
            for column in cols
        ))
        if set(tables) != set(example.tables):
            corrected += 1
        kept.append(Example(
            question=example.question,
            database=example.database,
            tables=tables,
            sql=example.sql,
            columns=columns,
            difficulty=example.difficulty,
            template=example.template,
        ))
    report = AdaptationReport(
        total=len(examples),
        kept=len(kept),
        dropped_unparseable=dropped,
        corrected_tables=corrected,
    )
    return kept, report


def adapt_dataset(dataset: BenchmarkDataset) -> BenchmarkDataset:
    """Adapt both splits of ``dataset`` in place-preserving style."""
    train, _ = adapt_examples(dataset.train_examples)
    test, _ = adapt_examples(dataset.test_examples)
    return BenchmarkDataset(
        name=dataset.name,
        catalog=dataset.catalog,
        instances=dataset.instances,
        train_examples=train,
        test_examples=test,
    )


def dataset_statistics(dataset: BenchmarkDataset) -> dict[str, object]:
    """The row this dataset contributes to the Table 2 reproduction."""
    stats = describe_catalog(dataset.catalog)
    return {
        "dataset": dataset.name,
        "train": len(dataset.train_examples),
        "test": len(dataset.test_examples),
        "databases": stats.num_databases,
        "tables": stats.num_tables,
        "columns": stats.num_columns,
        "foreign_keys": stats.num_foreign_keys,
        "mean_tables_per_db": round(stats.mean_tables_per_database, 2),
    }
