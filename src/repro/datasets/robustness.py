"""Robustness variants of a benchmark (Spider-syn / Spider-real analogues).

The paper evaluates schema routing under *semantic mismatch* using two
robustness datasets built on Spider:

* **Spider-syn** replaces schema-related words in the question with real-world
  paraphrases (synonym substitution).
* **Spider-real** removes explicit column-name mentions, so the question no
  longer contains the identifier words the retrieval baselines match on.

Both variants share the database collection of the base dataset.  The
transforms below reproduce those perturbations on synthetic questions, using
the shared synonym lexicon.
"""

from __future__ import annotations

import re

from repro.datasets.examples import BenchmarkDataset, Example
from repro.datasets.vocabulary import SYNONYM_LEXICON
from repro.schema.catalog import Catalog
from repro.utils.rng import SeededRng
from repro.utils.text import singularize, tokenize_text

#: Generic fallback replacements when a column word has no lexicon entry.
_GENERIC_REPLACEMENTS = ("information", "details", "figure", "value", "record")


def _schema_words(catalog: Catalog, database: str, tables: tuple[str, ...]) -> tuple[set[str], set[str]]:
    """Return (table words, column words) of the gold schema of an example."""
    db = catalog.database(database)
    table_words: set[str] = set()
    column_words: set[str] = set()
    for table_name in tables:
        if not db.has_table(table_name):
            continue
        table = db.table(table_name)
        table_words.update(tokenize_text(table.name))
        for column in table.columns:
            column_words.update(tokenize_text(column.name))
    return table_words, column_words


def _replace_word(question: str, word: str, replacement: str) -> str:
    """Replace whole-word occurrences of ``word`` (case-insensitive)."""
    pattern = re.compile(rf"\b{re.escape(word)}\b", flags=re.IGNORECASE)
    return pattern.sub(replacement, question)


def perturb_question_synonyms(question: str, schema_words: set[str], rng: SeededRng,
                              probability: float = 0.9) -> str:
    """Synonym-substitute schema-related words of ``question``."""
    rewritten = question
    for word in sorted(set(tokenize_text(question))):
        base = singularize(word)
        if base not in schema_words and word not in schema_words:
            continue
        synonyms = SYNONYM_LEXICON.get(base) or SYNONYM_LEXICON.get(word)
        if not synonyms or not rng.coin(probability):
            continue
        rewritten = _replace_word(rewritten, word, rng.choice(synonyms))
    return rewritten


def perturb_question_realistic(question: str, table_words: set[str], column_words: set[str],
                               rng: SeededRng, probability: float = 0.9) -> str:
    """Remove explicit column mentions, keeping the question natural.

    Column words are replaced by a paraphrase when the lexicon has one and by
    a generic noun otherwise; table words are left alone (Spider-real keeps
    the entities but drops the column names).
    """
    rewritten = question
    for word in sorted(set(tokenize_text(question))):
        base = singularize(word)
        is_column_word = (base in column_words or word in column_words)
        is_table_word = (base in table_words or word in table_words)
        if not is_column_word or is_table_word:
            continue
        if not rng.coin(probability):
            continue
        synonyms = SYNONYM_LEXICON.get(base) or SYNONYM_LEXICON.get(word)
        replacement = rng.choice(synonyms) if synonyms else rng.choice(_GENERIC_REPLACEMENTS)
        rewritten = _replace_word(rewritten, word, replacement)
    return rewritten


def make_synonym_variant(dataset: BenchmarkDataset, seed: int = 101,
                         probability: float = 0.9) -> BenchmarkDataset:
    """Build the Spider-syn analogue of ``dataset`` (shared catalog)."""
    rng = SeededRng(seed)
    perturbed: list[Example] = []
    for example in dataset.test_examples:
        table_words, column_words = _schema_words(dataset.catalog, example.database, example.tables)
        schema_words = table_words | column_words
        question = perturb_question_synonyms(example.question, schema_words,
                                             rng.child(example.question), probability)
        perturbed.append(example.with_question(question))
    return dataset.with_test_examples(perturbed, suffix="syn")


def make_realistic_variant(dataset: BenchmarkDataset, seed: int = 103,
                           probability: float = 0.9) -> BenchmarkDataset:
    """Build the Spider-real analogue of ``dataset`` (shared catalog)."""
    rng = SeededRng(seed)
    perturbed: list[Example] = []
    for example in dataset.test_examples:
        table_words, column_words = _schema_words(dataset.catalog, example.database, example.tables)
        question = perturb_question_realistic(example.question, table_words, column_words,
                                              rng.child(example.question), probability)
        perturbed.append(example.with_question(question))
    return dataset.with_test_examples(perturbed, suffix="real")
