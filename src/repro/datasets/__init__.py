"""Synthetic dataset substrate.

The paper evaluates on Spider, BIRD, and Fiben (plus the Spider-syn and
Spider-real robustness variants).  Those corpora cannot be downloaded in this
offline environment, so this package generates synthetic analogues that match
their *shape*: the number and heterogeneity of databases, the table/column
scale, foreign-key topology, question styles, and -- for the robustness
variants -- the vocabulary mismatch between questions and schema identifiers.

The public entry points are the collection builders
(:func:`build_spider_like`, :func:`build_bird_like`, :func:`build_fiben_like`)
and the robustness transforms (:func:`make_synonym_variant`,
:func:`make_realistic_variant`).
"""

from repro.datasets.examples import BenchmarkDataset, Example
from repro.datasets.vocabulary import DOMAINS, DomainSpec, EntitySpec, SYNONYM_LEXICON
from repro.datasets.generator import DatabaseGenerator, GeneratorConfig
from repro.datasets.workload import WorkloadGenerator, WorkloadConfig
from repro.datasets.collections import (
    CollectionConfig,
    build_bird_like,
    build_collection,
    build_fiben_like,
    build_spider_like,
)
from repro.datasets.robustness import make_realistic_variant, make_synonym_variant
from repro.datasets.adaptation import adapt_examples, dataset_statistics

__all__ = [
    "BenchmarkDataset",
    "Example",
    "DOMAINS",
    "DomainSpec",
    "EntitySpec",
    "SYNONYM_LEXICON",
    "DatabaseGenerator",
    "GeneratorConfig",
    "WorkloadGenerator",
    "WorkloadConfig",
    "CollectionConfig",
    "build_spider_like",
    "build_bird_like",
    "build_fiben_like",
    "build_collection",
    "make_synonym_variant",
    "make_realistic_variant",
    "adapt_examples",
    "dataset_statistics",
]
