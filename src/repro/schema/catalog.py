"""Catalog: the set of all databases available for querying.

The catalog corresponds to the paper's :math:`\\mathcal{D}` -- the collection
of massive databases over which schema-agnostic NL2SQL operates.  It is the
input of schema graph construction (Algorithm 1) and of every retrieval
baseline's index-building step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.schema.database import Database
from repro.schema.table import Table
from repro.utils.text import normalize_identifier


@dataclass
class Catalog:
    """An ordered collection of :class:`Database` objects with unique names."""

    name: str = "catalog"
    databases: list[Database] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.name = normalize_identifier(self.name) or "catalog"
        names = [db.name for db in self.databases]
        if len(names) != len(set(names)):
            raise ValueError("duplicate database names in catalog")

    # -- membership ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.databases)

    def __iter__(self) -> Iterator[Database]:
        return iter(self.databases)

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        return self.has_database(name)

    @property
    def database_names(self) -> list[str]:
        return [db.name for db in self.databases]

    def has_database(self, name: str) -> bool:
        return normalize_identifier(name) in set(self.database_names)

    def database(self, name: str) -> Database:
        normalized = normalize_identifier(name)
        for db in self.databases:
            if db.name == normalized:
                return db
        raise KeyError(f"catalog has no database {normalized!r}")

    def add_database(self, database: Database) -> None:
        if self.has_database(database.name):
            raise ValueError(f"duplicate database {database.name!r} in catalog")
        self.databases.append(database)

    # -- aggregate views ------------------------------------------------------
    @property
    def num_tables(self) -> int:
        return sum(db.num_tables for db in self.databases)

    @property
    def num_columns(self) -> int:
        return sum(db.num_columns for db in self.databases)

    def iter_tables(self) -> Iterable[tuple[Database, Table]]:
        """Yield ``(database, table)`` pairs across the whole catalog."""
        for db in self.databases:
            for table in db.tables:
                yield db, table

    def table(self, database_name: str, table_name: str) -> Table:
        return self.database(database_name).table(table_name)

    def subset(self, database_names: Iterable[str]) -> "Catalog":
        """A new catalog restricted to the named databases (order preserved)."""
        wanted = {normalize_identifier(name) for name in database_names}
        return Catalog(
            name=self.name,
            databases=[db for db in self.databases if db.name in wanted],
        )
