"""Column definitions for the relational schema model."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.utils.text import normalize_identifier, tokenize_text


class ColumnType(str, Enum):
    """Logical column types understood by the engine and the SQL layer."""

    INTEGER = "integer"
    REAL = "real"
    TEXT = "text"
    DATE = "date"
    BOOLEAN = "boolean"

    @property
    def is_numeric(self) -> bool:
        return self in (ColumnType.INTEGER, ColumnType.REAL)

    @property
    def is_orderable(self) -> bool:
        """Whether ``ORDER BY`` / comparisons are meaningful for the type."""
        return self is not ColumnType.BOOLEAN


@dataclass(frozen=True)
class Column:
    """A single column of a table.

    Parameters
    ----------
    name:
        Identifier of the column (normalised to snake_case on creation).
    column_type:
        Logical type of the stored values.
    is_primary_key:
        Whether the column is (part of) the table's primary key.
    comment:
        Optional human-readable description; the schema questioner uses
        comments when available (paper §3.4 notes the questioner accepts
        richer schema detail than the router).
    """

    name: str
    column_type: ColumnType = ColumnType.TEXT
    is_primary_key: bool = False
    comment: str = ""
    synonyms: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        normalized = normalize_identifier(self.name)
        if not normalized:
            raise ValueError(f"column name {self.name!r} normalises to empty string")
        object.__setattr__(self, "name", normalized)

    @property
    def words(self) -> list[str]:
        """Words composing the identifier (used for retrieval documents)."""
        return tokenize_text(self.name)

    def describe(self) -> str:
        """Readable one-line description used in prompts and documents."""
        label = f"{self.name} ({self.column_type.value})"
        if self.is_primary_key:
            label += " [primary key]"
        if self.comment:
            label += f" -- {self.comment}"
        return label
