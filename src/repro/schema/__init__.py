"""Relational schema model.

The schema layer is the foundation shared by every other subsystem: the
synthetic dataset generators produce :class:`Database` objects, the schema
graph (paper §3.2) is built from a :class:`Catalog`, the retrieval baselines
index table documents derived from it, and the SQL layer validates queries
against it.
"""

from repro.schema.column import Column, ColumnType
from repro.schema.table import ForeignKey, Table
from repro.schema.database import Database
from repro.schema.catalog import Catalog
from repro.schema.joinability import jaccard_similarity, joinable_table_pairs
from repro.schema.statistics import CatalogStatistics, describe_catalog

__all__ = [
    "Column",
    "ColumnType",
    "ForeignKey",
    "Table",
    "Database",
    "Catalog",
    "jaccard_similarity",
    "joinable_table_pairs",
    "CatalogStatistics",
    "describe_catalog",
]
