"""Catalog statistics (used to regenerate the paper's Table 2)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.schema.catalog import Catalog


@dataclass(frozen=True)
class CatalogStatistics:
    """Aggregate schema statistics of a catalog."""

    num_databases: int
    num_tables: int
    num_columns: int
    mean_tables_per_database: float
    max_tables_per_database: int
    mean_columns_per_table: float
    num_foreign_keys: int

    def as_row(self) -> tuple[int, int, int]:
        """The ``(# DBs, # Tables, # Cols)`` triple reported in Table 2."""
        return (self.num_databases, self.num_tables, self.num_columns)


def describe_catalog(catalog: Catalog) -> CatalogStatistics:
    """Compute :class:`CatalogStatistics` for ``catalog``."""
    num_databases = len(catalog)
    num_tables = catalog.num_tables
    num_columns = catalog.num_columns
    tables_per_db = [db.num_tables for db in catalog] or [0]
    columns_per_table = [len(t.columns) for _, t in catalog.iter_tables()] or [0]
    num_foreign_keys = sum(len(db.foreign_keys) for db in catalog)
    return CatalogStatistics(
        num_databases=num_databases,
        num_tables=num_tables,
        num_columns=num_columns,
        mean_tables_per_database=sum(tables_per_db) / max(len(tables_per_db), 1),
        max_tables_per_database=max(tables_per_db),
        mean_columns_per_table=sum(columns_per_table) / max(len(columns_per_table), 1),
        num_foreign_keys=num_foreign_keys,
    )
