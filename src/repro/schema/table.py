"""Table and foreign-key definitions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.schema.column import Column, ColumnType
from repro.utils.text import normalize_identifier, tokenize_text


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key reference ``source_table.source_column -> target_table.target_column``."""

    source_table: str
    source_column: str
    target_table: str
    target_column: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "source_table", normalize_identifier(self.source_table))
        object.__setattr__(self, "source_column", normalize_identifier(self.source_column))
        object.__setattr__(self, "target_table", normalize_identifier(self.target_table))
        object.__setattr__(self, "target_column", normalize_identifier(self.target_column))

    def reversed(self) -> "ForeignKey":
        """The same relationship viewed from the referenced side."""
        return ForeignKey(
            source_table=self.target_table,
            source_column=self.target_column,
            target_table=self.source_table,
            target_column=self.source_column,
        )

    def involves(self, table_name: str) -> bool:
        name = normalize_identifier(table_name)
        return name in (self.source_table, self.target_table)


@dataclass
class Table:
    """A table: a named, ordered collection of :class:`Column` objects."""

    name: str
    columns: list[Column] = field(default_factory=list)
    comment: str = ""
    synonyms: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.name = normalize_identifier(self.name)
        if not self.name:
            raise ValueError("table name must not be empty")
        seen: set[str] = set()
        for column in self.columns:
            if column.name in seen:
                raise ValueError(f"duplicate column {column.name!r} in table {self.name!r}")
            seen.add(column.name)

    # -- column access ------------------------------------------------------
    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        return normalize_identifier(name) in set(self.column_names)

    def column(self, name: str) -> Column:
        normalized = normalize_identifier(name)
        for column in self.columns:
            if column.name == normalized:
                return column
        raise KeyError(f"table {self.name!r} has no column {normalized!r}")

    def add_column(self, column: Column) -> None:
        if self.has_column(column.name):
            raise ValueError(f"duplicate column {column.name!r} in table {self.name!r}")
        self.columns.append(column)

    @property
    def primary_key(self) -> Column | None:
        for column in self.columns:
            if column.is_primary_key:
                return column
        return None

    def numeric_columns(self) -> list[Column]:
        return [c for c in self.columns if c.column_type.is_numeric and not c.is_primary_key]

    def text_columns(self) -> list[Column]:
        return [c for c in self.columns if c.column_type is ColumnType.TEXT and not c.is_primary_key]

    # -- text views ---------------------------------------------------------
    @property
    def words(self) -> list[str]:
        return tokenize_text(self.name)

    def flat_description(self, include_columns: bool = True) -> str:
        """Flat normalised text used by retrieval baselines (paper §4.1.5)."""
        parts = list(self.words)
        if include_columns:
            for column in self.columns:
                parts.extend(column.words)
        return " ".join(parts)

    def schema_line(self, include_types: bool = False) -> str:
        """``table(col1, col2, ...)`` line used in prompts (paper Figure 5)."""
        if include_types:
            cols = ", ".join(f"{c.name} {c.column_type.value}" for c in self.columns)
        else:
            cols = ", ".join(self.column_names)
        return f"{self.name}({cols})"


def validate_foreign_keys(tables: Sequence[Table], foreign_keys: Iterable[ForeignKey]) -> None:
    """Raise :class:`ValueError` if a foreign key references a missing table/column."""
    by_name = {table.name: table for table in tables}
    for fk in foreign_keys:
        for table_name, column_name in (
            (fk.source_table, fk.source_column),
            (fk.target_table, fk.target_column),
        ):
            table = by_name.get(table_name)
            if table is None:
                raise ValueError(f"foreign key references unknown table {table_name!r}")
            if not table.has_column(column_name):
                raise ValueError(
                    f"foreign key references unknown column {table_name}.{column_name}"
                )
