"""Joinable-table detection.

Besides explicit primary/foreign keys, the paper adds *Joinable* edges to the
schema graph: two tables are joinable when the exact-match overlap (Jaccard
similarity) of some pair of their column value sets exceeds 0.85 (paper
§4.1.5).  This module implements that heuristic against the in-memory engine's
stored values.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.schema.database import Database

#: Jaccard threshold from the paper's implementation details (§4.1.5).
DEFAULT_JACCARD_THRESHOLD = 0.85


def jaccard_similarity(left: Iterable[object], right: Iterable[object]) -> float:
    """Exact-match Jaccard similarity of two value collections."""
    left_set = {value for value in left if value is not None}
    right_set = {value for value in right if value is not None}
    if not left_set and not right_set:
        return 0.0
    intersection = len(left_set & right_set)
    union = len(left_set | right_set)
    return intersection / union if union else 0.0


def joinable_table_pairs(
    database: Database,
    column_values: Mapping[str, Mapping[str, Sequence[object]]] | None = None,
    threshold: float = DEFAULT_JACCARD_THRESHOLD,
) -> list[tuple[str, str]]:
    """Find joinable table pairs in ``database``.

    Parameters
    ----------
    database:
        Schema whose tables are examined.
    column_values:
        Optional mapping ``table -> column -> values`` (typically produced by
        the in-memory engine).  When provided, the Jaccard heuristic is applied
        on top of the declared foreign keys; otherwise only foreign keys are
        used.
    threshold:
        Minimum Jaccard similarity for a value-overlap join edge.

    Returns
    -------
    list of (table, table) pairs (each unordered pair appears once, in the
    catalog order of the first member).
    """
    pairs: list[tuple[str, str]] = []
    seen: set[frozenset[str]] = set()

    def add(a: str, b: str) -> None:
        if a == b:
            return
        key = frozenset((a, b))
        if key not in seen:
            seen.add(key)
            pairs.append((a, b))

    # Explicit primary-foreign relationships always count as joinable.
    for fk in database.foreign_keys:
        add(fk.source_table, fk.target_table)

    # Implicit foreign-foreign relationships: two tables referencing the same
    # column of a third table can be linked without the junction table
    # (paper Example 3).
    referencing: dict[tuple[str, str], list[str]] = {}
    for fk in database.foreign_keys:
        referencing.setdefault((fk.target_table, fk.target_column), []).append(fk.source_table)
    for sources in referencing.values():
        for i, a in enumerate(sources):
            for b in sources[i + 1:]:
                add(a, b)

    if column_values:
        table_names = database.table_names
        for i, left_name in enumerate(table_names):
            left_columns = column_values.get(left_name, {})
            for right_name in table_names[i + 1:]:
                right_columns = column_values.get(right_name, {})
                if _has_value_overlap(left_columns, right_columns, threshold):
                    add(left_name, right_name)
    return pairs


def _has_value_overlap(
    left_columns: Mapping[str, Sequence[object]],
    right_columns: Mapping[str, Sequence[object]],
    threshold: float,
) -> bool:
    for left_values in left_columns.values():
        if not left_values:
            continue
        for right_values in right_columns.values():
            if not right_values:
                continue
            if jaccard_similarity(left_values, right_values) >= threshold:
                return True
    return False
