"""Database: a named collection of tables plus foreign-key relationships."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.schema.table import ForeignKey, Table, validate_foreign_keys
from repro.utils.text import normalize_identifier, tokenize_text


@dataclass
class Database:
    """A single database schema.

    A database owns its tables and the foreign keys between them.  It also
    records the *domain* it was generated from (e.g. ``"concerts"``), which
    the synthetic workload generator uses to phrase natural questions.
    """

    name: str
    tables: list[Table] = field(default_factory=list)
    foreign_keys: list[ForeignKey] = field(default_factory=list)
    domain: str = ""
    comment: str = ""

    def __post_init__(self) -> None:
        self.name = normalize_identifier(self.name)
        if not self.name:
            raise ValueError("database name must not be empty")
        names = [t.name for t in self.tables]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate table names in database {self.name!r}")
        validate_foreign_keys(self.tables, self.foreign_keys)

    # -- table access -------------------------------------------------------
    @property
    def table_names(self) -> list[str]:
        return [table.name for table in self.tables]

    def has_table(self, name: str) -> bool:
        return normalize_identifier(name) in set(self.table_names)

    def table(self, name: str) -> Table:
        normalized = normalize_identifier(name)
        for table in self.tables:
            if table.name == normalized:
                return table
        raise KeyError(f"database {self.name!r} has no table {normalized!r}")

    def add_table(self, table: Table) -> None:
        if self.has_table(table.name):
            raise ValueError(f"duplicate table {table.name!r} in database {self.name!r}")
        self.tables.append(table)

    def add_foreign_key(self, foreign_key: ForeignKey) -> None:
        validate_foreign_keys(self.tables, [foreign_key])
        self.foreign_keys.append(foreign_key)

    # -- relationship queries -------------------------------------------------
    def foreign_keys_of(self, table_name: str) -> list[ForeignKey]:
        """Foreign keys in which ``table_name`` participates on either side."""
        normalized = normalize_identifier(table_name)
        return [fk for fk in self.foreign_keys if fk.involves(normalized)]

    def related_tables(self, table_name: str) -> list[str]:
        """Tables directly connected to ``table_name`` by a foreign key."""
        normalized = normalize_identifier(table_name)
        related: list[str] = []
        for fk in self.foreign_keys:
            if fk.source_table == normalized and fk.target_table != normalized:
                related.append(fk.target_table)
            elif fk.target_table == normalized and fk.source_table != normalized:
                related.append(fk.source_table)
        # preserve order but dedupe
        seen: set[str] = set()
        unique = []
        for name in related:
            if name not in seen:
                seen.add(name)
                unique.append(name)
        return unique

    def join_condition(self, left: str, right: str) -> ForeignKey | None:
        """Return a foreign key connecting two tables, if any (either direction)."""
        left_n = normalize_identifier(left)
        right_n = normalize_identifier(right)
        for fk in self.foreign_keys:
            if fk.source_table == left_n and fk.target_table == right_n:
                return fk
            if fk.source_table == right_n and fk.target_table == left_n:
                return fk.reversed()
        return None

    # -- aggregate properties ---------------------------------------------------
    @property
    def num_tables(self) -> int:
        return len(self.tables)

    @property
    def num_columns(self) -> int:
        return sum(len(table.columns) for table in self.tables)

    @property
    def words(self) -> list[str]:
        return tokenize_text(self.name)

    def schema_text(self, include_types: bool = False) -> str:
        """Multi-line ``table(columns)`` description used in prompts."""
        return "\n".join(table.schema_line(include_types) for table in self.tables)

    def iter_columns(self) -> Iterable[tuple[Table, "object"]]:
        for table in self.tables:
            for column in table.columns:
                yield table, column
