"""Batching utilities for Seq2Seq training."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass
class Batch:
    """One padded training batch."""

    source_ids: np.ndarray    # (B, T_src) int64
    source_mask: np.ndarray   # (B, T_src) float64, 1 for real tokens
    target_ids: np.ndarray    # (B, T_tgt) int64, starts with BOS, ends with EOS
    target_mask: np.ndarray   # (B, T_tgt) float64

    @property
    def size(self) -> int:
        return int(self.source_ids.shape[0])


def _pad(sequences: Sequence[Sequence[int]], pad_id: int) -> tuple[np.ndarray, np.ndarray]:
    max_length = max((len(sequence) for sequence in sequences), default=1)
    max_length = max(max_length, 1)
    ids = np.full((len(sequences), max_length), pad_id, dtype=np.int64)
    mask = np.zeros((len(sequences), max_length), dtype=np.float64)
    for row, sequence in enumerate(sequences):
        length = len(sequence)
        if length:
            ids[row, :length] = sequence
            mask[row, :length] = 1.0
    return ids, mask


def pad_batch(pairs: Sequence[tuple[Sequence[int], Sequence[int]]], pad_id: int) -> Batch:
    """Pad a list of ``(source_ids, target_ids)`` pairs into a :class:`Batch`."""
    if not pairs:
        raise ValueError("cannot build an empty batch")
    source_ids, source_mask = _pad([pair[0] for pair in pairs], pad_id)
    target_ids, target_mask = _pad([pair[1] for pair in pairs], pad_id)
    return Batch(source_ids=source_ids, source_mask=source_mask,
                 target_ids=target_ids, target_mask=target_mask)


def iterate_batches(pairs: Sequence[tuple[Sequence[int], Sequence[int]]], batch_size: int,
                    pad_id: int, order: Sequence[int] | None = None):
    """Yield :class:`Batch` objects covering ``pairs`` in ``order``."""
    indices = list(order) if order is not None else list(range(len(pairs)))
    for start in range(0, len(indices), batch_size):
        chunk = [pairs[index] for index in indices[start:start + batch_size]]
        if chunk:
            yield pad_batch(chunk, pad_id)
