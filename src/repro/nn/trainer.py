"""Training loop for Seq2Seq models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.nn.data import iterate_batches
from repro.nn.optim import AdamW, LinearSchedule, clip_gradients
from repro.nn.seq2seq import Seq2SeqModel
from repro.utils.rng import SeededRng


@dataclass(frozen=True)
class TrainerConfig:
    """Hyper-parameters of the training loop.

    The defaults mirror the paper's recipe scaled to the numpy substrate:
    AdamW, linear schedule without warm-up, batch size 32.
    """

    epochs: int = 12
    batch_size: int = 32
    learning_rate: float = 5e-3
    weight_decay: float = 0.01
    clip_norm: float = 5.0
    seed: int = 0
    shuffle: bool = True


@dataclass
class TrainingHistory:
    """Loss per epoch, useful for convergence checks in tests."""

    epoch_losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("inf")


class Seq2SeqTrainer:
    """Teacher-forced training of a :class:`Seq2SeqModel` on id pairs."""

    def __init__(self, model: Seq2SeqModel, config: TrainerConfig | None = None,
                 pad_id: int = 0) -> None:
        self.model = model
        self.config = config or TrainerConfig()
        self.pad_id = pad_id

    def train(self, pairs: Sequence[tuple[Sequence[int], Sequence[int]]],
              progress: Callable[[int, float], None] | None = None) -> TrainingHistory:
        """Train on ``(source_ids, target_ids)`` pairs; returns the loss history."""
        if not pairs:
            raise ValueError("no training pairs supplied")
        config = self.config
        rng = SeededRng(config.seed)
        parameters = list(self.model.parameters())
        optimizer = AdamW(parameters, learning_rate=config.learning_rate,
                          weight_decay=config.weight_decay)
        steps_per_epoch = max(1, (len(pairs) + config.batch_size - 1) // config.batch_size)
        schedule = LinearSchedule(config.learning_rate, config.epochs * steps_per_epoch)
        history = TrainingHistory()
        global_step = 0
        for epoch in range(config.epochs):
            order = list(rng.permutation(len(pairs))) if config.shuffle else list(range(len(pairs)))
            epoch_loss = 0.0
            batches = 0
            for batch in iterate_batches(pairs, config.batch_size, self.pad_id, order):
                optimizer.zero_grad()
                loss = self.model.forward_loss(batch.source_ids, batch.source_mask,
                                               batch.target_ids, batch.target_mask)
                loss.backward()
                clip_gradients(parameters, config.clip_norm)
                optimizer.step(schedule.learning_rate(global_step))
                epoch_loss += loss.item()
                batches += 1
                global_step += 1
            mean_loss = epoch_loss / max(batches, 1)
            history.epoch_losses.append(mean_loss)
            if progress is not None:
                progress(epoch, mean_loss)
        return history
