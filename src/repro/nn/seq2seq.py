"""Attention-based encoder-decoder used as the DSI schema router backbone.

Architecture (a compact stand-in for the paper's T5-base):

* Encoder: word embeddings projected through a tanh layer form a memory of
  per-token states; a masked mean of the memory initialises the decoder state.
* Decoder: a simple recurrent cell ``s_t = tanh(W_in e(y_{t-1}) + W_hh s_{t-1})``
  with dot-product attention over the encoder memory; the attended context and
  state are combined and projected to target-vocabulary logits.

Training uses the autograd engine; inference (:meth:`Seq2SeqModel.encode_numpy`
and :meth:`Seq2SeqModel.decode_step_numpy_batch`) runs on raw numpy so that
beam search and constrained decoding stay fast and allocation-free.

The decode hot path is the batched kernel
:meth:`Seq2SeqModel.decode_step_numpy_batch`, which advances any number of
beams -- across questions -- in one stacked step;
:meth:`Seq2SeqModel.decode_step_numpy` is its single-beam wrapper.  The kernel
keeps a strict bit-exactness contract (see its docstring): a beam produces the
same doubles whether it is decoded alone or stacked into a batch, which is
what lets the vectorized and loop decode backends return identical routes.
:meth:`Seq2SeqModel.decode_step_numpy_batch_fast` is its throughput-first
sibling (the ``fast`` decode tier): slot-dense flat GEMMs and batched
attention, same math, no row-stability guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.nn.autograd import Tensor, stack_rows
from repro.nn.modules import Embedding, Linear, Module
from repro.utils.rng import SeededRng


@dataclass(frozen=True)
class Seq2SeqConfig:
    """Hyper-parameters of the Seq2Seq model."""

    source_vocab_size: int
    target_vocab_size: int
    embedding_dim: int = 48
    hidden_dim: int = 96
    seed: int = 0


@dataclass
class EncodedSource:
    """Numpy-side encoder outputs used during inference."""

    memory: np.ndarray  # (T_src, hidden)
    mask: np.ndarray    # (T_src,)
    state: np.ndarray   # (hidden,)


class Seq2SeqModel(Module):
    """Encoder-decoder with attention; see the module docstring."""

    def __init__(self, config: Seq2SeqConfig) -> None:
        self.config = config
        rng = SeededRng(config.seed)
        dim, hidden = config.embedding_dim, config.hidden_dim
        self.source_embedding = Embedding(config.source_vocab_size, dim, rng.child("src_emb"),
                                          name="source_embedding")
        self.encoder_projection = Linear(dim, hidden, rng.child("enc_proj"), name="encoder_projection")
        self.state_init = Linear(hidden, hidden, rng.child("state_init"), name="state_init")
        self.target_embedding = Embedding(config.target_vocab_size, dim, rng.child("tgt_emb"),
                                          name="target_embedding")
        self.input_projection = Linear(dim, hidden, rng.child("w_in"), bias=False,
                                       name="input_projection")
        self.recurrent_projection = Linear(hidden, hidden, rng.child("w_hh"),
                                           name="recurrent_projection")
        self.combine_projection = Linear(2 * hidden, hidden, rng.child("combine"),
                                         name="combine_projection")
        self.output_projection = Linear(hidden, config.target_vocab_size, rng.child("out"),
                                        name="output_projection")

    # ------------------------------------------------------------------
    # Training path (autograd)
    # ------------------------------------------------------------------
    def encode(self, source_ids: np.ndarray, source_mask: np.ndarray) -> tuple[Tensor, Tensor]:
        """Encode a batch; returns (memory ``(B,T,h)``, initial state ``(B,h)``)."""
        embedded = self.source_embedding(source_ids)                    # (B, T, d)
        memory = self.encoder_projection(embedded).tanh()               # (B, T, h)
        mask3 = np.asarray(source_mask, dtype=np.float64)[:, :, None]
        masked = memory * Tensor(mask3)
        pooled = masked.mean_over_axis(axis=1)                          # (B, h) == sum / T
        lengths = np.clip(mask3.sum(axis=1), 1.0, None)                 # (B, 1)
        scale = mask3.shape[1] / lengths                                # rescale mean -> masked mean
        pooled = pooled * Tensor(scale)
        state = self.state_init(pooled).tanh()                          # (B, h)
        return memory, state

    def decoder_step(self, previous_ids: np.ndarray, state: Tensor, memory: Tensor,
                     source_mask: np.ndarray) -> tuple[Tensor, Tensor]:
        """One decoder step; returns (logits ``(B,V)``, new state ``(B,h)``)."""
        batch_size = memory.shape[0]
        hidden = self.config.hidden_dim
        previous_embedded = self.target_embedding(previous_ids)         # (B, d)
        state = (self.input_projection(previous_embedded)
                 + self.recurrent_projection(state)).tanh()             # (B, h)
        # Dot-product attention over the encoder memory.
        scores = memory.bmm(state.reshape(batch_size, hidden, 1))       # (B, T, 1)
        mask3 = np.asarray(source_mask, dtype=np.float64)[:, :, None]
        scores = scores + Tensor((1.0 - mask3) * -1e9)
        attention = scores.softmax(axis=1)                              # (B, T, 1)
        context = attention.transpose_last_two().bmm(memory)            # (B, 1, h)
        context = context.reshape(batch_size, hidden)
        combined = self.combine_projection(Tensor.concat([state, context], axis=-1)).tanh()
        logits = self.output_projection(combined)                       # (B, V)
        return logits, state

    def forward_loss(self, source_ids: np.ndarray, source_mask: np.ndarray,
                     target_ids: np.ndarray, target_mask: np.ndarray) -> Tensor:
        """Teacher-forced sequence cross-entropy for one batch.

        ``target_ids`` must start with BOS and end with EOS (plus padding);
        the loss is computed over the shifted targets.
        """
        decoder_inputs = target_ids[:, :-1]
        decoder_targets = target_ids[:, 1:]
        decoder_mask = target_mask[:, 1:]
        memory, state = self.encode(source_ids, source_mask)
        step_logits: list[Tensor] = []
        for step in range(decoder_inputs.shape[1]):
            logits, state = self.decoder_step(decoder_inputs[:, step], state, memory, source_mask)
            step_logits.append(logits)
        logits_over_time = stack_rows(step_logits)                      # (T, B, V)
        targets_over_time = decoder_targets.T                           # (T, B)
        mask_over_time = decoder_mask.T
        return logits_over_time.cross_entropy(targets_over_time, mask_over_time)

    # ------------------------------------------------------------------
    # Inference path (plain numpy, no autograd overhead)
    # ------------------------------------------------------------------
    def encode_numpy(self, source_ids: list[int] | np.ndarray,
                     pad_id: int = 0) -> EncodedSource:
        """Encode one source sequence for decoding.

        An empty sequence (an empty or all-whitespace question) encodes as a
        single ``pad_id`` token, so "no input" flows through the same defined
        path instead of borrowing whatever word happens to sit at id 0.
        """
        ids = np.asarray(source_ids, dtype=np.int64)
        if ids.size == 0:
            ids = np.asarray([pad_id], dtype=np.int64)
        embedded = self.source_embedding.weight.data[ids]               # (T, d)
        # One (1, d) matmul slice per token: per-token results are then
        # independent of the sequence's length and of any batching, so
        # :meth:`encode_numpy_batch` can reproduce them bit-for-bit.
        memory = np.tanh(
            np.matmul(embedded[:, None, :],
                      self.encoder_projection.weight.data)[:, 0, :]
            + self.encoder_projection.bias.data)                        # (T, h)
        pooled = memory.mean(axis=0)
        state = np.tanh(pooled @ self.state_init.weight.data + self.state_init.bias.data)
        return EncodedSource(memory=memory, mask=np.ones(len(ids)), state=state)

    def encode_numpy_batch(self, source_ids_batch: list[list[int]],
                           pad_id: int = 0) -> list[EncodedSource]:
        """Encode several source sequences at once for decoding.

        The embedding lookup and encoder projection run as one stacked matmul
        over every token of the padded batch (the expensive part), then each
        item's memory is sliced back to its true length.  The stack presents
        one ``(1, d)`` slice per token to BLAS -- the same shape
        :meth:`encode_numpy` uses -- so each question encodes to *bit-identical*
        doubles no matter which micro-batch it arrives in: routes, and
        therefore caches and cross-shard merges, never depend on batch
        composition.  Empty sequences encode as a single ``pad_id`` token,
        exactly as in :meth:`encode_numpy`.
        """
        if not source_ids_batch:
            return []
        sequences = [np.asarray(ids if len(ids) else [pad_id], dtype=np.int64)
                     for ids in source_ids_batch]
        max_length = max(len(sequence) for sequence in sequences)
        padded = np.zeros((len(sequences), max_length), dtype=np.int64)
        for row, sequence in enumerate(sequences):
            padded[row, : len(sequence)] = sequence
        embedded = self.source_embedding.weight.data[padded]            # (B, T, d)
        batch_size, length, dim = embedded.shape
        projected = np.matmul(embedded.reshape(batch_size * length, 1, dim),
                              self.encoder_projection.weight.data)
        memory = np.tanh(
            projected.reshape(batch_size, length, -1)
            + self.encoder_projection.bias.data)                        # (B, T, h)
        encoded: list[EncodedSource] = []
        for row, sequence in enumerate(sequences):
            item_memory = memory[row, : len(sequence)]
            pooled = item_memory.mean(axis=0)
            state = np.tanh(pooled @ self.state_init.weight.data + self.state_init.bias.data)
            encoded.append(EncodedSource(memory=item_memory,
                                         mask=np.ones(len(sequence)), state=state))
        return encoded

    def decode_step_numpy(self, encoded: EncodedSource, state: np.ndarray,
                          previous_id: int) -> tuple[np.ndarray, np.ndarray]:
        """One inference decoder step for one beam (a thin wrapper).

        Delegates to :meth:`decode_step_numpy_batch` with a single row; by the
        kernel's bit-exactness contract the result is identical to the same
        beam advanced inside any larger batch.  Returns (log-probabilities
        ``(V,)``, new state ``(h,)``).
        """
        memory = encoded.memory[None, :, :]
        memory_mask = (np.asarray(encoded.mask) != 0.0)[None, :]
        log_probabilities, new_states = self.decode_step_numpy_batch(
            memory, memory_mask,
            np.asarray(state, dtype=np.float64)[None, :],
            np.asarray([previous_id], dtype=np.int64),
        )
        return log_probabilities[0], new_states[0]

    def decode_step_numpy_batch(self, memory: np.ndarray, memory_mask: np.ndarray,
                                states: np.ndarray, previous_ids: np.ndarray,
                                augmented_memory: np.ndarray | None = None
                                ) -> tuple[np.ndarray, np.ndarray]:
        """Advance ``R`` decoder beams with one stacked step.

        ``memory`` is ``(R, T, h)`` (zero-padded along ``T``), ``memory_mask``
        ``(R, T)`` bool (True at real source positions), ``states`` ``(R, h)``,
        ``previous_ids`` ``(R,)``.  ``augmented_memory`` is an optional
        precomputed ``(R, T, h+1)`` copy of ``memory`` with a ones column
        appended (hot callers build it once per decode instead of per step);
        built here when absent.  Returns (log-probabilities ``(R, V)``, new
        states ``(R, h)``).

        Bit-exactness contract: row ``r`` of the result depends only on row
        ``r`` of the inputs, and is invariant both to the number of other rows
        in the batch and to how far ``T`` is zero-padded.  A beam therefore
        decodes to identical doubles whether it runs alone (the ``loop``
        backend, via :meth:`decode_step_numpy`) or stacked with the rest of a
        micro-batch (the ``vectorized`` backend).  The contract dictates the
        numerics used here:

        * the fixed-dimension projections run as stacked ``(R, 1, k) @ (k, n)``
          matmuls -- BLAS sees one ``(1, k)`` slice per row, so per-row results
          cannot depend on ``R`` (a flat ``(R, k) @ (k, n)`` GEMM does not have
          that property: OpenBLAS picks different kernels for different row
          counts);
        * contractions over the padded ``T`` axis use ``einsum`` forms whose
          reduction axis is *not* innermost (``rth,rh->rt`` / ``rt,rth->rh``),
          which accumulate ``t`` sequentially -- appending zero terms is then
          an exact no-op (plain ``sum(axis=...)`` pairwise reductions and
          innermost-axis einsums regroup partial sums when ``T`` changes);
        * the attention normalizer rides along the stable context einsum via a
          ones column appended to the memory, instead of a separate
          length-sensitive row sum;
        * per-row softmax reductions run over the vocabulary axis, whose
          length never varies with batching.
        """
        previous_embedded = self.target_embedding.weight.data[previous_ids]     # (R, d)
        pre_activation = (
            np.matmul(previous_embedded[:, None, :], self.input_projection.weight.data)
            + np.matmul(states[:, None, :], self.recurrent_projection.weight.data)
        )[:, 0, :] + self.recurrent_projection.bias.data
        new_states = np.tanh(pre_activation)                                    # (R, h)

        scores = np.einsum("rth,rh->rt", memory, new_states)                    # (R, T)
        scores = np.where(memory_mask, scores, -np.inf)
        scores = scores - scores.max(axis=1, keepdims=True)
        attention = np.exp(scores)                                              # pads -> 0.0
        rows, length, hidden = memory.shape
        if augmented_memory is None:
            augmented_memory = np.concatenate(
                [memory, np.ones((rows, length, 1))], axis=2)                   # (R, T, h+1)
        pooled = np.einsum("rt,rth->rh", attention, augmented_memory)           # (R, h+1)
        context = pooled[:, :hidden] / pooled[:, hidden:]                       # (R, h)

        combined = np.tanh(
            np.matmul(np.concatenate([new_states, context], axis=1)[:, None, :],
                      self.combine_projection.weight.data)[:, 0, :]
            + self.combine_projection.bias.data)
        logits = np.matmul(combined[:, None, :],
                           self.output_projection.weight.data)[:, 0, :] \
            + self.output_projection.bias.data
        logits = logits - logits.max(axis=1, keepdims=True)
        log_probabilities = logits - np.log(np.exp(logits).sum(axis=1, keepdims=True))
        return log_probabilities, new_states

    def fast_input_table(self) -> np.ndarray:
        """The fused ``(V, h)`` previous-token table for the fast kernel.

        ``embedding @ W_in + b_hh`` precomputed for every vocabulary entry,
        so each fast step replaces an embedding gather, a GEMM, and two bias
        adds with a single table gather.  Computed fresh on each call (one
        small ``(V, d) @ (d, h)`` GEMM) -- hot callers grab it once per
        decode and pass it to every step, which keeps it trivially coherent
        with the live weights.
        """
        return (self.target_embedding.weight.data
                @ self.input_projection.weight.data
                + self.recurrent_projection.bias.data)

    def decode_step_numpy_batch_fast(self, memory: np.ndarray, memory_mask: np.ndarray,
                                     states: np.ndarray, previous_ids: np.ndarray,
                                     input_table: np.ndarray | None = None,
                                     memory_t: np.ndarray | None = None
                                     ) -> tuple[np.ndarray, np.ndarray]:
        """The throughput-first, slot-dense sibling of
        :meth:`decode_step_numpy_batch`.

        Advances ``S`` beam slots of each of ``Q`` questions at once:
        ``memory`` is ``(Q, T, h)`` (zero-padded along ``T``), ``memory_mask``
        ``(Q, T)`` bool, ``states`` ``(Q, S, h)``, ``previous_ids`` ``(Q,
        S)``.  Returns (log-probabilities ``(Q, S, V)``, new states ``(Q, S,
        h)``).  Same math as the exact kernel, but every fixed-dimension
        projection runs as one true flat ``(Q*S, k) @ (k, n)`` GEMM (the
        ``(Q*S, h) @ (h, V)`` output projection is the dominant cost) and
        attention contracts as batched ``(Q, S, h) @ (Q, h, T)`` / ``(Q, S,
        T) @ (Q, T, h)`` matmuls with an ordinary row-sum softmax normalizer
        -- no per-row ``(R, 1, k)`` slice stabilization, no padding-exact
        einsum forms, and crucially no per-step row gathers: callers keep
        their slot grid resident and hand the kernel whole-array views.

        That freedom is exactly what breaks the exact kernel's bit-exactness
        contract: BLAS picks different micro-kernels (different partial-sum
        regroupings) for different row counts, so a beam's doubles may drift
        in the last ulps with batch composition.  The ``fast`` decode backend
        therefore trades bit-identity for *tolerance-checked* agreement
        (seeded top-1 agreement gates in
        ``benchmarks/bench_decode_throughput.py`` and CI); anything that must
        be reproducible to the bit stays on :meth:`decode_step_numpy_batch`.
        ``input_table`` is the :meth:`fast_input_table` fusion of the
        previous-token embedding and input projection, and ``memory_t`` a
        C-contiguous ``(Q, h, T)`` transpose of ``memory``; hot callers
        compute both once per decode, and they are rebuilt here when absent.
        """
        questions, slots, hidden = states.shape
        flat_states = states.reshape(questions * slots, hidden)
        if input_table is None:
            input_table = self.fast_input_table()
        if memory_t is None:
            memory_t = np.ascontiguousarray(memory.transpose(0, 2, 1))
        new_states = np.tanh(
            input_table[previous_ids.reshape(-1)]
            + flat_states @ self.recurrent_projection.weight.data)              # (Q*S, h)
        states3 = new_states.reshape(questions, slots, hidden)

        scores = np.matmul(states3, memory_t)                                   # (Q, S, T)
        if not memory_mask.all():
            scores = np.where(memory_mask[:, None, :], scores, -np.inf)
        # Both attention operands are tanh outputs, so |score| <= hidden and
        # the exp cannot overflow at ordinary widths -- the max-subtraction
        # is only needed (and only paid) when hidden approaches the float64
        # exp limit of ~709.
        if hidden > 512:
            scores = scores - scores.max(axis=2, keepdims=True)
        attention = np.exp(scores)                                              # pads -> 0.0
        attention /= attention.sum(axis=2, keepdims=True)
        context = np.matmul(attention, memory)                                  # (Q, S, h)

        combined = np.tanh(
            np.concatenate([new_states, context.reshape(-1, hidden)], axis=1)
            @ self.combine_projection.weight.data
            + self.combine_projection.bias.data)                                # (Q*S, h)
        logits = combined @ self.output_projection.weight.data \
            + self.output_projection.bias.data                                  # (Q*S, V)
        logits = logits - logits.max(axis=1, keepdims=True)
        log_probabilities = logits - np.log(np.exp(logits).sum(axis=1, keepdims=True))
        return (log_probabilities.reshape(questions, slots, -1), states3)


@dataclass(frozen=True)
class VocabularySlice:
    """Mapping from a sliced target vocabulary back to the master output head.

    A sliced shard model keeps only its sub-catalog's rows of the target
    embedding and output projection, so its per-step log-softmax normalizes
    over the *slice* -- scores inflate by exactly ``-log(slice probability
    mass)`` per step relative to the master vocabulary, and the inflation is
    largest precisely on shards the question does *not* belong to.  No
    per-shard constant can undo that, so calibration is exact instead:
    finished hypotheses are replayed teacher-forced through the shared trunk
    with the full master head (:func:`rescore_token_sequences`), which
    reproduces the global-vocabulary score.  This record carries what the
    replay needs: the kept master row ids (ascending; the special tokens'
    head is always kept, so special ids coincide between slice and master)
    and the master head parameters.
    """

    kept_ids: np.ndarray       # (V_slice,) int64, ascending master row ids
    output_weight: np.ndarray  # (h, V_master) master output projection weight
    output_bias: np.ndarray    # (V_master,) master output projection bias


def rescore_token_sequences(model: "Seq2SeqModel",
                            encoded_list: list[EncodedSource],
                            sequences: list[list[int]],
                            vocabulary_slice: VocabularySlice,
                            bos_id: int = 1) -> np.ndarray:
    """Exact master-vocabulary log-probabilities of sliced decodes.

    Replays each token sequence (sliced-vocabulary ids, *including* the
    trailing EOS for finished hypotheses) teacher-forced through ``model``'s
    trunk, scoring every step against the full master head carried by
    ``vocabulary_slice``.  The decoder state recursion never touches the
    output head and the sliced embedding rows are the master's kept rows, so
    the replayed trunk states match a master-vocabulary decode of the same
    path -- the returned score is the global score the master model would
    have assigned, up to GEMM regrouping noise.

    Runs fast-kernel style: all rows advance together, one flat output GEMM
    per step over the rows still inside their sequence.  Returns ``(R,)``
    summed log-probabilities (zeros for empty sequences).
    """
    if not sequences:
        return np.zeros(0)
    lengths = np.asarray([len(sequence) for sequence in sequences], dtype=np.int64)
    max_length = int(lengths.max())
    scores = np.zeros(len(sequences))
    if max_length == 0:
        return scores
    hidden = model.config.hidden_dim
    rows = len(sequences)
    memory_length = max(encoded.memory.shape[0] for encoded in encoded_list)
    memory = np.zeros((rows, memory_length, hidden))
    memory_mask = np.zeros((rows, memory_length), dtype=bool)
    states = np.empty((rows, hidden))
    for row, encoded in enumerate(encoded_list):
        true_length = encoded.memory.shape[0]
        memory[row, :true_length] = encoded.memory
        memory_mask[row, :true_length] = np.asarray(encoded.mask) != 0.0
        states[row] = encoded.state
    memory_t = np.ascontiguousarray(memory.transpose(0, 2, 1))
    targets = np.zeros((rows, max_length), dtype=np.int64)
    for row, sequence in enumerate(sequences):
        targets[row, : len(sequence)] = sequence

    input_table = model.fast_input_table()
    recurrent_weight = model.recurrent_projection.weight.data
    combine_weight = model.combine_projection.weight.data
    combine_bias = model.combine_projection.bias.data
    kept_ids = vocabulary_slice.kept_ids
    head_weight = vocabulary_slice.output_weight
    head_bias = vocabulary_slice.output_bias
    all_visible = bool(memory_mask.all())

    previous = np.full(rows, bos_id, dtype=np.int64)
    for step in range(max_length):
        active = np.nonzero(step < lengths)[0]
        new_states = np.tanh(input_table[previous] + states @ recurrent_weight)
        attention_scores = np.matmul(new_states[:, None, :], memory_t)[:, 0, :]
        if not all_visible:
            attention_scores = np.where(memory_mask, attention_scores, -np.inf)
        if hidden > 512:
            attention_scores = attention_scores - attention_scores.max(axis=1, keepdims=True)
        attention = np.exp(attention_scores)
        attention /= attention.sum(axis=1, keepdims=True)
        context = np.matmul(attention[:, None, :], memory)[:, 0, :]
        combined = np.tanh(
            np.concatenate([new_states, context], axis=1) @ combine_weight + combine_bias)
        logits = combined[active] @ head_weight + head_bias                     # (A, V_master)
        logits = logits - logits.max(axis=1, keepdims=True)
        normalizers = np.log(np.exp(logits).sum(axis=1))
        master_targets = kept_ids[targets[active, step]]
        scores[active] += logits[np.arange(len(active)), master_targets] - normalizers
        states = new_states
        previous = np.where(step < lengths, targets[:, step], 0)
    return scores


class WaveDecodeKernel:
    """One fast-tier decode stream over several shard models of one trunk.

    Duck-types the slice of :class:`Seq2SeqModel` the slot-dense decode
    engine touches (``config``, :meth:`fast_input_table`,
    :meth:`decode_step_numpy_batch_fast`), batching every shard's beams of a
    scatter wave into single flat GEMMs.  All shard models must share the
    trunk modules by reference (they do: :func:`repro.cluster.shard.project_router`
    either reuses the master model outright or shares its trunk into a
    sliced twin); only the target embedding / output head may differ per
    shard.  Each question row carries a shard ``tag``; the previous-token
    gather indexes a stacked per-shard input table, and the output head runs
    either as one shared GEMM (unsliced shards -- every head is the master's)
    or as per-shard grouped GEMMs whose log-softmax normalizes over each
    shard's own slice, written into a ``-inf``-padded common-width grid so
    the engine's top-k machinery is untouched.
    """

    _TRUNK_MODULES = ("source_embedding", "encoder_projection", "state_init",
                      "input_projection", "recurrent_projection",
                      "combine_projection")

    def __init__(self, models: list[Seq2SeqModel] | tuple[Seq2SeqModel, ...],
                 vocabulary_slices: Sequence[VocabularySlice | None] | None = None
                 ) -> None:
        if not models:
            raise ValueError("a wave kernel needs at least one shard model")
        self.models = list(models)
        base = self.models[0]
        for model in self.models[1:]:
            for attribute in self._TRUNK_MODULES:
                if getattr(model, attribute) is not getattr(base, attribute):
                    raise ValueError(
                        f"wave decode requires shard models sharing one trunk; "
                        f"{attribute!r} differs")
        self.vocab_width = max(model.config.target_vocab_size for model in self.models)
        self.config = replace(base.config, target_vocab_size=self.vocab_width)
        self.shared_head = all(
            model.output_projection is base.output_projection for model in self.models)
        if vocabulary_slices is None:
            vocabulary_slices = [None] * len(self.models)
        if len(vocabulary_slices) != len(self.models):
            raise ValueError("one vocabulary slice (or None) per shard model")
        self.vocabulary_slices = list(vocabulary_slices)
        # Calibrated-head mode: every shard is a slice of one master head, so
        # each step can run a single master-width GEMM, log-softmax over the
        # *master* vocabulary, and gather each shard's kept columns -- the
        # decode then emits exact master-vocabulary scores (no post-hoc
        # rescoring), and search prunes exactly as a master-head decode
        # restricted to the slice would.
        self.calibrated_head = all(
            vocabulary_slice is not None for vocabulary_slice in self.vocabulary_slices
        ) and all(
            vocabulary_slice.output_weight is self.vocabulary_slices[0].output_weight
            and vocabulary_slice.output_bias is self.vocabulary_slices[0].output_bias
            for vocabulary_slice in self.vocabulary_slices)
        if not self.calibrated_head and any(
                vocabulary_slice is not None
                for vocabulary_slice in self.vocabulary_slices):
            raise ValueError(
                "wave decode requires either no vocabulary slices or one "
                "shared master head across every shard's slice")

    def fast_input_table(self) -> np.ndarray:
        """Per-shard fused previous-token tables, stacked ``(K * Vmax, h)``.

        Shard ``k``'s table occupies rows ``[k * Vmax, k * Vmax + V_k)``;
        the gather offset is ``tag * Vmax + previous_id``.  Pad rows stay
        zero and are never gathered (a shard's previous ids are < ``V_k``).
        """
        hidden = self.config.hidden_dim
        table = np.zeros((len(self.models) * self.vocab_width, hidden))
        for shard, model in enumerate(self.models):
            shard_table = model.fast_input_table()
            start = shard * self.vocab_width
            table[start : start + shard_table.shape[0]] = shard_table
        return table

    def decode_step_numpy_batch_fast(self, memory: np.ndarray, memory_mask: np.ndarray,
                                     states: np.ndarray, previous_ids: np.ndarray,
                                     input_table: np.ndarray | None = None,
                                     memory_t: np.ndarray | None = None,
                                     tags: np.ndarray | None = None
                                     ) -> tuple[np.ndarray, np.ndarray]:
        """Fast-tier step for a shard-tagged wave; same shapes as the model
        kernel plus ``tags`` ``(Q,)`` (shard index per question row).

        Trunk math is identical to
        :meth:`Seq2SeqModel.decode_step_numpy_batch_fast` (the trunk is
        shared); only the previous-token gather and the output head are
        shard-aware.  Columns ``>= V_k`` of a shard's rows come back
        ``-inf``, so padded vocabulary slots can never win a top-k.
        """
        if tags is None:
            raise ValueError("the wave kernel needs per-question shard tags")
        base = self.models[0]
        questions, slots, hidden = states.shape
        flat_states = states.reshape(questions * slots, hidden)
        if input_table is None:
            input_table = self.fast_input_table()
        if memory_t is None:
            memory_t = np.ascontiguousarray(memory.transpose(0, 2, 1))
        tags = np.asarray(tags, dtype=np.int64)
        gather_rows = (previous_ids + tags[:, None] * self.vocab_width).reshape(-1)
        new_states = np.tanh(
            input_table[gather_rows]
            + flat_states @ base.recurrent_projection.weight.data)              # (Q*S, h)
        states3 = new_states.reshape(questions, slots, hidden)

        scores = np.matmul(states3, memory_t)                                   # (Q, S, T)
        if not memory_mask.all():
            scores = np.where(memory_mask[:, None, :], scores, -np.inf)
        if hidden > 512:
            scores = scores - scores.max(axis=2, keepdims=True)
        attention = np.exp(scores)
        attention /= attention.sum(axis=2, keepdims=True)
        context = np.matmul(attention, memory)                                  # (Q, S, h)

        combined = np.tanh(
            np.concatenate([new_states, context.reshape(-1, hidden)], axis=1)
            @ base.combine_projection.weight.data
            + base.combine_projection.bias.data)                                # (Q*S, h)
        if self.shared_head:
            logits = combined @ base.output_projection.weight.data \
                + base.output_projection.bias.data
            logits = logits - logits.max(axis=1, keepdims=True)
            log_probabilities = logits - np.log(np.exp(logits).sum(axis=1, keepdims=True))
            return (log_probabilities.reshape(questions, slots, -1), states3)
        flat_tags = np.repeat(tags, slots)
        log_probabilities = np.full((questions * slots, self.vocab_width), -np.inf)
        # The wave engine stacks rows shard-major and compaction preserves
        # order, so each shard's rows are normally one contiguous block --
        # sliced views instead of boolean gathers.  Unsorted tags still work
        # through the nonzero fallback.
        tags_sorted = bool(np.all(tags[:-1] <= tags[1:]))
        master_log_probabilities = None
        if self.calibrated_head:
            # One master-width GEMM for every row; per-shard work is just a
            # kept-column gather.  Normalizing over the master vocabulary is
            # the calibration: emitted scores are exact global scores.
            head = self.vocabulary_slices[0]
            logits = combined @ head.output_weight + head.output_bias           # (Q*S, V_master)
            logits = logits - logits.max(axis=1, keepdims=True)
            master_log_probabilities = logits \
                - np.log(np.exp(logits).sum(axis=1, keepdims=True))
        for shard, model in enumerate(self.models):
            if tags_sorted:
                start, stop = np.searchsorted(flat_tags, (shard, shard + 1))
                if start == stop:
                    continue
                shard_rows: slice | np.ndarray = slice(int(start), int(stop))
            else:
                indices = np.nonzero(flat_tags == shard)[0]
                if not indices.size:
                    continue
                shard_rows = indices
            if master_log_probabilities is not None:
                kept_ids = self.vocabulary_slices[shard].kept_ids
                log_probabilities[shard_rows, : len(kept_ids)] = \
                    master_log_probabilities[shard_rows][:, kept_ids]
                continue
            block = combined[shard_rows] @ model.output_projection.weight.data \
                + model.output_projection.bias.data                             # (Rk, V_k)
            block = block - block.max(axis=1, keepdims=True)
            block = block - np.log(np.exp(block).sum(axis=1, keepdims=True))
            log_probabilities[shard_rows, : block.shape[1]] = block
        return (log_probabilities.reshape(questions, slots, -1), states3)

