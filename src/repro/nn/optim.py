"""Optimisers and learning-rate schedules.

The paper optimises with AdamW and a linear learning-rate schedule with no
warm-up (§4.1.5); both are implemented here for the numpy substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.modules import Parameter


class AdamW:
    """AdamW (decoupled weight decay) over a list of parameters."""

    def __init__(self, parameters: list[Parameter], learning_rate: float = 5e-3,
                 betas: tuple[float, float] = (0.9, 0.999), epsilon: float = 1e-8,
                 weight_decay: float = 0.01) -> None:
        self.parameters = list(parameters)
        self.learning_rate = learning_rate
        self.betas = betas
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._step = 0
        self._first_moment = [np.zeros_like(parameter.data) for parameter in self.parameters]
        self._second_moment = [np.zeros_like(parameter.data) for parameter in self.parameters]

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self, learning_rate: float | None = None) -> None:
        """Apply one update using accumulated gradients."""
        rate = self.learning_rate if learning_rate is None else learning_rate
        beta1, beta2 = self.betas
        self._step += 1
        bias_correction1 = 1.0 - beta1 ** self._step
        bias_correction2 = 1.0 - beta2 ** self._step
        for index, parameter in enumerate(self.parameters):
            gradient = parameter.grad
            if gradient is None:
                continue
            moment1 = self._first_moment[index]
            moment2 = self._second_moment[index]
            moment1 *= beta1
            moment1 += (1.0 - beta1) * gradient
            moment2 *= beta2
            moment2 += (1.0 - beta2) * gradient * gradient
            corrected1 = moment1 / bias_correction1
            corrected2 = moment2 / bias_correction2
            update = corrected1 / (np.sqrt(corrected2) + self.epsilon)
            if self.weight_decay:
                update = update + self.weight_decay * parameter.data
            parameter.data = parameter.data - rate * update


@dataclass
class LinearSchedule:
    """Linear decay from the base learning rate to (almost) zero."""

    base_learning_rate: float
    total_steps: int
    minimum_fraction: float = 0.02

    def learning_rate(self, step: int) -> float:
        if self.total_steps <= 0:
            return self.base_learning_rate
        progress = min(max(step, 0), self.total_steps) / self.total_steps
        fraction = max(1.0 - progress, self.minimum_fraction)
        return self.base_learning_rate * fraction


def clip_gradients(parameters: list[Parameter], max_norm: float) -> float:
    """Clip gradients to a global L2 norm; returns the pre-clip norm."""
    total = 0.0
    for parameter in parameters:
        if parameter.grad is not None:
            total += float((parameter.grad ** 2).sum())
    norm = float(np.sqrt(total))
    if max_norm > 0.0 and norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for parameter in parameters:
            if parameter.grad is not None:
                parameter.grad = parameter.grad * scale
    return norm
