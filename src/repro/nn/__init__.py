"""Neural-network substrate.

The paper's schema router and schema questioner are T5-base Seq2Seq models
fine-tuned with HF transformers on GPUs.  Neither the library nor the hardware
is available offline, so this package provides a from-scratch substitute: a
small reverse-mode autodiff engine over numpy arrays (:mod:`repro.nn.autograd`),
basic modules (:mod:`repro.nn.modules`), an attention-based encoder-decoder
(:mod:`repro.nn.seq2seq`), AdamW with a linear schedule (:mod:`repro.nn.optim`),
a word-level tokenizer (:mod:`repro.nn.tokenizer`), batching utilities, a
trainer, and greedy / beam / diverse-beam decoding with pluggable constraints
(:mod:`repro.nn.decoding`).

The substitution preserves what matters for the reproduction: the router is a
parameterised Seq2Seq model that memorises serialized schemata and decodes
them autoregressively under graph constraints, exactly as the paper's DSI
does -- only smaller.
"""

from repro.nn.autograd import Tensor
from repro.nn.modules import Embedding, Linear, Module, Parameter
from repro.nn.tokenizer import SpecialTokens, Vocabulary, WordTokenizer
from repro.nn.seq2seq import Seq2SeqConfig, Seq2SeqModel
from repro.nn.optim import AdamW, LinearSchedule
from repro.nn.data import Batch, pad_batch
from repro.nn.trainer import Seq2SeqTrainer, TrainerConfig
from repro.nn.decoding import (
    BeamHypothesis,
    beam_search,
    diverse_beam_search,
    diverse_beam_search_batch,
    diverse_beam_search_loop,
    greedy_decode,
)

__all__ = [
    "Tensor",
    "Embedding",
    "Linear",
    "Module",
    "Parameter",
    "SpecialTokens",
    "Vocabulary",
    "WordTokenizer",
    "Seq2SeqConfig",
    "Seq2SeqModel",
    "AdamW",
    "LinearSchedule",
    "Batch",
    "pad_batch",
    "Seq2SeqTrainer",
    "TrainerConfig",
    "BeamHypothesis",
    "beam_search",
    "diverse_beam_search",
    "diverse_beam_search_batch",
    "diverse_beam_search_loop",
    "greedy_decode",
]
