"""Word-level tokenizer and vocabulary.

The paper's router uses T5's SentencePiece tokenizer; here a word-level
tokenizer keeps the vocabulary small and the constrained-decoding prefix trie
simple while preserving the property that schema identifiers are decomposed
into shared word pieces (``singer_in_concert`` -> ``singer in concert``), so
the router can generalise across identifiers that share words.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Iterable

from repro.utils.text import tokenize_text


@dataclass(frozen=True)
class SpecialTokens:
    """Reserved vocabulary entries."""

    pad: str = "<pad>"
    bos: str = "<bos>"
    eos: str = "<eos>"
    unk: str = "<unk>"
    #: Separator emitted between serialized schema elements (paper Figure 4
    #: shows the element separator in generated schema sequences).
    sep: str = "<sep>"

    def as_tuple(self) -> tuple[str, ...]:
        return (self.pad, self.bos, self.eos, self.unk, self.sep)


class Vocabulary:
    """A bidirectional token <-> id mapping with reserved special tokens."""

    def __init__(self, tokens: Iterable[str] = (), specials: SpecialTokens | None = None) -> None:
        self.specials = specials or SpecialTokens()
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        for token in self.specials.as_tuple():
            self._add(token)
        for token in tokens:
            self.add(token)

    # -- construction --------------------------------------------------------
    def _add(self, token: str) -> int:
        if token in self._token_to_id:
            return self._token_to_id[token]
        index = len(self._id_to_token)
        self._token_to_id[token] = index
        self._id_to_token.append(token)
        return index

    def add(self, token: str) -> int:
        """Add a token (idempotent) and return its id."""
        return self._add(token)

    def add_text(self, text: str) -> None:
        for token in tokenize_text(text):
            self._add(token)

    # -- lookups --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: object) -> bool:
        return token in self._token_to_id

    def id_of(self, token: str) -> int:
        return self._token_to_id.get(token, self._token_to_id[self.specials.unk])

    def token_of(self, index: int) -> str:
        return self._id_to_token[index]

    @property
    def pad_id(self) -> int:
        return self._token_to_id[self.specials.pad]

    @property
    def bos_id(self) -> int:
        return self._token_to_id[self.specials.bos]

    @property
    def eos_id(self) -> int:
        return self._token_to_id[self.specials.eos]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[self.specials.unk]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[self.specials.sep]

    def tokens(self) -> list[str]:
        return list(self._id_to_token)

    # -- persistence ----------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-serializable snapshot preserving the exact token <-> id mapping."""
        return {"specials": asdict(self.specials), "tokens": list(self._id_to_token)}

    @classmethod
    def from_payload(cls, payload: dict) -> "Vocabulary":
        """Rebuild a vocabulary from :meth:`to_payload`, ids preserved."""
        specials = SpecialTokens(**payload["specials"])
        tokens = list(payload["tokens"])
        reserved = specials.as_tuple()
        if tuple(tokens[: len(reserved)]) != reserved:
            raise ValueError(
                f"vocabulary payload must start with the special tokens {reserved!r}"
            )
        vocabulary = cls(tokens[len(reserved):], specials=specials)
        if vocabulary.tokens() != tokens:
            raise ValueError("vocabulary payload contains duplicate tokens")
        return vocabulary


class WordTokenizer:
    """Encodes text / token streams to id sequences against a vocabulary."""

    def __init__(self, vocabulary: Vocabulary) -> None:
        self.vocabulary = vocabulary

    # -- encoding ---------------------------------------------------------------
    def encode_text(self, text: str, max_length: int | None = None) -> list[int]:
        """Encode free text (questions) into ids, without BOS/EOS."""
        ids = [self.vocabulary.id_of(token) for token in tokenize_text(text)]
        if max_length is not None:
            ids = ids[:max_length]
        return ids

    def encode_tokens(self, tokens: Iterable[str], add_bos: bool = True,
                      add_eos: bool = True) -> list[int]:
        """Encode an explicit token stream (serialized schemata)."""
        ids = [self.vocabulary.id_of(token) for token in tokens]
        if add_bos:
            ids = [self.vocabulary.bos_id] + ids
        if add_eos:
            ids = ids + [self.vocabulary.eos_id]
        return ids

    # -- decoding -------------------------------------------------------------------
    def decode(self, ids: Iterable[int], skip_special: bool = True) -> list[str]:
        specials = set(self.vocabulary.specials.as_tuple()) - {self.vocabulary.specials.sep}
        tokens = []
        for index in ids:
            token = self.vocabulary.token_of(int(index))
            if skip_special and token in specials:
                continue
            tokens.append(token)
        return tokens


def build_vocabulary(texts: Iterable[str], extra_tokens: Iterable[str] = ()) -> Vocabulary:
    """Build a vocabulary covering ``texts`` plus explicit extra tokens."""
    vocabulary = Vocabulary()
    for text in texts:
        vocabulary.add_text(text)
    for token in extra_tokens:
        vocabulary.add(token)
    return vocabulary
