"""Decoding strategies: greedy, beam search, and diverse beam search.

All strategies accept an optional *constraint* callback mapping the decoded
prefix (token ids, excluding BOS) to the set of token ids allowed next.  The
DBCopilot router plugs its graph-based prefix-trie constraint in here
(paper §3.5); passing ``None`` decodes unconstrained.  Constraints may
additionally expose an ``allowed_mask(prefix)`` method returning a boolean
ndarray over the vocabulary (see
:class:`repro.core.constrained.GraphConstrainedDecoding`); both engines
prefer it, applying the constraint as one vectorized ``np.where``.

Diverse beam search follows Vijayakumar et al. (2016), the algorithm the paper
uses to obtain varied candidate schemata: beams are split into groups, groups
are expanded sequentially at each step, and a token already chosen by an
earlier group at the same step is penalised for later groups.

Three implementations share those semantics:

* :func:`diverse_beam_search_batch` -- the bit-exact hot path.  It advances
  all active beams of all questions in a micro-batch through one
  :meth:`~repro.nn.seq2seq.Seq2SeqModel.decode_step_numpy_batch` call per
  step, with bookkeeping (tokens, lengths, scores, states, finished flags)
  held in flat numpy arrays.
* :func:`diverse_beam_search_loop` -- the original per-beam Python loop, kept
  as the reference for differential testing
  (``RouterConfig.decode_backend="loop"``).
* :func:`_diverse_beam_search_batch_dense` -- the throughput tier
  (``kernel="fast"`` / ``RouterConfig.decode_backend="fast"``): the same
  search over the slot-dense flat-GEMM kernel, trading bit-identity for
  tolerance-checked agreement.

The first two return *bit-identical* hypotheses: token-for-token the same
sequences with double-for-double the same scores.  The kernel's bit-exactness
contract covers the numerics; on the search side all engines break score ties
identically -- stable, lowest-token-id-first (``np.argsort(-scores,
kind="stable")``), never the platform-dependent order an unstable descending
sort would give -- so candidate selection, and therefore every downstream
ranking and cross-process merge, is deterministic.

Constraints exposing the incremental-state protocol (``initial_state`` /
``advance`` / ``allowed_mask_for_state``) are threaded through the batched
engines: each surviving beam carries an O(1)-updatable interpreter state
(gathered from its parent on selection), so per-step constraint resolution
never re-walks a beam's prefix.  The loop reference keeps the prefix-walk
path, which is exactly what makes it the oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from operator import itemgetter
from typing import AbstractSet, Callable, Sequence

import numpy as np

from repro.nn.seq2seq import EncodedSource, Seq2SeqModel

#: A constraint maps the decoded prefix to the allowed next token ids -- any
#: set-like collection, shared and possibly immutable, so callers must not
#: mutate it (an empty collection means "only EOS is allowed"; None means
#: "unconstrained at this prefix").
Constraint = Callable[[Sequence[int]], AbstractSet[int] | None]

#: Candidate tuples rank by their first field (the accumulated score); the
#: C-implemented getter keeps the hot selection sorts free of Python frames.
_candidate_score = itemgetter(0)


@dataclass
class BeamHypothesis:
    """A finished (or in-progress) decoded sequence."""

    tokens: list[int]
    score: float
    finished: bool = False

    def normalized_score(self, length_penalty: float = 0.0) -> float:
        """Length-normalised score; ``length_penalty=0`` returns the raw sum."""
        if length_penalty <= 0.0:
            return self.score
        length = max(len(self.tokens), 1)
        return self.score / (length ** length_penalty)


@dataclass
class _Beam:
    tokens: list[int] = field(default_factory=list)
    score: float = 0.0
    state: np.ndarray | None = None
    finished: bool = False


def _incremental_constraint(constraint: Constraint | None):
    """The constraint's incremental-state protocol, or ``None``.

    Constraints exposing ``initial_state()`` / ``advance(state, token)`` /
    ``allowed_mask_for_state(state)`` (see
    :class:`repro.core.constrained.GraphConstrainedDecoding`) let the batched
    engines thread an O(1)-updatable interpreter state through every
    surviving beam instead of re-walking its prefix per step.  Returns the
    bound ``(initial_state, advance, allowed_mask_for_state)`` triple.
    """
    if (constraint is not None
            and hasattr(constraint, "initial_state")
            and hasattr(constraint, "advance")
            and hasattr(constraint, "allowed_mask_for_state")):
        return (constraint.initial_state, constraint.advance,
                constraint.allowed_mask_for_state)
    return None


def _constraint_mask(constraint: Constraint | None, prefix: Sequence[int],
                     vocab_size: int, eos_id: int) -> np.ndarray | None:
    """The allowed-token boolean mask for ``prefix`` (None = unconstrained).

    Uses the constraint's cached ``allowed_mask`` when it has one; otherwise
    falls back to calling it as a set-returning callable and building the mask
    (an empty set means "only EOS").
    """
    if constraint is None:
        return None
    mask_fn = getattr(constraint, "allowed_mask", None)
    if mask_fn is not None:
        return mask_fn(prefix)
    allowed = constraint(prefix)
    if allowed is None:
        return None
    allowed_ids = {int(token) for token in allowed}
    if not allowed_ids:
        allowed_ids = {eos_id}
    mask = np.zeros(vocab_size, dtype=bool)
    mask[[token for token in allowed_ids if 0 <= token < vocab_size]] = True
    return mask


def _assign_state_mask(target: np.ndarray, mask: np.ndarray) -> None:
    """Write a constraint mask into a resident mask row, padding-aware.

    Wave decodes mix shards of different vocabulary widths into one grid
    whose mask rows span the widest slice; a narrower shard's mask fills its
    own columns and closes the pad columns (the kernel emits ``-inf`` there
    anyway -- this keeps the mask grid self-consistent)."""
    width = mask.shape[-1]
    if width == target.shape[-1]:
        target[...] = mask
    else:
        target[..., :width] = mask
        target[..., width:] = False


def _masked_log_probabilities(log_probabilities: np.ndarray, prefix: Sequence[int],
                              constraint: Constraint | None, eos_id: int) -> np.ndarray:
    """Apply the constraint by setting disallowed token log-probs to -inf."""
    mask = _constraint_mask(constraint, prefix, log_probabilities.shape[0], eos_id)
    if mask is None:
        return log_probabilities
    return np.where(mask, log_probabilities, -np.inf)


def _finalize_groups(groups: "list[list[_Beam]]", eos_id: int,
                     length_penalty: float, num_beams: int) -> list[BeamHypothesis]:
    """Strip EOS, rank, and deduplicate the surviving beams of one question."""
    finished: list[BeamHypothesis] = []
    for group in groups:
        for beam in group:
            tokens = beam.tokens
            if tokens and tokens[-1] == eos_id:
                tokens = tokens[:-1]
            finished.append(BeamHypothesis(tokens=tokens, score=beam.score,
                                           finished=beam.finished))
    finished.sort(key=lambda hypothesis: hypothesis.normalized_score(length_penalty),
                  reverse=True)
    # Deduplicate identical token sequences, keeping the best-scored copy.
    unique: list[BeamHypothesis] = []
    seen: set[tuple[int, ...]] = set()
    for hypothesis in finished:
        key = tuple(hypothesis.tokens)
        if key in seen:
            continue
        seen.add(key)
        unique.append(hypothesis)
    return unique[:num_beams]


def greedy_decode(model: Seq2SeqModel, source_ids: Sequence[int], bos_id: int, eos_id: int,
                  max_length: int = 48, constraint: Constraint | None = None,
                  encoded: EncodedSource | None = None) -> BeamHypothesis:
    """Greedy decoding; returns a single hypothesis (without BOS/EOS tokens).

    ``encoded`` lets callers reuse a precomputed encoder output (batched
    serving encodes many questions in one matmul and decodes each separately).
    """
    if encoded is None:
        encoded = model.encode_numpy(list(source_ids))
    state = encoded.state
    previous = bos_id
    tokens: list[int] = []
    score = 0.0
    for _ in range(max_length):
        log_probabilities, state = model.decode_step_numpy(encoded, state, previous)
        log_probabilities = _masked_log_probabilities(log_probabilities, tokens, constraint, eos_id)
        previous = int(np.argmax(log_probabilities))
        score += float(log_probabilities[previous])
        if previous == eos_id:
            return BeamHypothesis(tokens=tokens, score=score, finished=True)
        tokens.append(previous)
    return BeamHypothesis(tokens=tokens, score=score, finished=False)


def beam_search(model: Seq2SeqModel, source_ids: Sequence[int], bos_id: int, eos_id: int,
                beam_size: int = 5, max_length: int = 48,
                constraint: Constraint | None = None,
                length_penalty: float = 0.0) -> list[BeamHypothesis]:
    """Standard beam search; returns up to ``beam_size`` finished hypotheses."""
    return diverse_beam_search(
        model, source_ids, bos_id, eos_id,
        num_beams=beam_size, num_groups=1, diversity_penalty=0.0,
        max_length=max_length, constraint=constraint, length_penalty=length_penalty,
    )


def _validate_beam_budget(num_beams: int, num_groups: int) -> int:
    if num_beams <= 0:
        raise ValueError("num_beams must be positive")
    if num_groups <= 0 or num_beams % num_groups != 0:
        raise ValueError("num_beams must be a positive multiple of num_groups")
    return num_beams // num_groups


def diverse_beam_search(model: Seq2SeqModel, source_ids: Sequence[int], bos_id: int, eos_id: int,
                        num_beams: int = 10, num_groups: int = 10,
                        diversity_penalty: float = 2.0, max_length: int = 48,
                        constraint: Constraint | None = None,
                        length_penalty: float = 0.0,
                        encoded: EncodedSource | None = None) -> list[BeamHypothesis]:
    """Diverse (group) beam search for one question (a thin wrapper).

    ``num_beams`` must be divisible by ``num_groups``; the paper uses 10 beams
    in 10 groups with a diversity penalty of 2.0 (§4.1.5).  ``encoded`` lets
    callers reuse a precomputed encoder output instead of re-encoding
    ``source_ids``.  Runs the single question through the batched engine
    (:func:`diverse_beam_search_batch`); the per-beam reference implementation
    is :func:`diverse_beam_search_loop`.
    """
    _validate_beam_budget(num_beams, num_groups)
    if encoded is None:
        encoded = model.encode_numpy(list(source_ids))
    return diverse_beam_search_batch(
        model, [encoded], bos_id, eos_id,
        num_beams=num_beams, num_groups=num_groups,
        diversity_penalty=diversity_penalty, max_length=max_length,
        constraint=constraint, length_penalty=length_penalty,
    )[0]


def _note_decode_stats(stats: dict | None, **counts: int) -> None:
    """Accumulate observability counters into a caller-provided dict.

    Pure bookkeeping on plain ints, written once per engine call after the
    search completes -- it cannot perturb the decode numerics."""
    if stats is None:
        return
    for key, value in counts.items():
        stats[key] = stats.get(key, 0) + value


def diverse_beam_search_loop(model: Seq2SeqModel, source_ids: Sequence[int],
                             bos_id: int, eos_id: int,
                             num_beams: int = 10, num_groups: int = 10,
                             diversity_penalty: float = 2.0, max_length: int = 48,
                             constraint: Constraint | None = None,
                             length_penalty: float = 0.0,
                             encoded: EncodedSource | None = None,
                             stats: dict | None = None) -> list[BeamHypothesis]:
    """Per-beam diverse beam search: the reference (``loop``) decode backend.

    Semantically and bit-for-bit identical to running the question through
    :func:`diverse_beam_search_batch`, but advances one beam per kernel call
    in plain Python -- the shape the differential tests compare the batched
    engine against.  ``stats``, when given, accumulates ``steps`` (decode
    steps with at least one active beam) and ``beam_rows`` (kernel calls).
    """
    beams_per_group = _validate_beam_budget(num_beams, num_groups)

    if encoded is None:
        encoded = model.encode_numpy(list(source_ids))
    groups: list[list[_Beam]] = [
        [_Beam(state=encoded.state.copy())] for _ in range(num_groups)
    ]

    steps = 0
    beam_rows = 0
    for _ in range(max_length):
        tokens_chosen_this_step: dict[int, int] = {}
        any_active = False
        for group_index, group in enumerate(groups):
            candidates: list[_Beam] = []
            for beam in group:
                if beam.finished:
                    candidates.append(beam)
                    continue
                any_active = True
                beam_rows += 1
                previous = beam.tokens[-1] if beam.tokens else bos_id
                log_probabilities, new_state = model.decode_step_numpy(
                    encoded, beam.state, previous)
                log_probabilities = _masked_log_probabilities(
                    log_probabilities, beam.tokens, constraint, eos_id)
                # Hamming diversity: penalise tokens already emitted by earlier
                # groups at this time step.
                if diversity_penalty > 0.0 and tokens_chosen_this_step:
                    penalised = log_probabilities.copy()
                    for token, count in tokens_chosen_this_step.items():
                        penalised[token] -= diversity_penalty * count
                    scored = penalised
                else:
                    scored = log_probabilities
                # Stable descending sort: ties resolve lowest-token-id-first,
                # identically to the batched engine.
                top = np.argsort(-scored, kind="stable")[: max(beams_per_group * 2, 2)]
                for token in top:
                    token = int(token)
                    if not np.isfinite(log_probabilities[token]):
                        continue
                    candidate = _Beam(
                        tokens=beam.tokens + [token],
                        # Score with the *unpenalised* log-probability: the
                        # penalty only shapes the search, not the ranking.
                        score=beam.score + float(log_probabilities[token]),
                        state=new_state,
                        finished=(token == eos_id),
                    )
                    candidates.append(candidate)
            if not candidates:
                continue
            candidates.sort(key=lambda beam: beam.score, reverse=True)
            selected: list[_Beam] = []
            for candidate in candidates:
                if len(selected) >= beams_per_group:
                    break
                selected.append(candidate)
                if not candidate.finished and candidate.tokens:
                    token = candidate.tokens[-1]
                    tokens_chosen_this_step[token] = tokens_chosen_this_step.get(token, 0) + 1
            groups[group_index] = selected
        if not any_active:
            break
        steps += 1

    _note_decode_stats(stats, steps=steps, beam_rows=beam_rows)
    return _finalize_groups(groups, eos_id, length_penalty, num_beams)


def diverse_beam_search_batch(model: Seq2SeqModel, encoded_batch: "list[EncodedSource]",
                              bos_id: int, eos_id: int,
                              num_beams: int = 10, num_groups: int = 10,
                              diversity_penalty: float = 2.0, max_length: int = 48,
                              constraint: "Constraint | Sequence[Constraint | None] | None" = None,
                              length_penalty: float = 0.0,
                              kernel: str = "exact",
                              stats: dict | None = None,
                              question_tags: Sequence[int] | None = None
                              ) -> list[list[BeamHypothesis]]:
    """Diverse beam search over a whole micro-batch of questions at once.

    Per step, the active beams of *all* groups of *all* questions advance
    through one stacked
    :meth:`~repro.nn.seq2seq.Seq2SeqModel.decode_step_numpy_batch` call
    against their zero-padded encoder memories -- every beam's kernel inputs
    (state, previous token) are fixed before any group selects, so a single
    call per step is exact.  Constraint masks apply as one ``np.where`` over
    the stacked rows.  Group-sequential Hamming diversity is preserved
    exactly: groups still *select* in order within a step, each later group
    scoring against its question's tally of tokens the earlier groups chose.
    Beam bookkeeping (tokens, lengths, scores, states, finished flags) lives
    in flat numpy arrays.

    Constraints exposing the incremental-state protocol (``initial_state`` /
    ``advance`` / ``allowed_mask_for_state``, see
    :class:`repro.core.constrained.GraphConstrainedDecoding`) are threaded
    through the search: each surviving beam carries an O(1)-updatable
    interpreter state (gathered from its parent on selection), so per-step
    constraint resolution never re-walks a beam's prefix.  Other constraints
    fall back to the prefix-walk path with a per-call prefix->mask memo.

    ``kernel`` selects the decode tier: ``"exact"`` (the default) keeps the
    bit-exactness contract of
    :meth:`~repro.nn.seq2seq.Seq2SeqModel.decode_step_numpy_batch` with
    per-step row gathers; ``"fast"`` dispatches to the slot-dense engine
    (:func:`_diverse_beam_search_batch_dense` over
    :meth:`~repro.nn.seq2seq.Seq2SeqModel.decode_step_numpy_batch_fast`) --
    true flat GEMMs, batched attention, resident buffers, last-ulp drift
    allowed.  Search semantics (diversity, tie-breaking, selection order) are
    identical under either kernel.

    With the exact kernel, returns one hypothesis list per question,
    bit-identical to :func:`diverse_beam_search_loop` on the same inputs.
    ``stats``, when given, accumulates ``steps`` (stacked kernel calls) and
    ``beam_rows`` (active rows advanced across all steps); the fast tier
    additionally counts ``questions_compacted``.

    The fast tier additionally accepts the cluster wave form: ``constraint``
    may be a *sequence* of per-question constraints (each ``None`` or
    incremental-protocol), and ``question_tags`` labels each question with
    an integer shard tag that is forwarded to the kernel (see
    :class:`~repro.nn.seq2seq.WaveDecodeKernel`) and broken out in
    ``stats["per_tag"]``.  Neither is supported by the exact kernel.
    """
    beams_per_group = _validate_beam_budget(num_beams, num_groups)
    if kernel == "fast":
        return _diverse_beam_search_batch_dense(
            model, encoded_batch, bos_id, eos_id,
            num_beams=num_beams, num_groups=num_groups,
            diversity_penalty=diversity_penalty, max_length=max_length,
            constraint=constraint, length_penalty=length_penalty, stats=stats,
            question_tags=question_tags)
    if kernel != "exact":
        raise ValueError(f"kernel must be 'exact' or 'fast', got {kernel!r}")
    if question_tags is not None:
        raise ValueError("question_tags requires kernel='fast'")
    if isinstance(constraint, (list, tuple)):
        raise ValueError("per-question constraints require kernel='fast'")
    num_questions = len(encoded_batch)
    if num_questions == 0:
        return []
    hidden = encoded_batch[0].state.shape[0]
    vocab_size = model.config.target_vocab_size
    padded_length = max(encoded.memory.shape[0] for encoded in encoded_batch)
    memory = np.zeros((num_questions, padded_length, hidden))
    memory_mask = np.zeros((num_questions, padded_length), dtype=bool)
    for question, encoded in enumerate(encoded_batch):
        true_length = encoded.memory.shape[0]
        memory[question, :true_length] = encoded.memory
        memory_mask[question, :true_length] = np.asarray(encoded.mask) != 0.0
    # The kernel's attention pooling wants memory with a ones column appended
    # (the attention normalizer rides the same einsum); build it once here so
    # each step only gathers rows instead of re-concatenating.
    augmented_memory = np.concatenate(
        [memory, np.ones((num_questions, padded_length, 1))], axis=2)

    # Flat per-(question, group, slot) bookkeeping.  ``alive`` counts the
    # slots in use per group (1 at the start, up to ``beams_per_group`` after
    # the first selection).
    shape = (num_questions, num_groups, beams_per_group)
    tokens = np.zeros(shape + (max_length,), dtype=np.int64)
    lengths = np.zeros(shape, dtype=np.int64)
    scores = np.zeros(shape, dtype=np.float64)
    states = np.zeros(shape + (hidden,), dtype=np.float64)
    finished = np.zeros(shape, dtype=bool)
    alive = np.ones((num_questions, num_groups), dtype=np.int64)
    for question, encoded in enumerate(encoded_batch):
        states[question, :, 0] = encoded.state

    # Incremental constraint interpretation: beams carry interpreter states
    # (shared, immutable) in parallel Python lists mirroring the numpy
    # bookkeeping.  All slots start at the (single, shared) empty-prefix
    # state; slots beyond ``alive`` are never read.
    incremental = _incremental_constraint(constraint)
    if incremental:
        initial_state, advance_state, mask_for_state = incremental
        start_state = initial_state()
        constraint_states: list[list[list]] = [
            [[start_state] * beams_per_group for _ in range(num_groups)]
            for _ in range(num_questions)
        ]

    # Clamped to the vocabulary: argsort slices truncate at V anyway (the
    # loop backend's behavior), and the candidate loops must not read
    # positions that do not exist when V < 2 * beams_per_group.
    top_n = min(max(beams_per_group * 2, 2), vocab_size)
    # Scratch buffers reused by every (question, group) selection write-back.
    # Slots beyond a beam's recorded length may hold stale tokens; no reader
    # ever looks past ``lengths``.
    scratch_tokens = np.zeros((beams_per_group, max_length), dtype=np.int64)
    scratch_lengths = np.zeros(beams_per_group, dtype=np.int64)
    scratch_scores = np.zeros(beams_per_group, dtype=np.float64)
    scratch_states = np.zeros((beams_per_group, hidden), dtype=np.float64)
    scratch_finished = np.zeros(beams_per_group, dtype=bool)
    scratch_cstates: list = [None] * beams_per_group

    steps = 0
    beam_rows = 0
    for _ in range(max_length):
        # Python-list snapshots of the step-start bookkeeping: selection only
        # ever reads pre-step values (the scratch write-back below is the sole
        # writer), and plain lists are an order of magnitude faster than numpy
        # scalar indexing in the per-beam loops.
        alive_list = alive.tolist()
        finished_list = finished.tolist()
        scores_list = scores.tolist()
        lengths_list = lengths.tolist()

        # Stack the active beams of every (question, group), ordered so each
        # group occupies one contiguous block of rows.  All kernel inputs are
        # fixed at step start -- selection within a group only decides which
        # beams survive into the *next* step -- so one stacked call serves
        # every group of the step.
        row_question: list[int] = []
        row_beam: list[int] = []
        row_group: list[int] = []
        group_bounds: list[tuple[int, int]] = []
        row_lookup: dict[tuple[int, int, int], int] = {}
        for group in range(num_groups):
            start = len(row_question)
            for question in range(num_questions):
                question_finished = finished_list[question][group]
                for beam in range(alive_list[question][group]):
                    if not question_finished[beam]:
                        row_lookup[group, question, beam] = len(row_question)
                        row_question.append(question)
                        row_beam.append(beam)
                        row_group.append(group)
            group_bounds.append((start, len(row_question)))
        if not row_question:
            break
        steps += 1
        beam_rows += len(row_question)
        question_index = np.asarray(row_question, dtype=np.int64)
        beam_index = np.asarray(row_beam, dtype=np.int64)
        group_index = np.asarray(row_group, dtype=np.int64)
        row_lengths = lengths[question_index, group_index, beam_index]
        previous = np.where(
            row_lengths > 0,
            tokens[question_index, group_index, beam_index,
                   np.maximum(row_lengths - 1, 0)],
            bos_id)
        log_probabilities, step_states = model.decode_step_numpy_batch(
            memory[question_index], memory_mask[question_index],
            states[question_index, group_index, beam_index], previous,
            augmented_memory=augmented_memory[question_index])

        if incremental:
            # Each row's interpreter state already knows (or memoizes on
            # first touch) its allowed mask: no prefix materialization, no
            # trie walks, one attribute/dict hit per row.
            row_masks = np.empty_like(log_probabilities, dtype=bool)
            for row, (question, group, beam) in enumerate(
                    zip(row_question, row_group, row_beam)):
                row_masks[row] = mask_for_state(
                    constraint_states[question][group][beam])
            log_probabilities = np.where(row_masks, log_probabilities, -np.inf)
        elif constraint is not None:
            # Constraints are pure functions of the prefix, so rows sharing a
            # prefix (e.g. every group at step 0) share one mask lookup.
            row_masks = np.ones_like(log_probabilities, dtype=bool)
            constrain_rows = False
            mask_memo: dict[tuple[int, ...], np.ndarray | None] = {}
            for row, (question, group, beam) in enumerate(
                    zip(row_question, row_group, row_beam)):
                prefix = tokens[question, group, beam,
                                :lengths_list[question][group][beam]].tolist()
                key = tuple(prefix)
                if key in mask_memo:
                    mask = mask_memo[key]
                else:
                    mask = _constraint_mask(constraint, prefix, vocab_size, eos_id)
                    mask_memo[key] = mask
                if mask is not None:
                    row_masks[row] = mask
                    constrain_rows = True
            if constrain_rows:
                log_probabilities = np.where(row_masks, log_probabilities, -np.inf)

        chosen: list[dict[int, int]] = [{} for _ in range(num_questions)]
        for group in range(num_groups):
            start, stop = group_bounds[group]
            if start == stop:
                continue
            block_logp = log_probabilities[start:stop]
            scored = block_logp
            if diversity_penalty > 0.0:
                penalised = None
                penalty_of: dict[int, np.ndarray] = {}
                for block_row in range(stop - start):
                    question = row_question[start + block_row]
                    if not chosen[question]:
                        continue
                    if penalised is None:
                        penalised = block_logp.copy()
                    penalty = penalty_of.get(question)
                    if penalty is None:
                        penalty = np.zeros(vocab_size)
                        for token, count in chosen[question].items():
                            penalty[token] = diversity_penalty * count
                        penalty_of[question] = penalty
                    penalised[block_row] = block_logp[block_row] - penalty
                if penalised is not None:
                    scored = penalised

            # One stable descending argsort across the group's rows: ties
            # resolve lowest-token-id-first, identically to the loop path.
            order = np.argsort(-scored, axis=1, kind="stable")[:, :top_n]
            order_list = order.tolist()
            # ``.tolist()`` preserves every bit: the Python floats compare and
            # add exactly like the float64 array elements they came from.
            values_list = np.take_along_axis(block_logp, order, axis=1).tolist()

            # Per-question candidate selection (cheap Python: ~2x beam budget
            # candidates per beam), preserving the loop path's enumeration
            # order so stable sorting breaks ties identically.  A candidate is
            # (score, token, parent_beam, kernel_row); token -1 marks a
            # finished beam passing through unchanged.
            for question in range(num_questions):
                candidates: list[tuple[float, int, int, int]] = []
                has_active = False
                question_scores = scores_list[question][group]
                question_finished = finished_list[question][group]
                for beam in range(alive_list[question][group]):
                    if question_finished[beam]:
                        candidates.append((question_scores[beam], -1, beam, -1))
                        continue
                    has_active = True
                    block_row = row_lookup[group, question, beam] - start
                    parent_score = question_scores[beam]
                    row_values = values_list[block_row]
                    row_order = order_list[block_row]
                    for position in range(top_n):
                        value = row_values[position]
                        if not math.isfinite(value):
                            continue
                        candidates.append((parent_score + value,
                                           row_order[position],
                                           beam,
                                           start + block_row))
                if not candidates or not has_active:
                    continue
                candidates.sort(key=_candidate_score, reverse=True)
                selected = candidates[:beams_per_group]
                group_states = constraint_states[question][group] if incremental \
                    else None
                for slot, (score, token, parent, row) in enumerate(selected):
                    parent_length = lengths_list[question][group][parent]
                    scratch_tokens[slot, :parent_length] = \
                        tokens[question, group, parent, :parent_length]
                    if token < 0:
                        # A finished beam passing through unchanged.
                        scratch_lengths[slot] = parent_length
                        scratch_scores[slot] = question_scores[parent]
                        scratch_states[slot] = states[question, group, parent]
                        scratch_finished[slot] = True
                        if group_states is not None:
                            scratch_cstates[slot] = group_states[parent]
                        continue
                    scratch_tokens[slot, parent_length] = token
                    scratch_lengths[slot] = parent_length + 1
                    scratch_scores[slot] = score
                    scratch_states[slot] = step_states[row]
                    scratch_finished[slot] = token == eos_id
                    if group_states is not None:
                        # Gather the parent's interpreter state and advance it
                        # by the emitted token; a beam finishing on EOS keeps
                        # its parent state (its mask is never consulted again).
                        scratch_cstates[slot] = group_states[parent] \
                            if token == eos_id \
                            else advance_state(group_states[parent], token)
                    if token != eos_id:
                        chosen[question][token] = chosen[question].get(token, 0) + 1
                count = len(selected)
                tokens[question, group, :count] = scratch_tokens[:count]
                lengths[question, group, :count] = scratch_lengths[:count]
                scores[question, group, :count] = scratch_scores[:count]
                states[question, group, :count] = scratch_states[:count]
                finished[question, group, :count] = scratch_finished[:count]
                alive[question, group] = count
                if group_states is not None:
                    constraint_states[question][group] = scratch_cstates[:count]

    _note_decode_stats(stats, steps=steps, beam_rows=beam_rows)
    results: list[list[BeamHypothesis]] = []
    for question in range(num_questions):
        groups_out: list[list[_Beam]] = []
        for group in range(num_groups):
            group_beams: list[_Beam] = []
            for beam in range(alive[question, group]):
                length = int(lengths[question, group, beam])
                group_beams.append(_Beam(
                    tokens=tokens[question, group, beam, :length].tolist(),
                    score=float(scores[question, group, beam]),
                    finished=bool(finished[question, group, beam])))
            groups_out.append(group_beams)
        results.append(_finalize_groups(groups_out, eos_id, length_penalty, num_beams))
    return results


def _diverse_beam_search_batch_dense(model: Seq2SeqModel,
                                     encoded_batch: "list[EncodedSource]",
                                     bos_id: int, eos_id: int,
                                     num_beams: int, num_groups: int,
                                     diversity_penalty: float, max_length: int,
                                     constraint: "Constraint | Sequence[Constraint | None] | None",
                                     length_penalty: float,
                                     stats: dict | None = None,
                                     question_tags: Sequence[int] | None = None
                                     ) -> list[list[BeamHypothesis]]:
    """The ``fast`` decode tier: slot-dense diverse beam search.

    Identical search semantics to :func:`diverse_beam_search_batch` (group-
    sequential Hamming diversity, unpenalised candidate ranking, stable
    lowest-token-id-first tie-breaking, finished-beam pass-through), but
    organised for throughput instead of bit-exactness:

    * every ``(question, group, slot)`` of the beam grid advances through
      :meth:`~repro.nn.seq2seq.Seq2SeqModel.decode_step_numpy_batch_fast`
      each step -- flat GEMMs over all ``Q*G*B`` slots, batched per-question
      attention -- with states, previous tokens, and constraint masks kept
      *resident* in preallocated arrays, so steps perform no row gathers and
      no stacking; finished or unused slots ride along (their outputs are
      simply never read) rather than being compacted away;
    * groups still *select* sequentially within a step (Hamming diversity
      demands it; tallies live in one ``(Q, V)`` count array), but their
      selections are only recorded -- parent index, appended token, new
      score per slot -- and the grid is committed once per step with one set
      of whole-``(G, Q, B)`` gather/scatter ops instead of per-group writes.

    Numerically the fast kernel may drift from the exact one in the last
    ulps (flat GEMMs are not row-stable), so this tier's contract is
    tolerance-checked top-1 agreement, not bit-identity -- see
    ``RouterConfig.decode_backend`` and ``benchmarks/bench_decode_throughput``.
    Incremental constraint states are threaded through beams exactly as in
    the exact engine; non-incremental constraints fall back to prefix masks.

    Two wave-decode extensions (the inproc cluster batching every shard's
    beams into one grid): ``constraint`` may be a sequence with exactly one
    entry per question -- each ``None`` or incremental-protocol (the prefix-
    walk fallback stays scalar-only) -- and ``question_tags`` labels each
    question with an integer shard tag.  Tags ride through compaction, are
    handed to the kernel's ``tags`` parameter each step (the wave kernel
    gathers per-shard input-table rows and runs per-shard output heads), and
    split the decode counters into ``stats["per_tag"]``.
    """
    beams_per_group = _validate_beam_budget(num_beams, num_groups)
    num_questions = len(encoded_batch)
    if num_questions == 0:
        return []
    hidden = encoded_batch[0].state.shape[0]
    vocab_size = model.config.target_vocab_size
    padded_length = max(encoded.memory.shape[0] for encoded in encoded_batch)
    memory = np.zeros((num_questions, padded_length, hidden))
    memory_mask = np.zeros((num_questions, padded_length), dtype=bool)
    for question, encoded in enumerate(encoded_batch):
        true_length = encoded.memory.shape[0]
        memory[question, :true_length] = encoded.memory
        memory_mask[question, :true_length] = np.asarray(encoded.mask) != 0.0

    # The resident beam grid.  Unlike the exact engine, *every* slot is
    # initialised (not just slot 0): dead slots keep flowing finite values
    # through the dense kernel, and ``alive``/``finished`` decide what is
    # actually read.
    shape = (num_questions, num_groups, beams_per_group)
    slots = num_groups * beams_per_group
    tokens = np.zeros(shape + (max_length,), dtype=np.int64)
    lengths = np.zeros(shape, dtype=np.int64)
    scores = np.zeros(shape, dtype=np.float64)
    states = np.zeros(shape + (hidden,), dtype=np.float64)
    finished = np.zeros(shape, dtype=bool)
    alive = np.ones((num_questions, num_groups), dtype=np.int64)
    for question, encoded in enumerate(encoded_batch):
        states[question] = encoded.state
    # Flat (Q, S, ...) views over the same buffers for the kernel call and
    # the per-step previous-token derivation.
    flat_tokens = tokens.reshape(num_questions, slots, max_length)
    flat_lengths = lengths.reshape(num_questions, slots)
    flat_states = states.reshape(num_questions, slots, hidden)
    # Per-step Hamming tallies: counts[q, v] = how many earlier groups chose
    # token v for question q this step.  dp * count reproduces the exact
    # engine's penalty doubles bit-for-bit (both compute dp * n once).
    counts = np.zeros((num_questions, vocab_size), dtype=np.float64)
    beam_arange = np.arange(beams_per_group)
    question_arange = np.arange(num_questions)[:, None]
    slot_arange = np.arange(slots)[None, :]
    # Broadcast index helpers for the whole-grid (G, Q, B) commit: direct
    # fancy indexing beats the functional take/put_along_axis wrappers at
    # these shapes.
    question_index3 = np.arange(num_questions)[:, None, None]   # (Q, 1, 1)
    beam_index3 = beam_arange[None, :, None]                    # (1, B, 1)
    group_index3 = np.arange(num_groups)[:, None, None]         # (G, 1, 1)
    question_index_mid = np.arange(num_questions)[None, :, None]  # (1, Q, 1)
    beam_index_last = beam_arange[None, None, :]                  # (1, 1, B)
    input_table = model.fast_input_table()
    memory_t = np.ascontiguousarray(memory.transpose(0, 2, 1))    # (Q, h, T)

    # Constraint plumbing.  The scalar form keeps both paths (incremental
    # protocol or prefix-walk fallback); the per-question sequence form (the
    # wave path, each shard's own graph constraint) requires the incremental
    # protocol.  Everything below works off per-question ``advance_fns`` /
    # ``mask_fns`` lists (``None`` entries = unconstrained question), so the
    # selection loop is shard-agnostic.
    prefix_constraint: Constraint | None = None
    if isinstance(constraint, (list, tuple)):
        if len(constraint) != num_questions:
            raise ValueError(
                f"per-question constraints need exactly one entry per question "
                f"({len(constraint)} != {num_questions})")
        advance_fns: list = []
        mask_fns: list = []
        start_states: list = []
        for entry in constraint:
            if entry is None:
                advance_fns.append(None)
                mask_fns.append(None)
                start_states.append(None)
                continue
            protocol = _incremental_constraint(entry)
            if protocol is None:
                raise ValueError(
                    "per-question constraints must expose the incremental-state "
                    "protocol (initial_state/advance/allowed_mask_for_state)")
            entry_initial, entry_advance, entry_mask = protocol
            advance_fns.append(entry_advance)
            mask_fns.append(entry_mask)
            start_states.append(entry_initial())
    else:
        protocol = _incremental_constraint(constraint)
        if protocol is not None:
            shared_initial, shared_advance, shared_mask = protocol
            shared_start = shared_initial()
            advance_fns = [shared_advance] * num_questions
            mask_fns = [shared_mask] * num_questions
            start_states = [shared_start] * num_questions
        else:
            prefix_constraint = constraint
            advance_fns = [None] * num_questions
            mask_fns = [None] * num_questions
            start_states = [None] * num_questions
    incremental = any(fn is not None for fn in mask_fns)
    masked = incremental or prefix_constraint is not None
    if masked:
        # Resident dense mask grid; stale rows belong to dead slots and are
        # never read.  With an incremental constraint the grid is maintained
        # at selection time (a beam's mask only changes when its state
        # does), folded into the same loop that advances interpreter states;
        # prefix-walk constraints refill active rows before each step.
        row_masks = np.ones(shape + (vocab_size,), dtype=bool)
    if incremental:
        constraint_states: list[list[list]] = [
            [[start_states[question]] * beams_per_group for _ in range(num_groups)]
            for question in range(num_questions)
        ]
        for question in range(num_questions):
            if mask_fns[question] is not None:
                _assign_state_mask(row_masks[question],
                                   mask_fns[question](start_states[question]))

    # Shard tags (the wave path): resident per-question, compacted alongside
    # the grid, handed to the kernel each step, and split out per tag in the
    # final stats.
    tag_array: np.ndarray | None = None
    if question_tags is not None:
        tag_array = np.asarray(list(question_tags), dtype=np.int64)
        if tag_array.shape != (num_questions,):
            raise ValueError("question_tags needs exactly one tag per question")
        num_tags = int(tag_array.max()) + 1 if num_questions else 0
        tag_steps = np.zeros(num_tags, dtype=np.int64)
        tag_beam_rows = np.zeros(num_tags, dtype=np.int64)
        tag_compacted = np.zeros(num_tags, dtype=np.int64)

    # Clamped to the vocabulary: argsort slices truncate at V anyway (the
    # loop backend's behavior), and the candidate loops must not read
    # positions that do not exist when V < 2 * beams_per_group.
    top_n = min(max(beams_per_group * 2, 2), vocab_size)
    # Shared "keep this slot untouched" selection rows (read-only): parent =
    # own index, token marker -2.  Markers: >= 0 appends that token to the
    # parent, -1 passes a finished parent through, -2 keeps the slot as-is.
    keep_parents = list(range(beams_per_group))
    keep_tokens = [-2] * beams_per_group
    keep_scores = [0.0] * beams_per_group
    keep_parents_block = [keep_parents] * num_questions
    keep_tokens_block = [keep_tokens] * num_questions
    keep_scores_block = [keep_scores] * num_questions

    # Question-level compaction: once every group of a question has finished,
    # its beams are final -- bank them and shrink every per-question buffer,
    # so the tail of a decode (a few stragglers of a large batch) stops
    # paying dense-kernel flops for questions that are already done.
    question_ids = list(range(num_questions))
    banked: dict[int, tuple] = {}

    steps = 0
    beam_rows = 0
    questions_compacted = 0
    for _ in range(max_length):
        active = ~finished & (beam_arange < alive[:, :, None])   # (Q, G, B)
        if not active.any():
            break
        live = active.any(axis=(1, 2))                           # (Q,)
        if not live.all():
            questions_compacted += int((~live).sum())
            for question in np.nonzero(~live)[0].tolist():
                banked[question_ids[question]] = (
                    tokens[question].copy(), lengths[question].copy(),
                    scores[question].copy(), finished[question].copy(),
                    alive[question].copy())
            kept = np.nonzero(live)[0]
            kept_list = kept.tolist()
            question_ids = [question_ids[question] for question in kept_list]
            if incremental:
                constraint_states = [constraint_states[question]
                                     for question in kept_list]
            advance_fns = [advance_fns[question] for question in kept_list]
            mask_fns = [mask_fns[question] for question in kept_list]
            if tag_array is not None:
                tag_compacted += np.bincount(tag_array[~live], minlength=num_tags)
                tag_array = tag_array[kept]
            memory = memory[kept]
            memory_mask = memory_mask[kept]
            memory_t = np.ascontiguousarray(memory_t[kept])
            tokens = tokens[kept]
            lengths = lengths[kept]
            scores = scores[kept]
            states = states[kept]
            finished = finished[kept]
            alive = alive[kept]
            active = active[kept]
            counts = counts[kept]
            if masked:
                row_masks = row_masks[kept]
            num_questions = len(kept_list)
            shape = (num_questions, num_groups, beams_per_group)
            flat_tokens = tokens.reshape(num_questions, slots, max_length)
            flat_lengths = lengths.reshape(num_questions, slots)
            flat_states = states.reshape(num_questions, slots, hidden)
            question_arange = np.arange(num_questions)[:, None]
            question_index3 = question_arange[:, :, None]
            question_index_mid = np.arange(num_questions)[None, :, None]
            keep_parents_block = [keep_parents] * num_questions
            keep_tokens_block = [keep_tokens] * num_questions
            keep_scores_block = [keep_scores] * num_questions
        # Python-list snapshots of the step-start bookkeeping, exactly like
        # the exact engine: selection only ever reads pre-step values (the
        # whole-grid commit below is the sole writer, and it runs after all
        # groups have selected).
        alive_list = alive.tolist()
        finished_list = finished.tolist()
        scores_list = scores.tolist()

        if prefix_constraint is not None:
            lengths_list = lengths.tolist()
            mask_memo: dict[tuple[int, ...], np.ndarray | None] = {}
            for question in range(num_questions):
                for group in range(num_groups):
                    group_finished = finished_list[question][group]
                    for beam in range(alive_list[question][group]):
                        if group_finished[beam]:
                            continue
                        key = tuple(tokens[
                            question, group, beam,
                            :lengths_list[question][group][beam]].tolist())
                        mask = mask_memo.get(key)
                        if key not in mask_memo:
                            mask = _constraint_mask(prefix_constraint, key,
                                                    vocab_size, eos_id)
                            mask_memo[key] = mask
                        if mask is not None:
                            row_masks[question, group, beam] = mask
                        else:
                            # None means "unconstrained at this prefix": the
                            # resident row may hold a stale restrictive mask
                            # (an earlier step, or another beam after a slot
                            # permutation) and must be reopened.
                            row_masks[question, group, beam] = True

        # One dense kernel call: all slots of all groups of all questions.
        # Previous tokens are derived in place from the resident grid (each
        # slot's last recorded token, BOS before any) -- no per-group upkeep.
        previous = np.where(
            flat_lengths > 0,
            flat_tokens[question_arange, slot_arange,
                        np.maximum(flat_lengths - 1, 0)],
            bos_id)
        steps += 1
        beam_rows += num_questions * slots
        if tag_array is None:
            log_probabilities, step_states = model.decode_step_numpy_batch_fast(
                memory, memory_mask, flat_states, previous,
                input_table=input_table, memory_t=memory_t)
        else:
            resident = np.bincount(tag_array, minlength=num_tags)
            tag_beam_rows += resident * slots
            tag_steps += resident > 0
            log_probabilities, step_states = model.decode_step_numpy_batch_fast(
                memory, memory_mask, flat_states, previous,
                input_table=input_table, memory_t=memory_t, tags=tag_array)
        log_probabilities = log_probabilities.reshape(shape + (vocab_size,))
        if masked:
            log_probabilities = np.where(row_masks, log_probabilities, -np.inf)

        # Group-sequential selection.  Each group contributes one (Q, B) row
        # set of (parent, token, score) decisions; groups that select nothing
        # keep the shared keep-blocks (read-only, so aliasing is safe).
        counts[:] = 0.0
        any_chosen = False
        step_parents = [keep_parents_block] * num_groups
        step_tokens = [keep_tokens_block] * num_groups
        step_scores = [keep_scores_block] * num_groups
        step_alive = [[alive_list[question][group]
                       for question in range(num_questions)]
                      for group in range(num_groups)]
        group_has_active = active.any(axis=(0, 2)).tolist()       # (G,)
        for group in range(num_groups):
            if not group_has_active[group]:
                continue
            block = log_probabilities[:, group]                    # (Q, B, V)
            if diversity_penalty > 0.0 and any_chosen:
                scored = block - (diversity_penalty * counts)[:, None, :]
            else:
                scored = block
            # One stable descending argsort over the group's dense block:
            # ties resolve lowest-token-id-first, identically to the exact
            # engine (dead rows are sorted too, and ignored below).
            order = np.argsort(-scored, axis=2, kind="stable")[:, :, :top_n]
            values = block[question_index3, beam_index3, order]
            order_list = order.tolist()
            values_list = values.tolist()
            finite_list = np.isfinite(values).tolist()

            group_parents = None
            for question in range(num_questions):
                candidates: list[tuple[float, int, int, int]] = []
                has_active = False
                question_scores = scores_list[question][group]
                question_finished = finished_list[question][group]
                question_values = values_list[question]
                question_order = order_list[question]
                question_finite = finite_list[question]
                for beam in range(alive_list[question][group]):
                    if question_finished[beam]:
                        candidates.append((question_scores[beam], -1, beam, -1))
                        continue
                    has_active = True
                    parent_score = question_scores[beam]
                    row_values = question_values[beam]
                    row_order = question_order[beam]
                    row_finite = question_finite[beam]
                    for position in range(top_n):
                        if not row_finite[position]:
                            continue
                        candidates.append((parent_score + row_values[position],
                                           row_order[position], beam, beam))
                if not candidates or not has_active:
                    continue
                if group_parents is None:
                    group_parents = list(keep_parents_block)
                    group_tokens = list(keep_tokens_block)
                    group_scores = list(keep_scores_block)
                    step_parents[group] = group_parents
                    step_tokens[group] = group_tokens
                    step_scores[group] = group_scores
                candidates.sort(key=_candidate_score, reverse=True)
                selected = candidates[:beams_per_group]
                parents_row = list(keep_parents)
                tokens_row = list(keep_tokens)
                scores_row = list(keep_scores)
                group_parents[question] = parents_row
                group_tokens[question] = tokens_row
                group_scores[question] = scores_row
                step_alive[group][question] = len(selected)
                mask_for_state = mask_fns[question]
                advance_state = advance_fns[question]
                group_states = constraint_states[question][group] \
                    if incremental and mask_for_state is not None else None
                new_cstates = [None] * len(selected) if group_states is not None \
                    else None
                for slot, (score, token, parent, _) in enumerate(selected):
                    parents_row[slot] = parent
                    if token < 0:
                        # A finished beam passing through unchanged.
                        tokens_row[slot] = -1
                        if group_states is not None:
                            new_cstates[slot] = group_states[parent]
                        continue
                    tokens_row[slot] = token
                    scores_row[slot] = score
                    if group_states is not None:
                        if token == eos_id:
                            new_cstates[slot] = group_states[parent]
                        else:
                            new_state = advance_state(group_states[parent], token)
                            new_cstates[slot] = new_state
                            _assign_state_mask(row_masks[question, group, slot],
                                               mask_for_state(new_state))
                    if token != eos_id:
                        counts[question, token] += 1.0
                        any_chosen = True
                if group_states is not None:
                    constraint_states[question][group] = new_cstates

        # Whole-grid commit: one set of (G, Q, B) gathers/scatters applies
        # every group's recorded selection at once.  Keep-slots gather
        # themselves (their append mask is off, so the token write below is
        # a clamped self-overwrite); slots past ``alive`` hold gathered
        # leftovers no reader ever looks at.
        parents = np.asarray(step_parents, dtype=np.int64)        # (G, Q, B)
        chosen_tokens = np.asarray(step_tokens, dtype=np.int64)   # (G, Q, B)
        chosen_scores = np.asarray(step_scores, dtype=np.float64)
        append = chosen_tokens >= 0
        tokens_t = tokens.transpose(1, 0, 2, 3)                   # (G, Q, B, L) view
        lengths_t = lengths.transpose(1, 0, 2)
        scores_t = scores.transpose(1, 0, 2)
        states_t = states.transpose(1, 0, 2, 3)
        finished_t = finished.transpose(1, 0, 2)
        step_states_t = step_states.reshape(shape + (hidden,)).transpose(1, 0, 2, 3)
        gathered_tokens = tokens_t[group_index3, question_index_mid, parents]
        parent_lengths = lengths_t[group_index3, question_index_mid, parents]
        write_at = np.minimum(parent_lengths, max_length - 1)
        write_values = np.where(
            append, chosen_tokens,
            gathered_tokens[group_index3, question_index_mid,
                            beam_index_last, write_at])
        gathered_tokens[group_index3, question_index_mid,
                        beam_index_last, write_at] = write_values
        tokens_t[:] = gathered_tokens
        lengths_t[:] = parent_lengths + append
        scores_t[:] = np.where(
            append, chosen_scores,
            scores_t[group_index3, question_index_mid, parents])
        states_t[:] = np.where(
            append[:, :, :, None],
            step_states_t[group_index3, question_index_mid, parents],
            states_t[group_index3, question_index_mid, parents])
        finished_t[:] = np.where(
            append, chosen_tokens == eos_id,
            finished_t[group_index3, question_index_mid, parents])
        alive[:] = np.asarray(step_alive, dtype=np.int64).T

    _note_decode_stats(stats, steps=steps, beam_rows=beam_rows,
                       questions_compacted=questions_compacted)
    if stats is not None and tag_array is not None:
        per_tag = stats.setdefault("per_tag", {})
        for tag in range(num_tags):
            entry = per_tag.setdefault(int(tag), {})
            entry["steps"] = entry.get("steps", 0) + int(tag_steps[tag])
            entry["beam_rows"] = entry.get("beam_rows", 0) + int(tag_beam_rows[tag])
            entry["questions_compacted"] = (entry.get("questions_compacted", 0)
                                            + int(tag_compacted[tag]))
    # Bank whatever is still resident, then emit every question's beams in
    # the original batch order (compaction may have reordered the grid).
    for question, original in enumerate(question_ids):
        banked[original] = (tokens[question], lengths[question],
                            scores[question], finished[question],
                            alive[question])
    results: list[list[BeamHypothesis]] = []
    for original in range(len(encoded_batch)):
        q_tokens, q_lengths, q_scores, q_finished, q_alive = banked[original]
        groups_out: list[list[_Beam]] = []
        for group in range(num_groups):
            group_beams: list[_Beam] = []
            for beam in range(q_alive[group]):
                length = int(q_lengths[group, beam])
                group_beams.append(_Beam(
                    tokens=q_tokens[group, beam, :length].tolist(),
                    score=float(q_scores[group, beam]),
                    finished=bool(q_finished[group, beam])))
            groups_out.append(group_beams)
        results.append(_finalize_groups(groups_out, eos_id, length_penalty, num_beams))
    return results
