"""Decoding strategies: greedy, beam search, and diverse beam search.

All strategies accept an optional *constraint* callback mapping the decoded
prefix (token ids, excluding BOS) to the set of token ids allowed next.  The
DBCopilot router plugs its graph-based prefix-trie constraint in here
(paper §3.5); passing ``None`` decodes unconstrained.

Diverse beam search follows Vijayakumar et al. (2016), the algorithm the paper
uses to obtain varied candidate schemata: beams are split into groups, groups
are expanded sequentially at each step, and a token already chosen by an
earlier group at the same step is penalised for later groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.nn.seq2seq import EncodedSource, Seq2SeqModel

#: A constraint maps the decoded prefix to the allowed next token ids
#: (an empty collection means "only EOS is allowed").
Constraint = Callable[[Sequence[int]], "set[int] | None"]


@dataclass
class BeamHypothesis:
    """A finished (or in-progress) decoded sequence."""

    tokens: list[int]
    score: float
    finished: bool = False

    def normalized_score(self, length_penalty: float = 0.0) -> float:
        """Length-normalised score; ``length_penalty=0`` returns the raw sum."""
        if length_penalty <= 0.0:
            return self.score
        length = max(len(self.tokens), 1)
        return self.score / (length ** length_penalty)


@dataclass
class _Beam:
    tokens: list[int] = field(default_factory=list)
    score: float = 0.0
    state: np.ndarray | None = None
    finished: bool = False


def _masked_log_probabilities(log_probabilities: np.ndarray, prefix: Sequence[int],
                              constraint: Constraint | None, eos_id: int) -> np.ndarray:
    """Apply the constraint by setting disallowed token log-probs to -inf."""
    if constraint is None:
        return log_probabilities
    allowed = constraint(prefix)
    if allowed is None:
        return log_probabilities
    masked = np.full_like(log_probabilities, -np.inf)
    allowed_ids = {int(token) for token in allowed}
    if not allowed_ids:
        allowed_ids = {eos_id}
    indices = [token for token in allowed_ids if 0 <= token < log_probabilities.shape[0]]
    masked[indices] = log_probabilities[indices]
    return masked


def greedy_decode(model: Seq2SeqModel, source_ids: Sequence[int], bos_id: int, eos_id: int,
                  max_length: int = 48, constraint: Constraint | None = None,
                  encoded: EncodedSource | None = None) -> BeamHypothesis:
    """Greedy decoding; returns a single hypothesis (without BOS/EOS tokens).

    ``encoded`` lets callers reuse a precomputed encoder output (batched
    serving encodes many questions in one matmul and decodes each separately).
    """
    if encoded is None:
        encoded = model.encode_numpy(list(source_ids))
    state = encoded.state
    previous = bos_id
    tokens: list[int] = []
    score = 0.0
    for _ in range(max_length):
        log_probabilities, state = model.decode_step_numpy(encoded, state, previous)
        log_probabilities = _masked_log_probabilities(log_probabilities, tokens, constraint, eos_id)
        previous = int(np.argmax(log_probabilities))
        score += float(log_probabilities[previous])
        if previous == eos_id:
            return BeamHypothesis(tokens=tokens, score=score, finished=True)
        tokens.append(previous)
    return BeamHypothesis(tokens=tokens, score=score, finished=False)


def beam_search(model: Seq2SeqModel, source_ids: Sequence[int], bos_id: int, eos_id: int,
                beam_size: int = 5, max_length: int = 48,
                constraint: Constraint | None = None,
                length_penalty: float = 0.0) -> list[BeamHypothesis]:
    """Standard beam search; returns up to ``beam_size`` finished hypotheses."""
    return diverse_beam_search(
        model, source_ids, bos_id, eos_id,
        num_beams=beam_size, num_groups=1, diversity_penalty=0.0,
        max_length=max_length, constraint=constraint, length_penalty=length_penalty,
    )


def diverse_beam_search(model: Seq2SeqModel, source_ids: Sequence[int], bos_id: int, eos_id: int,
                        num_beams: int = 10, num_groups: int = 10,
                        diversity_penalty: float = 2.0, max_length: int = 48,
                        constraint: Constraint | None = None,
                        length_penalty: float = 0.0,
                        encoded: EncodedSource | None = None) -> list[BeamHypothesis]:
    """Diverse (group) beam search.

    ``num_beams`` must be divisible by ``num_groups``; the paper uses 10 beams
    in 10 groups with a diversity penalty of 2.0 (§4.1.5).  ``encoded`` lets
    callers reuse a precomputed encoder output instead of re-encoding
    ``source_ids``.
    """
    if num_beams <= 0:
        raise ValueError("num_beams must be positive")
    if num_groups <= 0 or num_beams % num_groups != 0:
        raise ValueError("num_beams must be a positive multiple of num_groups")
    beams_per_group = num_beams // num_groups

    if encoded is None:
        encoded = model.encode_numpy(list(source_ids))
    groups: list[list[_Beam]] = [
        [_Beam(state=encoded.state.copy())] for _ in range(num_groups)
    ]
    finished: list[BeamHypothesis] = []

    for _ in range(max_length):
        tokens_chosen_this_step: dict[int, int] = {}
        any_active = False
        for group_index, group in enumerate(groups):
            candidates: list[_Beam] = []
            for beam in group:
                if beam.finished:
                    candidates.append(beam)
                    continue
                any_active = True
                previous = beam.tokens[-1] if beam.tokens else bos_id
                log_probabilities, new_state = model.decode_step_numpy(
                    encoded, beam.state, previous)
                log_probabilities = _masked_log_probabilities(
                    log_probabilities, beam.tokens, constraint, eos_id)
                # Hamming diversity: penalise tokens already emitted by earlier
                # groups at this time step.
                if diversity_penalty > 0.0 and tokens_chosen_this_step:
                    penalised = log_probabilities.copy()
                    for token, count in tokens_chosen_this_step.items():
                        penalised[token] -= diversity_penalty * count
                    scored = penalised
                else:
                    scored = log_probabilities
                top = np.argsort(scored)[::-1][: max(beams_per_group * 2, 2)]
                for token in top:
                    token = int(token)
                    if not np.isfinite(log_probabilities[token]):
                        continue
                    candidate = _Beam(
                        tokens=beam.tokens + [token],
                        # Score with the *unpenalised* log-probability: the
                        # penalty only shapes the search, not the ranking.
                        score=beam.score + float(log_probabilities[token]),
                        state=new_state,
                        finished=(token == eos_id),
                    )
                    candidates.append(candidate)
            if not candidates:
                continue
            candidates.sort(key=lambda beam: beam.score, reverse=True)
            selected: list[_Beam] = []
            for candidate in candidates:
                if len(selected) >= beams_per_group:
                    break
                selected.append(candidate)
                if not candidate.finished and candidate.tokens:
                    token = candidate.tokens[-1]
                    tokens_chosen_this_step[token] = tokens_chosen_this_step.get(token, 0) + 1
            groups[group_index] = selected
        if not any_active:
            break

    for group in groups:
        for beam in group:
            tokens = beam.tokens
            if tokens and tokens[-1] == eos_id:
                tokens = tokens[:-1]
            finished.append(BeamHypothesis(tokens=tokens, score=beam.score,
                                           finished=beam.finished))
    finished.sort(key=lambda hypothesis: hypothesis.normalized_score(length_penalty),
                  reverse=True)
    # Deduplicate identical token sequences, keeping the best-scored copy.
    unique: list[BeamHypothesis] = []
    seen: set[tuple[int, ...]] = set()
    for hypothesis in finished:
        key = tuple(hypothesis.tokens)
        if key in seen:
            continue
        seen.add(key)
        unique.append(hypothesis)
    return unique[:num_beams]
