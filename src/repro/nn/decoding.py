"""Decoding strategies: greedy, beam search, and diverse beam search.

All strategies accept an optional *constraint* callback mapping the decoded
prefix (token ids, excluding BOS) to the set of token ids allowed next.  The
DBCopilot router plugs its graph-based prefix-trie constraint in here
(paper §3.5); passing ``None`` decodes unconstrained.  Constraints may
additionally expose an ``allowed_mask(prefix)`` method returning a boolean
ndarray over the vocabulary (see
:class:`repro.core.constrained.GraphConstrainedDecoding`); both engines
prefer it, applying the constraint as one vectorized ``np.where``.

Diverse beam search follows Vijayakumar et al. (2016), the algorithm the paper
uses to obtain varied candidate schemata: beams are split into groups, groups
are expanded sequentially at each step, and a token already chosen by an
earlier group at the same step is penalised for later groups.

Two implementations share those semantics:

* :func:`diverse_beam_search_batch` -- the hot path.  It advances all active
  beams of all questions in a micro-batch through one
  :meth:`~repro.nn.seq2seq.Seq2SeqModel.decode_step_numpy_batch` call per
  (step, group), with bookkeeping (tokens, lengths, scores, states, finished
  flags) held in flat numpy arrays.
* :func:`diverse_beam_search_loop` -- the original per-beam Python loop, kept
  as the reference for differential testing
  (``RouterConfig.decode_backend="loop"``).

Both return *bit-identical* hypotheses: token-for-token the same sequences
with double-for-double the same scores.  The kernel's bit-exactness contract
covers the numerics; on the search side both engines break score ties
identically -- stable, lowest-token-id-first (``np.argsort(-scores,
kind="stable")``), never the platform-dependent order an unstable descending
sort would give -- so candidate selection, and therefore every downstream
ranking and cross-process merge, is deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.nn.seq2seq import EncodedSource, Seq2SeqModel

#: A constraint maps the decoded prefix to the allowed next token ids
#: (an empty collection means "only EOS is allowed").
Constraint = Callable[[Sequence[int]], "set[int] | None"]


@dataclass
class BeamHypothesis:
    """A finished (or in-progress) decoded sequence."""

    tokens: list[int]
    score: float
    finished: bool = False

    def normalized_score(self, length_penalty: float = 0.0) -> float:
        """Length-normalised score; ``length_penalty=0`` returns the raw sum."""
        if length_penalty <= 0.0:
            return self.score
        length = max(len(self.tokens), 1)
        return self.score / (length ** length_penalty)


@dataclass
class _Beam:
    tokens: list[int] = field(default_factory=list)
    score: float = 0.0
    state: np.ndarray | None = None
    finished: bool = False


def _constraint_mask(constraint: Constraint | None, prefix: Sequence[int],
                     vocab_size: int, eos_id: int) -> np.ndarray | None:
    """The allowed-token boolean mask for ``prefix`` (None = unconstrained).

    Uses the constraint's cached ``allowed_mask`` when it has one; otherwise
    falls back to calling it as a set-returning callable and building the mask
    (an empty set means "only EOS").
    """
    if constraint is None:
        return None
    mask_fn = getattr(constraint, "allowed_mask", None)
    if mask_fn is not None:
        return mask_fn(prefix)
    allowed = constraint(prefix)
    if allowed is None:
        return None
    allowed_ids = {int(token) for token in allowed}
    if not allowed_ids:
        allowed_ids = {eos_id}
    mask = np.zeros(vocab_size, dtype=bool)
    mask[[token for token in allowed_ids if 0 <= token < vocab_size]] = True
    return mask


def _masked_log_probabilities(log_probabilities: np.ndarray, prefix: Sequence[int],
                              constraint: Constraint | None, eos_id: int) -> np.ndarray:
    """Apply the constraint by setting disallowed token log-probs to -inf."""
    mask = _constraint_mask(constraint, prefix, log_probabilities.shape[0], eos_id)
    if mask is None:
        return log_probabilities
    return np.where(mask, log_probabilities, -np.inf)


def _finalize_groups(groups: "list[list[_Beam]]", eos_id: int,
                     length_penalty: float, num_beams: int) -> list[BeamHypothesis]:
    """Strip EOS, rank, and deduplicate the surviving beams of one question."""
    finished: list[BeamHypothesis] = []
    for group in groups:
        for beam in group:
            tokens = beam.tokens
            if tokens and tokens[-1] == eos_id:
                tokens = tokens[:-1]
            finished.append(BeamHypothesis(tokens=tokens, score=beam.score,
                                           finished=beam.finished))
    finished.sort(key=lambda hypothesis: hypothesis.normalized_score(length_penalty),
                  reverse=True)
    # Deduplicate identical token sequences, keeping the best-scored copy.
    unique: list[BeamHypothesis] = []
    seen: set[tuple[int, ...]] = set()
    for hypothesis in finished:
        key = tuple(hypothesis.tokens)
        if key in seen:
            continue
        seen.add(key)
        unique.append(hypothesis)
    return unique[:num_beams]


def greedy_decode(model: Seq2SeqModel, source_ids: Sequence[int], bos_id: int, eos_id: int,
                  max_length: int = 48, constraint: Constraint | None = None,
                  encoded: EncodedSource | None = None) -> BeamHypothesis:
    """Greedy decoding; returns a single hypothesis (without BOS/EOS tokens).

    ``encoded`` lets callers reuse a precomputed encoder output (batched
    serving encodes many questions in one matmul and decodes each separately).
    """
    if encoded is None:
        encoded = model.encode_numpy(list(source_ids))
    state = encoded.state
    previous = bos_id
    tokens: list[int] = []
    score = 0.0
    for _ in range(max_length):
        log_probabilities, state = model.decode_step_numpy(encoded, state, previous)
        log_probabilities = _masked_log_probabilities(log_probabilities, tokens, constraint, eos_id)
        previous = int(np.argmax(log_probabilities))
        score += float(log_probabilities[previous])
        if previous == eos_id:
            return BeamHypothesis(tokens=tokens, score=score, finished=True)
        tokens.append(previous)
    return BeamHypothesis(tokens=tokens, score=score, finished=False)


def beam_search(model: Seq2SeqModel, source_ids: Sequence[int], bos_id: int, eos_id: int,
                beam_size: int = 5, max_length: int = 48,
                constraint: Constraint | None = None,
                length_penalty: float = 0.0) -> list[BeamHypothesis]:
    """Standard beam search; returns up to ``beam_size`` finished hypotheses."""
    return diverse_beam_search(
        model, source_ids, bos_id, eos_id,
        num_beams=beam_size, num_groups=1, diversity_penalty=0.0,
        max_length=max_length, constraint=constraint, length_penalty=length_penalty,
    )


def _validate_beam_budget(num_beams: int, num_groups: int) -> int:
    if num_beams <= 0:
        raise ValueError("num_beams must be positive")
    if num_groups <= 0 or num_beams % num_groups != 0:
        raise ValueError("num_beams must be a positive multiple of num_groups")
    return num_beams // num_groups


def diverse_beam_search(model: Seq2SeqModel, source_ids: Sequence[int], bos_id: int, eos_id: int,
                        num_beams: int = 10, num_groups: int = 10,
                        diversity_penalty: float = 2.0, max_length: int = 48,
                        constraint: Constraint | None = None,
                        length_penalty: float = 0.0,
                        encoded: EncodedSource | None = None) -> list[BeamHypothesis]:
    """Diverse (group) beam search for one question (a thin wrapper).

    ``num_beams`` must be divisible by ``num_groups``; the paper uses 10 beams
    in 10 groups with a diversity penalty of 2.0 (§4.1.5).  ``encoded`` lets
    callers reuse a precomputed encoder output instead of re-encoding
    ``source_ids``.  Runs the single question through the batched engine
    (:func:`diverse_beam_search_batch`); the per-beam reference implementation
    is :func:`diverse_beam_search_loop`.
    """
    _validate_beam_budget(num_beams, num_groups)
    if encoded is None:
        encoded = model.encode_numpy(list(source_ids))
    return diverse_beam_search_batch(
        model, [encoded], bos_id, eos_id,
        num_beams=num_beams, num_groups=num_groups,
        diversity_penalty=diversity_penalty, max_length=max_length,
        constraint=constraint, length_penalty=length_penalty,
    )[0]


def diverse_beam_search_loop(model: Seq2SeqModel, source_ids: Sequence[int],
                             bos_id: int, eos_id: int,
                             num_beams: int = 10, num_groups: int = 10,
                             diversity_penalty: float = 2.0, max_length: int = 48,
                             constraint: Constraint | None = None,
                             length_penalty: float = 0.0,
                             encoded: EncodedSource | None = None) -> list[BeamHypothesis]:
    """Per-beam diverse beam search: the reference (``loop``) decode backend.

    Semantically and bit-for-bit identical to running the question through
    :func:`diverse_beam_search_batch`, but advances one beam per kernel call
    in plain Python -- the shape the differential tests compare the batched
    engine against.
    """
    beams_per_group = _validate_beam_budget(num_beams, num_groups)

    if encoded is None:
        encoded = model.encode_numpy(list(source_ids))
    groups: list[list[_Beam]] = [
        [_Beam(state=encoded.state.copy())] for _ in range(num_groups)
    ]

    for _ in range(max_length):
        tokens_chosen_this_step: dict[int, int] = {}
        any_active = False
        for group_index, group in enumerate(groups):
            candidates: list[_Beam] = []
            for beam in group:
                if beam.finished:
                    candidates.append(beam)
                    continue
                any_active = True
                previous = beam.tokens[-1] if beam.tokens else bos_id
                log_probabilities, new_state = model.decode_step_numpy(
                    encoded, beam.state, previous)
                log_probabilities = _masked_log_probabilities(
                    log_probabilities, beam.tokens, constraint, eos_id)
                # Hamming diversity: penalise tokens already emitted by earlier
                # groups at this time step.
                if diversity_penalty > 0.0 and tokens_chosen_this_step:
                    penalised = log_probabilities.copy()
                    for token, count in tokens_chosen_this_step.items():
                        penalised[token] -= diversity_penalty * count
                    scored = penalised
                else:
                    scored = log_probabilities
                # Stable descending sort: ties resolve lowest-token-id-first,
                # identically to the batched engine.
                top = np.argsort(-scored, kind="stable")[: max(beams_per_group * 2, 2)]
                for token in top:
                    token = int(token)
                    if not np.isfinite(log_probabilities[token]):
                        continue
                    candidate = _Beam(
                        tokens=beam.tokens + [token],
                        # Score with the *unpenalised* log-probability: the
                        # penalty only shapes the search, not the ranking.
                        score=beam.score + float(log_probabilities[token]),
                        state=new_state,
                        finished=(token == eos_id),
                    )
                    candidates.append(candidate)
            if not candidates:
                continue
            candidates.sort(key=lambda beam: beam.score, reverse=True)
            selected: list[_Beam] = []
            for candidate in candidates:
                if len(selected) >= beams_per_group:
                    break
                selected.append(candidate)
                if not candidate.finished and candidate.tokens:
                    token = candidate.tokens[-1]
                    tokens_chosen_this_step[token] = tokens_chosen_this_step.get(token, 0) + 1
            groups[group_index] = selected
        if not any_active:
            break

    return _finalize_groups(groups, eos_id, length_penalty, num_beams)


def diverse_beam_search_batch(model: Seq2SeqModel, encoded_batch: "list[EncodedSource]",
                              bos_id: int, eos_id: int,
                              num_beams: int = 10, num_groups: int = 10,
                              diversity_penalty: float = 2.0, max_length: int = 48,
                              constraint: Constraint | None = None,
                              length_penalty: float = 0.0) -> list[list[BeamHypothesis]]:
    """Diverse beam search over a whole micro-batch of questions at once.

    Per step, the active beams of *all* groups of *all* questions advance
    through one stacked
    :meth:`~repro.nn.seq2seq.Seq2SeqModel.decode_step_numpy_batch` call
    against their zero-padded encoder memories -- every beam's kernel inputs
    (state, previous token) are fixed before any group selects, so a single
    call per step is exact.  Constraint masks apply as one ``np.where`` over
    the stacked rows.  Group-sequential Hamming diversity is preserved
    exactly: groups still *select* in order within a step, each later group
    scoring against its question's tally of tokens the earlier groups chose.
    Beam bookkeeping (tokens, lengths, scores, states, finished flags) lives
    in flat numpy arrays.

    Returns one hypothesis list per question, bit-identical to
    :func:`diverse_beam_search_loop` on the same inputs.
    """
    beams_per_group = _validate_beam_budget(num_beams, num_groups)
    num_questions = len(encoded_batch)
    if num_questions == 0:
        return []
    hidden = encoded_batch[0].state.shape[0]
    vocab_size = model.config.target_vocab_size
    padded_length = max(encoded.memory.shape[0] for encoded in encoded_batch)
    memory = np.zeros((num_questions, padded_length, hidden))
    memory_mask = np.zeros((num_questions, padded_length), dtype=bool)
    for question, encoded in enumerate(encoded_batch):
        true_length = encoded.memory.shape[0]
        memory[question, :true_length] = encoded.memory
        memory_mask[question, :true_length] = np.asarray(encoded.mask) != 0.0
    # The kernel's attention pooling wants memory with a ones column appended
    # (the attention normalizer rides the same einsum); build it once here so
    # each step only gathers rows instead of re-concatenating.
    augmented_memory = np.concatenate(
        [memory, np.ones((num_questions, padded_length, 1))], axis=2)

    # Flat per-(question, group, slot) bookkeeping.  ``alive`` counts the
    # slots in use per group (1 at the start, up to ``beams_per_group`` after
    # the first selection).
    shape = (num_questions, num_groups, beams_per_group)
    tokens = np.zeros(shape + (max_length,), dtype=np.int64)
    lengths = np.zeros(shape, dtype=np.int64)
    scores = np.zeros(shape, dtype=np.float64)
    states = np.zeros(shape + (hidden,), dtype=np.float64)
    finished = np.zeros(shape, dtype=bool)
    alive = np.ones((num_questions, num_groups), dtype=np.int64)
    for question, encoded in enumerate(encoded_batch):
        states[question, :, 0] = encoded.state

    top_n = max(beams_per_group * 2, 2)
    # Scratch buffers reused by every (question, group) selection write-back.
    # Slots beyond a beam's recorded length may hold stale tokens; no reader
    # ever looks past ``lengths``.
    scratch_tokens = np.zeros((beams_per_group, max_length), dtype=np.int64)
    scratch_lengths = np.zeros(beams_per_group, dtype=np.int64)
    scratch_scores = np.zeros(beams_per_group, dtype=np.float64)
    scratch_states = np.zeros((beams_per_group, hidden), dtype=np.float64)
    scratch_finished = np.zeros(beams_per_group, dtype=bool)

    def score_of(candidate: tuple) -> float:
        return candidate[0]

    for _ in range(max_length):
        # Python-list snapshots of the step-start bookkeeping: selection only
        # ever reads pre-step values (the scratch write-back below is the sole
        # writer), and plain lists are an order of magnitude faster than numpy
        # scalar indexing in the per-beam loops.
        alive_list = alive.tolist()
        finished_list = finished.tolist()
        scores_list = scores.tolist()
        lengths_list = lengths.tolist()

        # Stack the active beams of every (question, group), ordered so each
        # group occupies one contiguous block of rows.  All kernel inputs are
        # fixed at step start -- selection within a group only decides which
        # beams survive into the *next* step -- so one stacked call serves
        # every group of the step.
        row_question: list[int] = []
        row_beam: list[int] = []
        row_group: list[int] = []
        group_bounds: list[tuple[int, int]] = []
        row_lookup: dict[tuple[int, int, int], int] = {}
        for group in range(num_groups):
            start = len(row_question)
            for question in range(num_questions):
                question_finished = finished_list[question][group]
                for beam in range(alive_list[question][group]):
                    if not question_finished[beam]:
                        row_lookup[group, question, beam] = len(row_question)
                        row_question.append(question)
                        row_beam.append(beam)
                        row_group.append(group)
            group_bounds.append((start, len(row_question)))
        if not row_question:
            break
        question_index = np.asarray(row_question, dtype=np.int64)
        beam_index = np.asarray(row_beam, dtype=np.int64)
        group_index = np.asarray(row_group, dtype=np.int64)
        row_lengths = lengths[question_index, group_index, beam_index]
        previous = np.where(
            row_lengths > 0,
            tokens[question_index, group_index, beam_index,
                   np.maximum(row_lengths - 1, 0)],
            bos_id)
        log_probabilities, step_states = model.decode_step_numpy_batch(
            memory[question_index], memory_mask[question_index],
            states[question_index, group_index, beam_index], previous,
            augmented_memory=augmented_memory[question_index])

        if constraint is not None:
            # Constraints are pure functions of the prefix, so rows sharing a
            # prefix (e.g. every group at step 0) share one mask lookup.
            row_masks = np.ones_like(log_probabilities, dtype=bool)
            constrain_rows = False
            mask_memo: dict[tuple[int, ...], np.ndarray | None] = {}
            for row, (question, group, beam) in enumerate(
                    zip(row_question, row_group, row_beam)):
                prefix = tokens[question, group, beam,
                                :lengths_list[question][group][beam]].tolist()
                key = tuple(prefix)
                if key in mask_memo:
                    mask = mask_memo[key]
                else:
                    mask = _constraint_mask(constraint, prefix, vocab_size, eos_id)
                    mask_memo[key] = mask
                if mask is not None:
                    row_masks[row] = mask
                    constrain_rows = True
            if constrain_rows:
                log_probabilities = np.where(row_masks, log_probabilities, -np.inf)

        chosen: list[dict[int, int]] = [{} for _ in range(num_questions)]
        for group in range(num_groups):
            start, stop = group_bounds[group]
            if start == stop:
                continue
            block_logp = log_probabilities[start:stop]
            scored = block_logp
            if diversity_penalty > 0.0:
                penalised = None
                penalty_of: dict[int, np.ndarray] = {}
                for block_row in range(stop - start):
                    question = row_question[start + block_row]
                    if not chosen[question]:
                        continue
                    if penalised is None:
                        penalised = block_logp.copy()
                    penalty = penalty_of.get(question)
                    if penalty is None:
                        penalty = np.zeros(vocab_size)
                        for token, count in chosen[question].items():
                            penalty[token] = diversity_penalty * count
                        penalty_of[question] = penalty
                    penalised[block_row] = block_logp[block_row] - penalty
                if penalised is not None:
                    scored = penalised

            # One stable descending argsort across the group's rows: ties
            # resolve lowest-token-id-first, identically to the loop path.
            order = np.argsort(-scored, axis=1, kind="stable")[:, :top_n]
            order_list = order.tolist()
            # ``.tolist()`` preserves every bit: the Python floats compare and
            # add exactly like the float64 array elements they came from.
            values_list = np.take_along_axis(block_logp, order, axis=1).tolist()

            # Per-question candidate selection (cheap Python: ~2x beam budget
            # candidates per beam), preserving the loop path's enumeration
            # order so stable sorting breaks ties identically.  A candidate is
            # (score, token, parent_beam, kernel_row); token -1 marks a
            # finished beam passing through unchanged.
            for question in range(num_questions):
                candidates: list[tuple[float, int, int, int]] = []
                has_active = False
                question_scores = scores_list[question][group]
                question_finished = finished_list[question][group]
                for beam in range(alive_list[question][group]):
                    if question_finished[beam]:
                        candidates.append((question_scores[beam], -1, beam, -1))
                        continue
                    has_active = True
                    block_row = row_lookup[group, question, beam] - start
                    parent_score = question_scores[beam]
                    row_values = values_list[block_row]
                    row_order = order_list[block_row]
                    for position in range(top_n):
                        value = row_values[position]
                        if not math.isfinite(value):
                            continue
                        candidates.append((parent_score + value,
                                           row_order[position],
                                           beam,
                                           start + block_row))
                if not candidates or not has_active:
                    continue
                candidates.sort(key=score_of, reverse=True)
                selected = candidates[:beams_per_group]
                for slot, (score, token, parent, row) in enumerate(selected):
                    parent_length = lengths_list[question][group][parent]
                    scratch_tokens[slot, :parent_length] = \
                        tokens[question, group, parent, :parent_length]
                    if token < 0:
                        # A finished beam passing through unchanged.
                        scratch_lengths[slot] = parent_length
                        scratch_scores[slot] = question_scores[parent]
                        scratch_states[slot] = states[question, group, parent]
                        scratch_finished[slot] = True
                        continue
                    scratch_tokens[slot, parent_length] = token
                    scratch_lengths[slot] = parent_length + 1
                    scratch_scores[slot] = score
                    scratch_states[slot] = step_states[row]
                    scratch_finished[slot] = token == eos_id
                    if token != eos_id:
                        chosen[question][token] = chosen[question].get(token, 0) + 1
                count = len(selected)
                tokens[question, group, :count] = scratch_tokens[:count]
                lengths[question, group, :count] = scratch_lengths[:count]
                scores[question, group, :count] = scratch_scores[:count]
                states[question, group, :count] = scratch_states[:count]
                finished[question, group, :count] = scratch_finished[:count]
                alive[question, group] = count

    results: list[list[BeamHypothesis]] = []
    for question in range(num_questions):
        groups_out: list[list[_Beam]] = []
        for group in range(num_groups):
            group_beams: list[_Beam] = []
            for beam in range(alive[question, group]):
                length = int(lengths[question, group, beam])
                group_beams.append(_Beam(
                    tokens=tokens[question, group, beam, :length].tolist(),
                    score=float(scores[question, group, beam]),
                    finished=bool(finished[question, group, beam])))
            groups_out.append(group_beams)
        results.append(_finalize_groups(groups_out, eos_id, length_penalty, num_beams))
    return results
