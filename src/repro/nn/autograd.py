"""A minimal reverse-mode automatic differentiation engine on numpy arrays.

Only the operations required by the Seq2Seq router are implemented: broadcast
add/multiply, matrix multiplication (2-D and batched 3-D), tanh/sigmoid,
softmax, concatenation, embedding lookup, summation/mean, and a fused
softmax-cross-entropy loss.  Each operation records a backward closure; calling
:meth:`Tensor.backward` runs them in reverse topological order.

The engine favours clarity over generality -- it is the substrate for a model
with a few hundred thousand parameters, not a general deep-learning framework.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

Array = np.ndarray


def _as_array(value: "Tensor | Array | float | int") -> Array:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: Array, shape: tuple[int, ...]) -> Array:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were expanded from size one.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an optional gradient and a backward closure."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data: Array | float | int | Sequence[float],
        requires_grad: bool = False,
        parents: tuple["Tensor", ...] = (),
        backward: Callable[[Array], None] | None = None,
        name: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Array | None = None
        self.requires_grad = requires_grad
        self._parents = parents
        self._backward = backward
        self.name = name

    # -- basic protocol -----------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}, name={self.name!r})"

    def item(self) -> float:
        return float(self.data)

    def accumulate_grad(self, grad: Array) -> None:
        grad = np.asarray(grad, dtype=np.float64)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        self.grad = None

    # -- graph construction helpers --------------------------------------------
    @staticmethod
    def _make(data: Array, parents: tuple["Tensor", ...],
              backward: Callable[[Array], None]) -> "Tensor":
        requires = any(parent.requires_grad for parent in parents)
        return Tensor(data, requires_grad=requires,
                      parents=parents if requires else (),
                      backward=backward if requires else None)

    # -- arithmetic ---------------------------------------------------------------
    def __add__(self, other: "Tensor | Array | float") -> "Tensor":
        other_tensor = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data + other_tensor.data

        def backward(grad: Array) -> None:
            if self.requires_grad:
                self.accumulate_grad(_unbroadcast(grad, self.shape))
            if other_tensor.requires_grad:
                other_tensor.accumulate_grad(_unbroadcast(grad, other_tensor.shape))

        return Tensor._make(out_data, (self, other_tensor), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad: Array) -> None:
            if self.requires_grad:
                self.accumulate_grad(-grad)

        return Tensor._make(out_data, (self,), backward)

    def __sub__(self, other: "Tensor | Array | float") -> "Tensor":
        other_tensor = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        return self + (-other_tensor)

    def __mul__(self, other: "Tensor | Array | float") -> "Tensor":
        other_tensor = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data * other_tensor.data

        def backward(grad: Array) -> None:
            if self.requires_grad:
                self.accumulate_grad(_unbroadcast(grad * other_tensor.data, self.shape))
            if other_tensor.requires_grad:
                other_tensor.accumulate_grad(_unbroadcast(grad * self.data, other_tensor.shape))

        return Tensor._make(out_data, (self, other_tensor), backward)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Tensor":
        return self * (1.0 / float(scalar))

    # -- matrix products --------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        """2-D matrix multiplication ``(m, k) @ (k, n)``."""
        out_data = self.data @ other.data

        def backward(grad: Array) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad @ other.data.T)
            if other.requires_grad:
                other.accumulate_grad(self.data.T @ grad)

        return Tensor._make(out_data, (self, other), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    def bmm(self, other: "Tensor") -> "Tensor":
        """Batched matrix multiplication ``(b, m, k) @ (b, k, n)``."""
        out_data = np.matmul(self.data, other.data)

        def backward(grad: Array) -> None:
            if self.requires_grad:
                self.accumulate_grad(np.matmul(grad, np.transpose(other.data, (0, 2, 1))))
            if other.requires_grad:
                other.accumulate_grad(np.matmul(np.transpose(self.data, (0, 2, 1)), grad))

        return Tensor._make(out_data, (self, other), backward)

    # -- shape manipulation ----------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(*shape)
        original_shape = self.shape

        def backward(grad: Array) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad.reshape(original_shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose_last_two(self) -> "Tensor":
        """Swap the last two axes (used for attention scores)."""
        axes = list(range(self.ndim))
        axes[-1], axes[-2] = axes[-2], axes[-1]
        out_data = np.transpose(self.data, axes)

        def backward(grad: Array) -> None:
            if self.requires_grad:
                self.accumulate_grad(np.transpose(grad, axes))

        return Tensor._make(out_data, (self,), backward)

    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = -1) -> "Tensor":
        out_data = np.concatenate([tensor.data for tensor in tensors], axis=axis)
        sizes = [tensor.data.shape[axis] for tensor in tensors]

        def backward(grad: Array) -> None:
            offsets = np.cumsum([0] + sizes)
            for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, end)
                    tensor.accumulate_grad(grad[tuple(slicer)])

        return Tensor._make(out_data, tuple(tensors), backward)

    # -- reductions ---------------------------------------------------------------------------
    def sum(self) -> "Tensor":
        out_data = np.asarray(self.data.sum())
        shape = self.shape

        def backward(grad: Array) -> None:
            if self.requires_grad:
                self.accumulate_grad(np.broadcast_to(grad, shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean_over_axis(self, axis: int, keepdims: bool = False) -> "Tensor":
        out_data = self.data.mean(axis=axis, keepdims=keepdims)
        count = self.data.shape[axis]
        shape = self.shape

        def backward(grad: Array) -> None:
            if self.requires_grad:
                expanded = grad if keepdims else np.expand_dims(grad, axis=axis)
                self.accumulate_grad(np.broadcast_to(expanded / count, shape).copy())

        return Tensor._make(out_data, (self,), backward)

    # -- nonlinearities -------------------------------------------------------------------------
    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: Array) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: Array) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: Array) -> None:
            if self.requires_grad:
                self.accumulate_grad(grad * (self.data > 0.0))

        return Tensor._make(out_data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: Array) -> None:
            if self.requires_grad:
                dot = (grad * out_data).sum(axis=axis, keepdims=True)
                self.accumulate_grad(out_data * (grad - dot))

        return Tensor._make(out_data, (self,), backward)

    # -- indexing -------------------------------------------------------------------------------
    def embedding_lookup(self, indices: Array) -> "Tensor":
        """Gather rows of a 2-D parameter matrix: ``self[indices]``.

        ``indices`` may have any shape; the result has shape
        ``indices.shape + (embedding_dim,)``.
        """
        indices = np.asarray(indices, dtype=np.int64)
        out_data = self.data[indices]
        vocab_size, dim = self.data.shape

        def backward(grad: Array) -> None:
            if self.requires_grad:
                accum = np.zeros((vocab_size, dim), dtype=np.float64)
                np.add.at(accum, indices.reshape(-1), grad.reshape(-1, dim))
                self.accumulate_grad(accum)

        return Tensor._make(out_data, (self,), backward)

    # -- losses ----------------------------------------------------------------------------------
    def cross_entropy(self, targets: Array, mask: Array | None = None) -> "Tensor":
        """Fused softmax + cross-entropy over the last axis.

        ``self`` holds logits of shape ``(..., vocab)``, ``targets`` integer
        class ids of shape ``(...)`` and ``mask`` an optional 0/1 array of the
        same shape.  Returns the mean loss over unmasked positions.
        """
        targets = np.asarray(targets, dtype=np.int64)
        logits = self.data
        flat_logits = logits.reshape(-1, logits.shape[-1])
        flat_targets = targets.reshape(-1)
        if mask is None:
            flat_mask = np.ones_like(flat_targets, dtype=np.float64)
        else:
            flat_mask = np.asarray(mask, dtype=np.float64).reshape(-1)
        total = max(flat_mask.sum(), 1.0)

        shifted = flat_logits - flat_logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probabilities = exp / exp.sum(axis=1, keepdims=True)
        picked = probabilities[np.arange(flat_targets.shape[0]), flat_targets]
        losses = -np.log(np.clip(picked, 1e-12, None)) * flat_mask
        out_data = np.asarray(losses.sum() / total)

        def backward(grad: Array) -> None:
            if self.requires_grad:
                delta = probabilities.copy()
                delta[np.arange(flat_targets.shape[0]), flat_targets] -= 1.0
                delta *= (flat_mask / total)[:, None]
                self.accumulate_grad(float(grad) * delta.reshape(logits.shape))

        return Tensor._make(out_data, (self,), backward)

    # -- backward pass ------------------------------------------------------------------------------
    def backward(self, grad: Array | float | None = None) -> None:
        """Back-propagate from this tensor (typically a scalar loss)."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)

        ordering = _topological_order(self)
        self.accumulate_grad(grad)
        for node in reversed(ordering):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)


def _topological_order(root: Tensor) -> list[Tensor]:
    order: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    return order


def stack_rows(tensors: Iterable[Tensor]) -> Tensor:
    """Stack 1-D/2-D step outputs along a new first axis (used rarely; kept simple)."""
    tensor_list = list(tensors)
    out_data = np.stack([tensor.data for tensor in tensor_list], axis=0)

    def backward(grad: Array) -> None:
        for index, tensor in enumerate(tensor_list):
            if tensor.requires_grad:
                tensor.accumulate_grad(grad[index])

    return Tensor._make(out_data, tuple(tensor_list), backward)
