"""Parameterised modules built on the autograd engine."""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

import numpy as np

from repro.nn.autograd import Tensor
from repro.utils.rng import SeededRng


class Parameter(Tensor):
    """A tensor that is always trainable."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class providing recursive parameter discovery and state I/O."""

    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its sub-modules."""
        seen: set[int] = set()
        for value in vars(self).values():
            yield from _parameters_of(value, seen)

    def named_parameters(self) -> Iterator[tuple[str, Parameter]]:
        seen: set[int] = set()
        for name, value in vars(self).items():
            for sub_name, parameter in _named_parameters_of(value, seen):
                yield (f"{name}{sub_name}", parameter)

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        return sum(parameter.data.size for parameter in self.parameters())

    # -- persistence ----------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        parameters = dict(self.named_parameters())
        missing = set(parameters) - set(state)
        unexpected = set(state) - set(parameters)
        if missing or unexpected:
            raise ValueError(f"state mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, parameter in parameters.items():
            if parameter.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {parameter.data.shape} vs {state[name].shape}"
                )
            parameter.data = state[name].copy()

    def save_state_npz(self, path: str | Path) -> Path:
        """Write the state dict to a compressed ``.npz`` archive.

        Returns the actual file written: numpy appends ``.npz`` to names that
        lack it, so the suffix is normalised up front.
        """
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_name(path.name + ".npz")
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(path, **self.state_dict())
        return path

    def load_state_npz(self, path: str | Path) -> None:
        """Load parameters saved with :meth:`save_state_npz` (strict)."""
        with np.load(Path(path)) as archive:
            self.load_state_dict({name: archive[name] for name in archive.files})


def _parameters_of(value: object, seen: set[int]) -> Iterator[Parameter]:
    if isinstance(value, Parameter):
        if id(value) not in seen:
            seen.add(id(value))
            yield value
    elif isinstance(value, Module):
        for parameter in value.parameters():
            if id(parameter) not in seen:
                seen.add(id(parameter))
                yield parameter
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _parameters_of(item, seen)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _parameters_of(item, seen)


def _named_parameters_of(value: object, seen: set[int]) -> Iterator[tuple[str, Parameter]]:
    if isinstance(value, Parameter):
        if id(value) not in seen:
            seen.add(id(value))
            yield ("", value)
    elif isinstance(value, Module):
        for name, parameter in value.named_parameters():
            if id(parameter) not in seen:
                seen.add(id(parameter))
                yield (f".{name}", parameter)
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            for name, parameter in _named_parameters_of(item, seen):
                yield (f"[{index}]{name}", parameter)
    elif isinstance(value, dict):
        for key, item in value.items():
            for name, parameter in _named_parameters_of(item, seen):
                yield (f"[{key}]{name}", parameter)


def _glorot(rng: SeededRng, fan_in: int, fan_out: int, shape: tuple[int, ...]) -> np.ndarray:
    scale = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.numpy.uniform(-scale, scale, size=shape)


class Linear(Module):
    """Affine layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: SeededRng,
                 bias: bool = True, name: str = "linear") -> None:
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_glorot(rng, in_features, out_features,
                                        (in_features, out_features)), name=f"{name}.weight")
        self.bias = Parameter(np.zeros(out_features), name=f"{name}.bias") if bias else None

    def __call__(self, inputs: Tensor) -> Tensor:
        flattened = inputs
        original_shape = inputs.shape
        if inputs.ndim > 2:
            flattened = inputs.reshape(-1, original_shape[-1])
        outputs = flattened @ self.weight
        if self.bias is not None:
            outputs = outputs + self.bias
        if inputs.ndim > 2:
            outputs = outputs.reshape(*original_shape[:-1], self.out_features)
        return outputs


class Embedding(Module):
    """Token-embedding table."""

    def __init__(self, num_embeddings: int, embedding_dim: int, rng: SeededRng,
                 name: str = "embedding") -> None:
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(rng.normal((num_embeddings, embedding_dim), scale=0.1),
                                name=f"{name}.weight")

    def __call__(self, indices: np.ndarray) -> Tensor:
        return self.weight.embedding_lookup(np.asarray(indices, dtype=np.int64))
