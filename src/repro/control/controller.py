"""The feedback controller: observed load in, corrective actions out.

:class:`Controller` closes ROADMAP item 3's loop over the PR-6/PR-7
instrumentation.  Each :meth:`tick` reads one cluster ``stats()`` snapshot
(plus, when riding a :class:`repro.obs.Monitor`, the SLO engine's burn-rate
status) and drives three actuators:

* **admission feedback** — the max fast-window SLO burn is fed to the
  serving front's :class:`~repro.control.admission.AdmissionController`,
  which enters or leaves shedding mode under its own hysteresis;
* **adaptive escalation** — cumulative request/escalation counters feed the
  :class:`~repro.control.adaptive.AdaptiveEscalationGate`, and the learned
  threshold is applied to the cluster dispatcher;
* **rebalancer feedback** — the per-database routed-load window (which
  databases are *winning* questions right now) decides shard moves executed
  through :class:`repro.cluster.ClusterRebalancer`.

Rebalance semantics: in a scatter-gather cluster every shard sees every
question, so a shard is *hot* when its catalog owns the traffic's answers —
its cost is decoding hot questions over its whole catalog slice.  A **split**
therefore moves the hot shard's *coldest* database to the coldest shard,
shrinking the catalog its hot traffic decodes over (isolating the hot set);
a **merge** consolidates two near-idle shards by moving a database from the
coldest onto the second-coldest.  Flapping is impossible by construction:
actions respect a global ``hysteresis_seconds`` spacing, a moved database
cannot move again for ``database_cooldown_seconds``, and the hot/cold
thresholds leave a deadband between them.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.control.adaptive import AdaptiveEscalationConfig, AdaptiveEscalationGate
from repro.control.admission import AdmissionController


@dataclass(frozen=True)
class ControllerConfig:
    """Dynamics and guardrails of one controller."""

    #: Minimum seconds between rebalance actions (the hysteresis window).
    hysteresis_seconds: float = 60.0
    #: A database that just moved may not move again for this long.
    database_cooldown_seconds: float = 300.0
    #: A shard is hot when its routed-load share reaches this multiple of
    #: the fair share (1 / num_shards)...
    hot_factor: float = 2.0
    #: ...and cold below this multiple (the gap is the deadband).
    cold_factor: float = 0.25
    #: No rebalancing below this cluster-wide window QPS: an idle cluster
    #: has no load worth moving.
    min_window_qps: float = 1.0
    enable_rebalance: bool = True
    #: Run the adaptive escalation gate (requires a cluster with a careful
    #: tier; silently inert otherwise).
    adaptive_escalation: bool = True
    escalation: AdaptiveEscalationConfig = field(
        default_factory=AdaptiveEscalationConfig)
    #: SLO severities whose fast burn feeds admission shedding.
    burn_severities: tuple[str, ...] = ("page",)
    #: Bound of the retained action journal.
    max_actions: int = 64

    def __post_init__(self) -> None:
        if self.hysteresis_seconds <= 0:
            raise ValueError("hysteresis_seconds must be positive")
        if self.database_cooldown_seconds < 0:
            raise ValueError("database_cooldown_seconds must be non-negative")
        if self.cold_factor >= self.hot_factor:
            raise ValueError("need cold_factor < hot_factor (the deadband)")
        if self.cold_factor <= 0:
            raise ValueError("cold_factor must be positive")
        if self.min_window_qps < 0:
            raise ValueError("min_window_qps must be non-negative")
        if self.max_actions < 1:
            raise ValueError("max_actions must be >= 1")


class Controller:
    """Workload-adaptive control over one cluster (and its serving front).

    ``rebalancer`` is any object with ``move_database(database, shard_id)``
    (normally a :class:`repro.cluster.ClusterRebalancer`); None disables the
    rebalance actuator.  ``admission`` is the serving front's controller to
    feed burn into; None disables admission feedback.  Drive :meth:`tick`
    directly (tests, benches), or :meth:`attach` to a running
    :class:`repro.obs.Monitor` so every monitor tick feeds a controller tick.
    """

    def __init__(self, cluster, rebalancer=None,
                 admission: AdmissionController | None = None,
                 config: ControllerConfig | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.cluster = cluster
        self.rebalancer = rebalancer
        self.admission = admission
        self.config = config or ControllerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self.gate: AdaptiveEscalationGate | None = None
        if self.config.adaptive_escalation:
            dispatcher = getattr(cluster, "dispatcher", None)
            current = getattr(dispatcher, "escalation_threshold", None)
            if current is not None:
                self.gate = AdaptiveEscalationGate(self.config.escalation,
                                                   initial_threshold=current)
        self.ticks = 0
        self.tick_errors = 0
        self.last_error: str | None = None
        self._actions: deque[dict] = deque(maxlen=self.config.max_actions)
        self._last_action_at: float | None = None
        self._db_moved_at: dict[str, float] = {}
        self._last_burn = 0.0

    # -- riding the monitor --------------------------------------------------
    def attach(self, monitor) -> "Controller":
        """Subscribe to a :class:`repro.obs.Monitor`: every tick's evaluation
        (snapshot + SLO status) becomes one controller tick."""
        monitor.add_observer(self._on_monitor_tick)
        return self

    def _on_monitor_tick(self, latest: dict) -> None:
        self.tick(snapshot=latest.get("snapshot"),
                  slo_status=latest.get("slo"))

    # -- one control pass ----------------------------------------------------
    def tick(self, snapshot: dict | None = None,
             slo_status: list | None = None) -> dict:
        """Observe once, act at most once; never raises.

        Returns what it did: the burn fed to admission, the escalation
        threshold in force, and any rebalance action taken.
        """
        outcome = {"burn": None, "escalation_threshold": None, "action": None}
        try:
            if snapshot is None:
                snapshot = self.cluster.stats()
            outcome["burn"] = self._feed_admission(slo_status)
            outcome["escalation_threshold"] = self._adapt_escalation(snapshot)
            if self.config.enable_rebalance and self.rebalancer is not None:
                outcome["action"] = self._rebalance(snapshot)
        except Exception as error:
            with self._lock:
                self.tick_errors += 1
                self.last_error = f"{type(error).__name__}: {error}"
        with self._lock:
            self.ticks += 1
        return outcome

    # -- actuator: admission feedback ----------------------------------------
    def _feed_admission(self, slo_status: list | None) -> float | None:
        if self.admission is None or not slo_status:
            return None
        burns = [float(status.get("fast_burn", 0.0)) for status in slo_status
                 if status.get("severity") in self.config.burn_severities]
        if not burns:
            return None
        burn = max(burns)
        self.admission.observe_burn(burn)
        with self._lock:
            self._last_burn = burn
        return burn

    # -- actuator: adaptive escalation ---------------------------------------
    def _adapt_escalation(self, snapshot: dict) -> float | None:
        if self.gate is None:
            return None
        requests = int((snapshot.get("counters") or {}).get("requests", 0))
        escalations = int((snapshot.get("dispatcher") or {}).get("escalations", 0))
        threshold = self.gate.observe_cumulative(requests, escalations)
        if threshold is None:
            return self.gate.threshold
        dispatcher = self.cluster.dispatcher
        if abs(threshold - dispatcher.escalation_threshold) > 1e-12:
            dispatcher.set_escalation_threshold(threshold)
        return threshold

    # -- actuator: rebalancer feedback ---------------------------------------
    def _rebalance(self, snapshot: dict) -> dict | None:
        load = snapshot.get("routing_load") or {}
        per_database = load.get("per_database") or {}
        total = sum(per_database.values())
        assignment = snapshot.get("assignment") or []
        num_shards = len(assignment)
        if total <= 0 or num_shards < 2:
            return None
        if float(snapshot.get("qps_window", 0.0)) < self.config.min_window_qps:
            return None
        now = self._clock()
        with self._lock:
            if (self._last_action_at is not None
                    and now - self._last_action_at < self.config.hysteresis_seconds):
                return None
        per_shard = [sum(per_database.get(name, 0) for name in shard)
                     for shard in assignment]
        fair = total / num_shards
        decision = (self._plan_split(assignment, per_database, per_shard, fair, now)
                    or self._plan_merge(assignment, per_database, per_shard,
                                        fair, now))
        if decision is None:
            return None
        kind, database, source, target = decision
        action = {
            "at": round(now, 3),
            "kind": kind,
            "database": database,
            "from_shard": source,
            "to_shard": target,
            "share": round(per_shard[source] / total, 4),
            "stage_p95_ms": {name: summary.get("p95_ms")
                             for name, summary in
                             sorted((snapshot.get("stages") or {}).items())},
        }
        try:
            self.rebalancer.move_database(database, target)
        except Exception as error:
            action["status"] = "error"
            action["error"] = f"{type(error).__name__}: {error}"
        else:
            action["status"] = "ok"
            with self._lock:
                self._db_moved_at[database] = now
        with self._lock:
            self._actions.append(action)
            self._last_action_at = now
        return action

    def _movable(self, database: str, now: float) -> bool:
        with self._lock:
            moved_at = self._db_moved_at.get(database)
        return (moved_at is None
                or now - moved_at >= self.config.database_cooldown_seconds)

    def _coldest_database(self, databases, per_database: dict,
                          now: float) -> str | None:
        """The least-routed movable database (ties break lexicographically)."""
        candidates = [(per_database.get(name, 0), name) for name in databases
                      if self._movable(name, now)]
        if not candidates:
            return None
        return min(candidates)[1]

    def _plan_split(self, assignment, per_database, per_shard, fair,
                    now) -> tuple | None:
        """Hot shard => move its coldest database to the coldest shard."""
        hot = max(range(len(per_shard)), key=lambda index: per_shard[index])
        if per_shard[hot] < self.config.hot_factor * fair:
            return None
        if len(assignment[hot]) < 2:
            return None  # a single-database shard cannot be split further
        database = self._coldest_database(assignment[hot], per_database, now)
        if database is None:
            return None
        target = min((index for index in range(len(per_shard)) if index != hot),
                     key=lambda index: (per_shard[index], index))
        return ("split", database, hot, target)

    def _plan_merge(self, assignment, per_database, per_shard, fair,
                    now) -> tuple | None:
        """Two near-idle shards => consolidate one database between them."""
        by_load = sorted(range(len(per_shard)),
                         key=lambda index: (per_shard[index], index))
        coldest, second = by_load[0], by_load[1]
        ceiling = self.config.cold_factor * fair
        if per_shard[coldest] >= ceiling or per_shard[second] >= ceiling:
            return None
        if not assignment[coldest]:
            return None  # already drained
        database = self._coldest_database(assignment[coldest], per_database, now)
        if database is None:
            return None
        return ("merge", database, coldest, second)

    # -- introspection -------------------------------------------------------
    def actions(self) -> list[dict]:
        with self._lock:
            return [dict(action) for action in self._actions]

    def stats(self) -> dict:
        with self._lock:
            actions = [dict(action) for action in self._actions]
            last_action_at = self._last_action_at
            burn = self._last_burn
            ticks = self.ticks
            tick_errors = self.tick_errors
            last_error = self.last_error
        return {
            "ticks": ticks,
            "tick_errors": tick_errors,
            "last_error": last_error,
            "last_action_at": last_action_at,
            "actions": actions,
            "splits": sum(1 for action in actions
                          if action["kind"] == "split" and action["status"] == "ok"),
            "merges": sum(1 for action in actions
                          if action["kind"] == "merge" and action["status"] == "ok"),
            "last_burn": round(burn, 4),
            "escalation": self.gate.stats() if self.gate is not None else None,
            "admission": (self.admission.stats()
                          if self.admission is not None else None),
        }
