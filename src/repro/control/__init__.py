"""The workload-adaptive control plane (ROADMAP item 3).

PR 6 made the system observable, PR 7 made it judge itself; this package
makes it *react*:

* :mod:`repro.control.admission` — token-bucket + queue-depth/burn-gated
  admission at the serving front, so overload degrades to bounded-latency
  shedding (a typed, fast :class:`AdmissionRejected`) instead of collapse;
* :mod:`repro.control.adaptive` — the escalation confidence gate learned
  from routed traffic (EWMA rate control inside frozen bounds) instead of
  the fixed 0.8;
* :mod:`repro.control.controller` — the :class:`Controller` closing the
  loop each monitor tick: SLO burn into admission, escalation counters into
  the adaptive gate, and the per-database routed-load window into
  :class:`repro.cluster.ClusterRebalancer` under hysteresis.
"""

from repro.control.admission import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionRejected,
    REJECT_REASONS,
)
from repro.control.adaptive import AdaptiveEscalationConfig, AdaptiveEscalationGate
from repro.control.controller import Controller, ControllerConfig

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionRejected",
    "REJECT_REASONS",
    "AdaptiveEscalationConfig",
    "AdaptiveEscalationGate",
    "Controller",
    "ControllerConfig",
]
