"""Admission control: token-bucket + pressure-gated load shedding.

Overload should degrade to *bounded-latency shedding*, not collapse: once a
service is saturated, every extra admitted request only lengthens the queue
everyone else waits in.  The :class:`AdmissionController` sits at the
:class:`repro.serving.RoutingService` front and decides, per request (or per
wave), whether to admit the decode or reject it immediately with a typed
:class:`AdmissionRejected` — a fast, allocation-light failure the client can
retry against ``retry_after_seconds``.

Three gates, all optional, judged in cheapest-first order:

1. **Queue depth** — the micro-batcher backlog relative to its batch
   capacity.  A backlog several batches deep means admitted work would sit
   in line anyway; rejecting it keeps the queue (and therefore admitted
   latency) bounded.  This is the PR-7 queue-depth health signal acting
   instead of merely reporting.
2. **Burn-rate shedding** — the controller (or any monitor observer) feeds
   SLO fast-window burn via :meth:`observe_burn`.  At ``shed_burn`` the
   controller enters *shedding mode* and admits only every
   ``shed_admit_every``-th request (deterministic, so tests need no
   randomness); it leaves shedding only after the burn drops below
   ``recover_burn`` **and** ``min_shed_seconds`` have passed — hysteresis,
   so a burn flickering around the threshold cannot flap the mode.
3. **Token bucket** — a hard admitted-QPS ceiling with ``burst_requests``
   of headroom, refilled continuously on an injectable clock.

Cache hits never reach this module: the service admits *decodes*, because a
hit costs microseconds and shedding it would hurt the client without
protecting anything.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable


class AdmissionRejected(RuntimeError):
    """A request the admission controller refused to let in.

    ``reason`` is machine-readable (``"queue_depth"`` / ``"burn_rate"`` /
    ``"rate_limit"``); ``retry_after_seconds`` is the token-bucket refill
    estimate when the bucket was the gate that closed (None otherwise).
    """

    def __init__(self, reason: str, message: str,
                 retry_after_seconds: float | None = None) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after_seconds = retry_after_seconds


#: Rejection reasons, in the order the gates are judged.
REJECT_REASONS = ("queue_depth", "burn_rate", "rate_limit")


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs of one admission controller (frozen, like every policy here)."""

    #: Admitted-decode QPS ceiling for the token bucket; None disables it.
    max_qps: float | None = None
    #: Bucket capacity in requests — how deep a burst may draw ahead of the
    #: refill rate before rejections start.
    burst_requests: float = 16.0
    #: Shed when the batcher backlog reaches this multiple of the batch
    #: capacity; None disables the queue gate.  Sits between the health
    #: policy's degraded (2x) and failing (8x) ratios: shedding should start
    #: after "degraded" is visible but before the backlog is hopeless.
    queue_shed_ratio: float | None = 4.0
    #: Enter shedding mode when the observed SLO fast burn reaches this.
    shed_burn: float = 2.0
    #: Leave shedding mode only once the burn drops below this...
    recover_burn: float = 1.0
    #: ...and the mode has been active at least this long (hysteresis).
    min_shed_seconds: float = 5.0
    #: While shedding, admit one request in this many (the rest are shed).
    #: 1 would admit everything; large values approach a full brown-out.
    shed_admit_every: int = 4

    def __post_init__(self) -> None:
        if self.max_qps is not None and self.max_qps <= 0:
            raise ValueError("max_qps must be positive (or None)")
        if self.burst_requests < 1:
            raise ValueError("burst_requests must be >= 1")
        if self.queue_shed_ratio is not None and self.queue_shed_ratio <= 0:
            raise ValueError("queue_shed_ratio must be positive (or None)")
        if self.recover_burn > self.shed_burn:
            raise ValueError("need recover_burn <= shed_burn (hysteresis band)")
        if self.recover_burn <= 0:
            raise ValueError("burn thresholds must be positive")
        if self.min_shed_seconds < 0:
            raise ValueError("min_shed_seconds must be non-negative")
        if self.shed_admit_every < 1:
            raise ValueError("shed_admit_every must be >= 1")


class AdmissionController:
    """Thread-safe admission decisions under one :class:`AdmissionPolicy`."""

    def __init__(self, policy: AdmissionPolicy | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.policy = policy or AdmissionPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = float(self.policy.burst_requests)
        self._refilled_at = clock()
        self._shedding = False
        self._shed_since: float | None = None
        self._shed_counter = 0
        self._burn = 0.0
        self.admitted = 0
        self.rejected = 0
        self.shed_events = 0
        self._rejected_by_reason = {reason: 0 for reason in REJECT_REASONS}

    # -- the decision --------------------------------------------------------
    def admit(self, weight: int = 1, queue_depth: int | None = None,
              queue_capacity: int | None = None) -> None:
        """Admit ``weight`` requests or raise :class:`AdmissionRejected`.

        ``weight`` lets a wave (``submit_many``) be admitted atomically: the
        whole wave costs its cache-missing request count against the bucket.
        """
        if weight <= 0:
            raise ValueError("weight must be positive")
        policy = self.policy
        with self._lock:
            if (policy.queue_shed_ratio is not None
                    and queue_depth is not None and queue_capacity):
                if queue_depth / queue_capacity >= policy.queue_shed_ratio:
                    self._reject_locked(
                        "queue_depth",
                        f"batcher backlog {queue_depth} >= "
                        f"{policy.queue_shed_ratio:g}x capacity {queue_capacity}",
                        weight)
            if self._shedding:
                self._shed_counter += 1
                if self._shed_counter % policy.shed_admit_every != 0:
                    self._reject_locked(
                        "burn_rate",
                        f"shedding load: SLO burn {self._burn:.2f} >= "
                        f"{policy.shed_burn:g}",
                        weight)
            if policy.max_qps is not None:
                self._refill_locked()
                if self._tokens < weight:
                    deficit = weight - self._tokens
                    self._reject_locked(
                        "rate_limit",
                        f"admitted rate at the {policy.max_qps:g} qps ceiling",
                        weight,
                        retry_after=deficit / policy.max_qps)
                self._tokens -= weight
            self.admitted += weight

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(self._tokens + elapsed * self.policy.max_qps,
                               float(self.policy.burst_requests))
        self._refilled_at = now

    def _reject_locked(self, reason: str, message: str, weight: int,
                       retry_after: float | None = None) -> None:
        self.rejected += weight
        self._rejected_by_reason[reason] += weight
        raise AdmissionRejected(reason, message, retry_after_seconds=retry_after)

    # -- the feedback side ---------------------------------------------------
    def observe_burn(self, burn: float) -> bool:
        """Fold one SLO fast-burn reading in; returns the shedding state.

        Entering shedding is immediate at ``shed_burn``; leaving requires the
        burn below ``recover_burn`` *and* ``min_shed_seconds`` in the mode.
        """
        policy = self.policy
        with self._lock:
            self._burn = burn
            now = self._clock()
            if not self._shedding:
                if burn >= policy.shed_burn:
                    self._shedding = True
                    self._shed_since = now
                    self._shed_counter = 0
                    self.shed_events += 1
            elif (burn < policy.recover_burn
                    and now - self._shed_since >= policy.min_shed_seconds):
                self._shedding = False
                self._shed_since = None
            return self._shedding

    @property
    def shedding(self) -> bool:
        with self._lock:
            return self._shedding

    # -- introspection -------------------------------------------------------
    def stats(self) -> dict:
        """A JSON-safe snapshot (rides ``RoutingService.stats()``)."""
        with self._lock:
            now = self._clock()
            return {
                "shedding": self._shedding,
                "shed_active_seconds": (round(now - self._shed_since, 3)
                                        if self._shed_since is not None else 0.0),
                "shed_events": self.shed_events,
                "burn": round(self._burn, 4),
                "tokens": round(self._tokens, 3),
                "max_qps": self.policy.max_qps,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "rejected_by_reason": dict(self._rejected_by_reason),
            }
