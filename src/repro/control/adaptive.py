"""Adaptive escalation threshold: learn the dispatcher's confidence gate.

The cluster's two-tier cascade escalates a question to the careful (wide
beam) tier when its merged top-1 confidence falls below a threshold — fixed
at 0.8 since PR 2.  The right value depends on the traffic: an easy workload
escalates almost nothing at 0.8, a hard one escalates most of it and erases
the fast tier's win.  :class:`AdaptiveEscalationGate` replaces the constant
with a feedback loop: observe the *escalation rate* of routed traffic, smooth
it with an EWMA, and nudge the threshold so the rate converges on a declared
target — escalating too often lowers the gate, too rarely raises it.

The loop is deliberately conservative:

* adjustments happen only after ``min_requests`` new routed questions, so a
  quiet cluster never drifts on noise;
* the threshold is clamped to frozen ``[min_threshold, max_threshold]``
  bounds — the gate can tune *within* a band an operator chose, it can never
  disable escalation or escalate everything;
* the per-observation step is proportional to the (smoothed) rate error and
  capped by ``max_step``, so one pathological window cannot slam the gate.

The gate itself is pure bookkeeping — the :class:`repro.control.Controller`
feeds it cumulative counters each tick and applies the returned threshold to
the dispatcher.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class AdaptiveEscalationConfig:
    """Frozen bounds and dynamics of one adaptive gate."""

    #: The escalation-rate setpoint the loop converges on.
    target_rate: float = 0.10
    #: Frozen band the learned threshold may move in.
    min_threshold: float = 0.50
    max_threshold: float = 0.95
    #: Threshold change per unit of (smoothed) rate error.
    gain: float = 0.25
    #: Hard cap on a single observation's threshold change.
    max_step: float = 0.05
    #: EWMA smoothing factor for the observed rate (1.0 = no smoothing).
    alpha: float = 0.3
    #: Minimum routed questions between adjustments.
    min_requests: int = 16

    def __post_init__(self) -> None:
        if not 0.0 <= self.target_rate <= 1.0:
            raise ValueError("target_rate must be in [0, 1]")
        if not 0.0 < self.min_threshold <= self.max_threshold <= 1.0:
            raise ValueError("need 0 < min_threshold <= max_threshold <= 1")
        if self.gain <= 0 or self.max_step <= 0:
            raise ValueError("gain and max_step must be positive")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.min_requests < 1:
            raise ValueError("min_requests must be >= 1")


class AdaptiveEscalationGate:
    """EWMA-smoothed escalation-rate controller for the confidence gate."""

    def __init__(self, config: AdaptiveEscalationConfig | None = None,
                 initial_threshold: float = 0.8) -> None:
        self.config = config or AdaptiveEscalationConfig()
        self.threshold = min(max(initial_threshold, self.config.min_threshold),
                             self.config.max_threshold)
        self._lock = threading.Lock()
        self._last_requests = 0
        self._last_escalations = 0
        self._ewma_rate: float | None = None
        self.observations = 0
        self.adjustments = 0

    def observe_cumulative(self, requests: int, escalations: int) -> float | None:
        """Fold cumulative ``(requests, escalations)`` counters in.

        Returns the (possibly adjusted) threshold once at least
        ``min_requests`` new questions accumulated since the last
        adjustment, None otherwise.  Counter resets (a restarted service)
        re-anchor the baseline instead of producing negative deltas.
        """
        config = self.config
        with self._lock:
            delta_requests = requests - self._last_requests
            delta_escalations = escalations - self._last_escalations
            if delta_requests < 0 or delta_escalations < 0:
                self._last_requests = requests
                self._last_escalations = escalations
                return None
            if delta_requests < config.min_requests:
                return None
            self._last_requests = requests
            self._last_escalations = escalations
            rate = min(max(delta_escalations / delta_requests, 0.0), 1.0)
            if self._ewma_rate is None:
                self._ewma_rate = rate
            else:
                self._ewma_rate = (config.alpha * rate
                                   + (1.0 - config.alpha) * self._ewma_rate)
            # Escalation fires when confidence < threshold, so a rate above
            # target means the gate sits too high: step the threshold *down*
            # by the (capped) proportional error, and vice versa.
            error = self._ewma_rate - config.target_rate
            step = min(max(config.gain * error, -config.max_step), config.max_step)
            adjusted = min(max(self.threshold - step, config.min_threshold),
                           config.max_threshold)
            if abs(adjusted - self.threshold) > 1e-12:
                self.adjustments += 1
            self.threshold = adjusted
            self.observations += 1
            return self.threshold

    def stats(self) -> dict:
        with self._lock:
            return {
                "threshold": round(self.threshold, 4),
                "target_rate": self.config.target_rate,
                "ewma_rate": (round(self._ewma_rate, 4)
                              if self._ewma_rate is not None else None),
                "bounds": [self.config.min_threshold, self.config.max_threshold],
                "observations": self.observations,
                "adjustments": self.adjustments,
            }
