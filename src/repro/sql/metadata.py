"""Query metadata extraction.

The dataset-adaptation procedure of the paper (§4.1.2) uses a SQL parser to
extract the tables and columns referenced by each gold query, then combines
the target database with that metadata to form the SQL query schema
``S = <D, T>`` of the instance.  The schema questioner additionally consumes
the referenced columns to generate richer pseudo-questions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Expression,
    FuncCall,
    InSubquery,
    ScalarSubquery,
    SelectStatement,
)
from repro.sql.parser import parse_sql


@dataclass
class QueryMetadata:
    """Tables and columns referenced by a query.

    ``tables`` maps each referenced table to the set of its columns mentioned
    anywhere in the query (projection, filters, joins, grouping, ordering,
    nested sub-queries).  ``aliases`` records alias -> table bindings.
    """

    tables: dict[str, set[str]] = field(default_factory=dict)
    aliases: dict[str, str] = field(default_factory=dict)

    @property
    def table_names(self) -> list[str]:
        return sorted(self.tables)

    def columns_of(self, table: str) -> set[str]:
        return self.tables.get(table, set())

    def add_table(self, table: str) -> None:
        self.tables.setdefault(table, set())

    def add_column(self, table: str | None, column: str) -> None:
        if table is None:
            # Unqualified column: attribute it to every table (callers that
            # need precision always qualify; the router only needs tables).
            for columns in self.tables.values():
                columns.add(column)
            return
        self.tables.setdefault(table, set()).add(column)


def extract_metadata(query: str | SelectStatement) -> QueryMetadata:
    """Extract :class:`QueryMetadata` from SQL text or a parsed statement."""
    statement = parse_sql(query) if isinstance(query, str) else query
    metadata = QueryMetadata()
    _collect(statement, metadata)
    return metadata


def _collect(statement: SelectStatement, metadata: QueryMetadata) -> None:
    alias_map: dict[str, str] = {}
    for ref in statement.table_refs():
        metadata.add_table(ref.table)
        alias_map[ref.binding] = ref.table
        metadata.aliases[ref.binding] = ref.table

    def resolve(table: str | None) -> str | None:
        if table is None:
            return None
        return alias_map.get(table, table)

    def visit(expression: Expression | None) -> None:
        if expression is None:
            return
        if isinstance(expression, ColumnRef):
            metadata.add_column(resolve(expression.table), expression.name)
        elif isinstance(expression, FuncCall):
            if isinstance(expression.argument, ColumnRef):
                metadata.add_column(resolve(expression.argument.table), expression.argument.name)
        elif isinstance(expression, BinaryOp):
            visit(expression.left)
            visit(expression.right)
        elif isinstance(expression, InSubquery):
            visit(expression.expression)
            _collect(expression.subquery, metadata)
        elif isinstance(expression, ScalarSubquery):
            _collect(expression.subquery, metadata)

    for item in statement.select_items:
        visit(item.expression)
    for join in statement.joins:
        visit(join.condition)
    visit(statement.where)
    for column in statement.group_by:
        visit(column)
    visit(statement.having)
    for order in statement.order_by:
        visit(order.expression)
