"""SQL abstract syntax tree.

The AST is deliberately small: it models exactly the dialect the synthetic
workload generator emits and the simulated LLM produces, which in turn mirrors
the query shapes highlighted in the paper (multi-table joins through junction
tables, aggregation with grouping and ordering, nested sub-queries as in
Example 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.engine.values import Value

#: Aggregate function names understood by the executor.
AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max")

#: Comparison operators (binary) understood by the executor.
COMPARISON_OPERATORS = ("=", "!=", "<>", "<", "<=", ">", ">=", "like")

#: Boolean connectives.
BOOLEAN_OPERATORS = ("and", "or")


@dataclass(frozen=True)
class Star:
    """``*`` -- only valid as the argument of ``COUNT``."""


@dataclass(frozen=True)
class ColumnRef:
    """A reference to a column, optionally qualified by a table or alias."""

    name: str
    table: str | None = None

    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Literal:
    """A literal constant (number, string, boolean, NULL)."""

    value: Value


@dataclass(frozen=True)
class FuncCall:
    """An aggregate function call, e.g. ``COUNT(*)`` or ``AVG(t.col)``."""

    name: str
    argument: Union[ColumnRef, Star]
    distinct: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.lower())
        if self.name not in AGGREGATE_FUNCTIONS:
            raise ValueError(f"unsupported aggregate function {self.name!r}")
        if isinstance(self.argument, Star) and self.name != "count":
            raise ValueError(f"{self.name.upper()}(*) is not valid SQL")


@dataclass(frozen=True)
class BinaryOp:
    """A binary operation: comparison or boolean connective."""

    operator: str
    left: "Expression"
    right: "Expression"

    def __post_init__(self) -> None:
        object.__setattr__(self, "operator", self.operator.lower())
        if self.operator not in COMPARISON_OPERATORS + BOOLEAN_OPERATORS:
            raise ValueError(f"unsupported operator {self.operator!r}")


@dataclass(frozen=True)
class InSubquery:
    """``expr IN (SELECT ...)`` or its negation."""

    expression: "Expression"
    subquery: "SelectStatement"
    negated: bool = False


@dataclass(frozen=True)
class ScalarSubquery:
    """A sub-query used as a scalar value, e.g. ``population = (SELECT MAX(...) ...)``."""

    subquery: "SelectStatement"


Expression = Union[ColumnRef, Literal, FuncCall, BinaryOp, InSubquery, ScalarSubquery, Star]


@dataclass(frozen=True)
class SelectItem:
    """One projected expression with an optional alias."""

    expression: Expression
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    """A table in the FROM clause, optionally database-qualified and aliased."""

    table: str
    database: str | None = None
    alias: str | None = None

    @property
    def binding(self) -> str:
        """The name other clauses use to refer to this table's columns."""
        return self.alias or self.table


@dataclass(frozen=True)
class Join:
    """An ``INNER JOIN ... ON left = right`` clause."""

    table: TableRef
    condition: BinaryOp

    def __post_init__(self) -> None:
        if self.condition.operator != "=":
            raise ValueError("only equi-joins are supported")


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class SelectStatement:
    """A full SELECT statement."""

    select_items: tuple[SelectItem, ...]
    from_table: TableRef
    joins: tuple[Join, ...] = ()
    where: Expression | None = None
    group_by: tuple[ColumnRef, ...] = ()
    having: Expression | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False

    def __post_init__(self) -> None:
        if not self.select_items:
            raise ValueError("SELECT must project at least one item")

    # -- structural helpers ---------------------------------------------------
    def table_refs(self) -> list[TableRef]:
        """All table references in this statement (not descending into sub-queries)."""
        return [self.from_table] + [join.table for join in self.joins]

    def has_aggregates(self) -> bool:
        """Whether any projected or ordering expression is an aggregate."""
        exprs: list[Expression] = [item.expression for item in self.select_items]
        exprs.extend(item.expression for item in self.order_by)
        if self.having is not None:
            exprs.append(self.having)
        return any(_contains_aggregate(expr) for expr in exprs)

    def is_ordered(self) -> bool:
        return bool(self.order_by)


def _contains_aggregate(expression: Expression) -> bool:
    if isinstance(expression, FuncCall):
        return True
    if isinstance(expression, BinaryOp):
        return _contains_aggregate(expression.left) or _contains_aggregate(expression.right)
    return False


def iter_subqueries(statement: SelectStatement) -> list[SelectStatement]:
    """Return all (recursively nested) sub-queries of ``statement``."""
    found: list[SelectStatement] = []

    def visit_expression(expression: Expression | None) -> None:
        if expression is None:
            return
        if isinstance(expression, BinaryOp):
            visit_expression(expression.left)
            visit_expression(expression.right)
        elif isinstance(expression, InSubquery):
            found.append(expression.subquery)
            found.extend(iter_subqueries(expression.subquery))
            visit_expression(expression.expression)
        elif isinstance(expression, ScalarSubquery):
            found.append(expression.subquery)
            found.extend(iter_subqueries(expression.subquery))

    for item in statement.select_items:
        visit_expression(item.expression)
    visit_expression(statement.where)
    visit_expression(statement.having)
    for order in statement.order_by:
        visit_expression(order.expression)
    return found
