"""Recursive-descent SQL parser for the dialect in :mod:`repro.sql.ast`.

The parser is used in two places that matter for the reproduction:

* Dataset adaptation (paper §4.1.2) parses every gold SQL query to extract its
  metadata; queries that fail to parse are excluded from the benchmark.
* Execution-accuracy evaluation parses the SQL text produced by the simulated
  LLM before executing it; malformed output counts as an incorrect prediction.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.sql.ast import (
    AGGREGATE_FUNCTIONS,
    BinaryOp,
    ColumnRef,
    Expression,
    FuncCall,
    InSubquery,
    Join,
    Literal,
    OrderItem,
    ScalarSubquery,
    SelectItem,
    SelectStatement,
    Star,
    TableRef,
)
from repro.sql.errors import SqlParseError

_TOKEN_PATTERN = re.compile(
    r"""
    (?P<space>\s+)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<operator><>|!=|<=|>=|=|<|>|\(|\)|,|\.|\*)
  | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "distinct", "from", "join", "inner", "on", "where", "group", "by",
    "having", "order", "limit", "as", "and", "or", "in", "not", "asc", "desc",
    "null", "true", "false", "like",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # "number" | "string" | "operator" | "word"
    text: str
    position: int

    @property
    def lowered(self) -> str:
        return self.text.lower()


def _tokenize(sql: str) -> list[_Token]:
    tokens: list[_Token] = []
    index = 0
    while index < len(sql):
        match = _TOKEN_PATTERN.match(sql, index)
        if match is None:
            raise SqlParseError(f"unexpected character {sql[index]!r}", position=index)
        index = match.end()
        kind = match.lastgroup or ""
        if kind == "space":
            continue
        tokens.append(_Token(kind=kind, text=match.group(), position=match.start()))
    return tokens


class _Parser:
    """Stateful cursor over the token list."""

    def __init__(self, tokens: list[_Token], sql: str) -> None:
        self._tokens = tokens
        self._sql = sql
        self._index = 0

    # -- cursor primitives --------------------------------------------------
    def _peek(self, offset: int = 0) -> _Token | None:
        position = self._index + offset
        if position < len(self._tokens):
            return self._tokens[position]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SqlParseError("unexpected end of input", position=len(self._sql))
        self._index += 1
        return token

    def _check_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "word" and token.lowered in keywords

    def _match_keyword(self, *keywords: str) -> bool:
        if self._check_keyword(*keywords):
            self._advance()
            return True
        return False

    def _expect_keyword(self, keyword: str) -> None:
        if not self._match_keyword(keyword):
            token = self._peek()
            found = token.text if token else "end of input"
            position = token.position if token else len(self._sql)
            raise SqlParseError(f"expected {keyword.upper()!r}, found {found!r}", position)

    def _check_operator(self, *operators: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "operator" and token.text in operators

    def _match_operator(self, *operators: str) -> bool:
        if self._check_operator(*operators):
            self._advance()
            return True
        return False

    def _expect_operator(self, operator: str) -> None:
        if not self._match_operator(operator):
            token = self._peek()
            found = token.text if token else "end of input"
            position = token.position if token else len(self._sql)
            raise SqlParseError(f"expected {operator!r}, found {found!r}", position)

    def _identifier(self) -> str:
        token = self._peek()
        if token is None or token.kind != "word":
            found = token.text if token else "end of input"
            position = token.position if token else len(self._sql)
            raise SqlParseError(f"expected identifier, found {found!r}", position)
        if token.lowered in _KEYWORDS:
            raise SqlParseError(f"unexpected keyword {token.text!r}", token.position)
        self._advance()
        return token.text

    # -- grammar -------------------------------------------------------------
    def parse_statement(self) -> SelectStatement:
        statement = self._select_statement()
        # allow a trailing semicolon
        self._match_operator(";")
        if self._peek() is not None:
            token = self._peek()
            assert token is not None
            raise SqlParseError(f"unexpected trailing input {token.text!r}", token.position)
        return statement

    def _select_statement(self) -> SelectStatement:
        self._expect_keyword("select")
        distinct = self._match_keyword("distinct")
        select_items = [self._select_item()]
        while self._match_operator(","):
            select_items.append(self._select_item())
        self._expect_keyword("from")
        from_table = self._table_ref()
        joins: list[Join] = []
        while self._check_keyword("join", "inner"):
            self._match_keyword("inner")
            self._expect_keyword("join")
            table = self._table_ref()
            self._expect_keyword("on")
            condition = self._comparison()
            if not isinstance(condition, BinaryOp):
                raise SqlParseError("JOIN condition must be a comparison")
            joins.append(Join(table=table, condition=condition))
        where = None
        if self._match_keyword("where"):
            where = self._boolean_expression()
        group_by: list[ColumnRef] = []
        if self._check_keyword("group"):
            self._expect_keyword("group")
            self._expect_keyword("by")
            group_by.append(self._column_ref())
            while self._match_operator(","):
                group_by.append(self._column_ref())
        having = None
        if self._match_keyword("having"):
            having = self._boolean_expression()
        order_by: list[OrderItem] = []
        if self._check_keyword("order"):
            self._expect_keyword("order")
            self._expect_keyword("by")
            order_by.append(self._order_item())
            while self._match_operator(","):
                order_by.append(self._order_item())
        limit = None
        if self._match_keyword("limit"):
            token = self._advance()
            if token.kind != "number":
                raise SqlParseError(f"LIMIT expects a number, found {token.text!r}", token.position)
            limit = int(float(token.text))
        return SelectStatement(
            select_items=tuple(select_items),
            from_table=from_table,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def _select_item(self) -> SelectItem:
        expression = self._value_expression(allow_star=True)
        alias = None
        if self._match_keyword("as"):
            alias = self._identifier()
        elif self._peek() is not None and self._peek().kind == "word" \
                and self._peek().lowered not in _KEYWORDS:
            alias = self._identifier()
        return SelectItem(expression=expression, alias=alias)

    def _table_ref(self) -> TableRef:
        first = self._identifier()
        database = None
        table = first
        if self._match_operator("."):
            database = first
            table = self._identifier()
        alias = None
        if self._match_keyword("as"):
            alias = self._identifier()
        elif self._peek() is not None and self._peek().kind == "word" \
                and self._peek().lowered not in _KEYWORDS:
            alias = self._identifier()
        return TableRef(table=table, database=database, alias=alias)

    def _order_item(self) -> OrderItem:
        expression = self._value_expression(allow_star=False)
        descending = False
        if self._match_keyword("desc"):
            descending = True
        else:
            self._match_keyword("asc")
        return OrderItem(expression=expression, descending=descending)

    # -- expressions -----------------------------------------------------------
    def _boolean_expression(self) -> Expression:
        left = self._boolean_term()
        while self._check_keyword("or"):
            self._advance()
            right = self._boolean_term()
            left = BinaryOp(operator="or", left=left, right=right)
        return left

    def _boolean_term(self) -> Expression:
        left = self._boolean_factor()
        while self._check_keyword("and"):
            self._advance()
            right = self._boolean_factor()
            left = BinaryOp(operator="and", left=left, right=right)
        return left

    def _boolean_factor(self) -> Expression:
        if self._check_operator("(") and self._is_boolean_group():
            self._expect_operator("(")
            inner = self._boolean_expression()
            self._expect_operator(")")
            return inner
        return self._comparison()

    def _is_boolean_group(self) -> bool:
        """Disambiguate ``(expr AND ...)`` from ``(SELECT ...)`` scalar sub-queries."""
        token = self._peek(1)
        return not (token is not None and token.kind == "word" and token.lowered == "select")

    def _comparison(self) -> Expression:
        left = self._value_expression(allow_star=False)
        if self._match_keyword("not"):
            self._expect_keyword("in")
            subquery = self._parenthesised_select()
            return InSubquery(expression=left, subquery=subquery, negated=True)
        if self._match_keyword("in"):
            subquery = self._parenthesised_select()
            return InSubquery(expression=left, subquery=subquery, negated=False)
        if self._check_keyword("like"):
            self._advance()
            right = self._value_expression(allow_star=False)
            return BinaryOp(operator="like", left=left, right=right)
        token = self._peek()
        if token is not None and token.kind == "operator" and token.text in ("=", "!=", "<>", "<", "<=", ">", ">="):
            self._advance()
            right = self._value_expression(allow_star=False)
            return BinaryOp(operator=token.text, left=left, right=right)
        raise SqlParseError(
            "expected a comparison operator",
            token.position if token else len(self._sql),
        )

    def _parenthesised_select(self) -> SelectStatement:
        self._expect_operator("(")
        statement = self._select_statement()
        self._expect_operator(")")
        return statement

    def _value_expression(self, allow_star: bool) -> Expression:
        token = self._peek()
        if token is None:
            raise SqlParseError("unexpected end of input", position=len(self._sql))
        if token.kind == "operator" and token.text == "*":
            if not allow_star:
                raise SqlParseError("'*' is not valid here", token.position)
            self._advance()
            return Star()
        if token.kind == "operator" and token.text == "(":
            # scalar sub-query
            statement = self._parenthesised_select()
            return ScalarSubquery(subquery=statement)
        if token.kind == "number":
            self._advance()
            text = token.text
            return Literal(float(text) if "." in text else int(text))
        if token.kind == "string":
            self._advance()
            return Literal(token.text[1:-1].replace("''", "'"))
        if token.kind == "word":
            lowered = token.lowered
            if lowered == "null":
                self._advance()
                return Literal(None)
            if lowered in ("true", "false"):
                self._advance()
                return Literal(lowered == "true")
            if lowered in AGGREGATE_FUNCTIONS and self._peek(1) is not None \
                    and self._peek(1).kind == "operator" and self._peek(1).text == "(":
                return self._function_call()
            return self._column_ref()
        raise SqlParseError(f"unexpected token {token.text!r}", token.position)

    def _function_call(self) -> FuncCall:
        name_token = self._advance()
        self._expect_operator("(")
        distinct = self._match_keyword("distinct")
        if self._check_operator("*"):
            self._advance()
            argument: ColumnRef | Star = Star()
        else:
            argument = self._column_ref()
        self._expect_operator(")")
        return FuncCall(name=name_token.lowered, argument=argument, distinct=distinct)

    def _column_ref(self) -> ColumnRef:
        first = self._identifier()
        if self._match_operator("."):
            second = self._identifier()
            return ColumnRef(name=second, table=first)
        return ColumnRef(name=first)


def parse_sql(sql: str) -> SelectStatement:
    """Parse a SQL string into a :class:`SelectStatement`.

    Raises :class:`SqlParseError` for anything outside the supported dialect.
    """
    if not sql or not sql.strip():
        raise SqlParseError("empty SQL string")
    text = sql.strip().rstrip(";")
    tokens = _tokenize(text)
    return _Parser(tokens, text).parse_statement()
