"""Exception hierarchy for the SQL layer."""

from __future__ import annotations


class SqlError(Exception):
    """Base class for all SQL-layer errors."""


class SqlParseError(SqlError):
    """Raised when a query cannot be parsed.

    The dataset-adaptation step excludes queries that cannot be parsed
    (paper §4.1.2), so callers typically catch this error and drop the
    offending instance.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class SqlExecutionError(SqlError):
    """Raised when a parsed query cannot be executed against an instance.

    Execution-accuracy evaluation treats an execution error on the predicted
    query as an incorrect prediction rather than a crash.
    """
