"""SQL layer: AST, parser, executor, and metadata extraction.

The dialect covers the constructs produced by the synthetic workload generator
and required by the paper's evaluation: single-database SELECT queries with
joins, filters, aggregation, grouping, HAVING, ordering, limits, DISTINCT, and
(uncorrelated) IN / scalar sub-queries.

The dataset-adaptation step of the paper (§4.1.2) parses every SQL query to
extract its metadata (tables and columns) and forms the SQL query schema
``S = <D, T>`` from it; :func:`extract_metadata` provides that capability.
"""

from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    FuncCall,
    InSubquery,
    Join,
    Literal,
    OrderItem,
    ScalarSubquery,
    SelectItem,
    SelectStatement,
    Star,
    TableRef,
)
from repro.sql.errors import SqlError, SqlExecutionError, SqlParseError
from repro.sql.parser import parse_sql
from repro.sql.printer import to_sql
from repro.sql.executor import SqlExecutor
from repro.sql.metadata import QueryMetadata, extract_metadata

__all__ = [
    "BinaryOp",
    "ColumnRef",
    "FuncCall",
    "InSubquery",
    "Join",
    "Literal",
    "OrderItem",
    "ScalarSubquery",
    "SelectItem",
    "SelectStatement",
    "Star",
    "TableRef",
    "SqlError",
    "SqlExecutionError",
    "SqlParseError",
    "parse_sql",
    "to_sql",
    "SqlExecutor",
    "QueryMetadata",
    "extract_metadata",
]
