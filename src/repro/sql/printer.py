"""Render a SQL AST back to SQL text.

The printer produces a canonical single-line SQL string.  Round-tripping
``parse_sql(to_sql(statement))`` yields an equal AST, which the test suite and
the hypothesis property tests rely on.
"""

from __future__ import annotations

from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Expression,
    FuncCall,
    InSubquery,
    Join,
    Literal,
    OrderItem,
    ScalarSubquery,
    SelectItem,
    SelectStatement,
    Star,
    TableRef,
)


def to_sql(statement: SelectStatement) -> str:
    """Render ``statement`` as a SQL string."""
    parts = ["SELECT"]
    if statement.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_select_item(item) for item in statement.select_items))
    parts.append("FROM")
    parts.append(_table_ref(statement.from_table))
    for join in statement.joins:
        parts.append(_join(join))
    if statement.where is not None:
        parts.append("WHERE")
        parts.append(_expression(statement.where))
    if statement.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(_expression(col) for col in statement.group_by))
    if statement.having is not None:
        parts.append("HAVING")
        parts.append(_expression(statement.having))
    if statement.order_by:
        parts.append("ORDER BY")
        parts.append(", ".join(_order_item(item) for item in statement.order_by))
    if statement.limit is not None:
        parts.append(f"LIMIT {statement.limit}")
    return " ".join(parts)


def _select_item(item: SelectItem) -> str:
    text = _expression(item.expression)
    if item.alias:
        text += f" AS {item.alias}"
    return text


def _table_ref(ref: TableRef) -> str:
    name = f"{ref.database}.{ref.table}" if ref.database else ref.table
    if ref.alias:
        name += f" AS {ref.alias}"
    return name


def _join(join: Join) -> str:
    return f"JOIN {_table_ref(join.table)} ON {_expression(join.condition)}"


def _order_item(item: OrderItem) -> str:
    direction = "DESC" if item.descending else "ASC"
    return f"{_expression(item.expression)} {direction}"


def _expression(expression: Expression) -> str:
    if isinstance(expression, Star):
        return "*"
    if isinstance(expression, ColumnRef):
        return expression.qualified()
    if isinstance(expression, Literal):
        return _literal(expression)
    if isinstance(expression, FuncCall):
        inner = _expression(expression.argument)
        if expression.distinct:
            inner = f"DISTINCT {inner}"
        return f"{expression.name.upper()}({inner})"
    if isinstance(expression, BinaryOp):
        left = _expression(expression.left)
        right = _expression(expression.right)
        operator = expression.operator.upper() if expression.operator in ("and", "or", "like") else expression.operator
        if expression.operator in ("and", "or"):
            return f"({left} {operator} {right})"
        return f"{left} {operator} {right}"
    if isinstance(expression, InSubquery):
        keyword = "NOT IN" if expression.negated else "IN"
        return f"{_expression(expression.expression)} {keyword} ({to_sql(expression.subquery)})"
    if isinstance(expression, ScalarSubquery):
        return f"({to_sql(expression.subquery)})"
    raise TypeError(f"cannot print expression of type {type(expression).__name__}")


def _literal(literal: Literal) -> str:
    value = literal.value
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
