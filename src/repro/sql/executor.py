"""SQL executor: evaluate a :class:`SelectStatement` against a database instance.

The executor supports the dialect produced by the synthetic workload generator
and the simulated LLM: inner equi-joins, boolean filters, aggregation with
grouping and HAVING, ordering, limits, DISTINCT, and uncorrelated IN / scalar
sub-queries.  It validates every referenced table and column against the
database schema so that hallucinated schema elements in generated SQL fail
loudly (and count against execution accuracy), exactly as they would against a
real DBMS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.instance import DatabaseInstance
from repro.engine.relation import Relation, Row
from repro.engine.values import Value, canonical, compare_values, values_equal
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Expression,
    FuncCall,
    InSubquery,
    Join,
    Literal,
    ScalarSubquery,
    SelectItem,
    SelectStatement,
    Star,
)
from repro.sql.errors import SqlExecutionError
from repro.sql.parser import parse_sql


@dataclass
class SqlExecutor:
    """Executes SELECT statements against one :class:`DatabaseInstance`."""

    instance: DatabaseInstance

    # -- public API -----------------------------------------------------------
    def execute_sql(self, sql: str) -> Relation:
        """Parse and execute a SQL string."""
        return self.execute(parse_sql(sql))

    def execute(self, statement: SelectStatement) -> Relation:
        """Execute a parsed statement, returning the result relation."""
        source = self._build_source(statement)
        if statement.where is not None:
            where = statement.where
            source = source.filter(lambda row: _truthy(self._evaluate(where, source, row)))
        if statement.has_aggregates() or statement.group_by:
            result = self._execute_grouped(statement, source)
        else:
            result = self._execute_plain(statement, source)
        if statement.distinct:
            result = result.distinct()
        if statement.limit is not None:
            result = result.limit(statement.limit)
        return result

    # -- FROM / JOIN ------------------------------------------------------------
    def _build_source(self, statement: SelectStatement) -> Relation:
        relation = self._scan(statement.from_table.table, statement.from_table.binding,
                              statement.from_table.database)
        for join in statement.joins:
            right = self._scan(join.table.table, join.table.binding, join.table.database)
            relation = self._apply_join(relation, right, join)
        return relation

    def _scan(self, table: str, binding: str, database: str | None) -> Relation:
        if database is not None and database != self.instance.name:
            raise SqlExecutionError(
                f"query references database {database!r} but executing against "
                f"{self.instance.name!r}"
            )
        if not self.instance.schema.has_table(table):
            raise SqlExecutionError(
                f"unknown table {table!r} in database {self.instance.name!r}"
            )
        return self.instance.scan(table, alias=binding)

    def _apply_join(self, left: Relation, right: Relation, join: Join) -> Relation:
        condition = join.condition
        if not isinstance(condition.left, ColumnRef) or not isinstance(condition.right, ColumnRef):
            raise SqlExecutionError("JOIN conditions must compare two columns")
        # The ON clause may name the keys in either order; resolve each side
        # against the relation it actually belongs to, preferring the order as
        # written and falling back to the swapped assignment.
        for first, second in ((condition.left, condition.right), (condition.right, condition.left)):
            left_column = _resolve_column(left, first)
            right_column = _resolve_column(right, second)
            if left_column is not None and right_column is not None:
                return left.hash_join(right, left_column, right_column)
        raise SqlExecutionError(
            f"cannot resolve join condition {to_sql_condition(condition)}"
        )

    # -- plain (non-aggregated) SELECT ------------------------------------------
    def _execute_plain(self, statement: SelectStatement, source: Relation) -> Relation:
        ordered = self._order_rows(statement, source)
        names = [self._output_name(item, i) for i, item in enumerate(statement.select_items)]
        rows: list[Row] = []
        for row in ordered.rows:
            rows.append(tuple(
                self._evaluate(item.expression, ordered, row)
                for item in statement.select_items
            ))
        return Relation(names, rows)

    def _order_rows(self, statement: SelectStatement, source: Relation) -> Relation:
        if not statement.order_by:
            return source
        import functools

        def compare(left: Row, right: Row) -> int:
            for item in statement.order_by:
                left_value = self._evaluate(item.expression, source, left)
                right_value = self._evaluate(item.expression, source, right)
                result = compare_values(left_value, right_value)
                if result != 0:
                    return -result if item.descending else result
            return 0

        return Relation(list(source.columns), sorted(source.rows, key=functools.cmp_to_key(compare)))

    # -- aggregated SELECT --------------------------------------------------------
    def _execute_grouped(self, statement: SelectStatement, source: Relation) -> Relation:
        group_names = [ref.qualified() for ref in statement.group_by]
        if statement.group_by:
            groups = source.group_rows([self._resolve_name(source, ref) for ref in statement.group_by])
        else:
            groups = [((), list(source.rows))]
            group_names = []
        # Evaluate HAVING per group, then projections and ordering.
        surviving: list[tuple[tuple[object, ...], list[Row]]] = []
        for key, rows in groups:
            if statement.having is not None:
                value = self._evaluate_grouped(statement.having, source, rows)
                if not _truthy(value):
                    continue
            surviving.append((key, rows))
        # Ordering keys may be aggregates or grouped columns.
        if statement.order_by:
            surviving = self._order_groups(statement, source, surviving)
        names = [self._output_name(item, i) for i, item in enumerate(statement.select_items)]
        result_rows: list[Row] = []
        for _, rows in surviving:
            result_rows.append(tuple(
                self._evaluate_grouped(item.expression, source, rows)
                for item in statement.select_items
            ))
        del group_names  # group keys only influence evaluation, not output shape
        return Relation(names, result_rows)

    def _order_groups(
        self,
        statement: SelectStatement,
        source: Relation,
        groups: list[tuple[tuple[object, ...], list[Row]]],
    ) -> list[tuple[tuple[object, ...], list[Row]]]:
        import functools

        def compare(left: tuple[tuple[object, ...], list[Row]],
                    right: tuple[tuple[object, ...], list[Row]]) -> int:
            for item in statement.order_by:
                left_value = self._evaluate_grouped(item.expression, source, left[1])
                right_value = self._evaluate_grouped(item.expression, source, right[1])
                result = compare_values(left_value, right_value)
                if result != 0:
                    return -result if item.descending else result
            return 0

        return sorted(groups, key=functools.cmp_to_key(compare))

    # -- expression evaluation ------------------------------------------------------
    def _evaluate(self, expression: Expression, relation: Relation, row: Row) -> Value:
        if isinstance(expression, Literal):
            return expression.value
        if isinstance(expression, ColumnRef):
            index = self._column_index(relation, expression)
            return row[index]
        if isinstance(expression, BinaryOp):
            return self._evaluate_binary(expression, relation, row)
        if isinstance(expression, InSubquery):
            value = self._evaluate(expression.expression, relation, row)
            members = self._subquery_values(expression.subquery)
            contained = any(values_equal(value, member) for member in members)
            return (not contained) if expression.negated else contained
        if isinstance(expression, ScalarSubquery):
            return self._scalar_subquery(expression.subquery)
        if isinstance(expression, FuncCall):
            raise SqlExecutionError(
                f"aggregate {expression.name.upper()} used outside of an aggregated query"
            )
        if isinstance(expression, Star):
            raise SqlExecutionError("'*' can only appear inside COUNT()")
        raise SqlExecutionError(f"cannot evaluate expression {expression!r}")

    def _evaluate_binary(self, expression: BinaryOp, relation: Relation, row: Row) -> Value:
        operator = expression.operator
        if operator in ("and", "or"):
            left = _truthy(self._evaluate(expression.left, relation, row))
            right = _truthy(self._evaluate(expression.right, relation, row))
            return (left and right) if operator == "and" else (left or right)
        left_value = self._evaluate(expression.left, relation, row)
        right_value = self._evaluate(expression.right, relation, row)
        return _compare(operator, left_value, right_value)

    def _evaluate_grouped(self, expression: Expression, relation: Relation, rows: list[Row]) -> Value:
        if isinstance(expression, FuncCall):
            return self._aggregate(expression, relation, rows)
        if isinstance(expression, BinaryOp):
            operator = expression.operator
            if operator in ("and", "or"):
                left = _truthy(self._evaluate_grouped(expression.left, relation, rows))
                right = _truthy(self._evaluate_grouped(expression.right, relation, rows))
                return (left and right) if operator == "and" else (left or right)
            left_value = self._evaluate_grouped(expression.left, relation, rows)
            right_value = self._evaluate_grouped(expression.right, relation, rows)
            return _compare(operator, left_value, right_value)
        if isinstance(expression, (Literal, ScalarSubquery, InSubquery)):
            representative = rows[0] if rows else tuple(None for _ in relation.columns)
            return self._evaluate(expression, relation, representative)
        if isinstance(expression, ColumnRef):
            # Grouped columns have a single value per group; take it from the
            # first row (SQL engines require the column to be in GROUP BY).
            if not rows:
                return None
            index = self._column_index(relation, expression)
            return rows[0][index]
        raise SqlExecutionError(f"cannot evaluate grouped expression {expression!r}")

    def _aggregate(self, call: FuncCall, relation: Relation, rows: list[Row]) -> Value:
        if isinstance(call.argument, Star):
            values: list[Value] = [1] * len(rows)
        else:
            index = self._column_index(relation, call.argument)
            values = [row[index] for row in rows if row[index] is not None]
        if call.distinct:
            seen: set[object] = set()
            unique: list[Value] = []
            for value in values:
                key = canonical(value)
                if key not in seen:
                    seen.add(key)
                    unique.append(value)
            values = unique
        name = call.name
        if name == "count":
            return len(values)
        if not values:
            return None
        if name == "sum":
            return _numeric_sum(values)
        if name == "avg":
            total = _numeric_sum(values)
            return None if total is None else total / len(values)
        if name == "min":
            return _extreme(values, smallest=True)
        if name == "max":
            return _extreme(values, smallest=False)
        raise SqlExecutionError(f"unsupported aggregate {name!r}")

    # -- sub-queries -----------------------------------------------------------------
    def _subquery_values(self, statement: SelectStatement) -> list[Value]:
        result = self.execute(statement)
        if len(result.columns) != 1:
            raise SqlExecutionError("IN sub-query must project exactly one column")
        return [row[0] for row in result.rows]

    def _scalar_subquery(self, statement: SelectStatement) -> Value:
        result = self.execute(statement)
        if len(result.columns) != 1:
            raise SqlExecutionError("scalar sub-query must project exactly one column")
        if not result.rows:
            return None
        return result.rows[0][0]

    # -- name resolution ----------------------------------------------------------------
    def _column_index(self, relation: Relation, ref: ColumnRef) -> int:
        try:
            return relation.column_index(ref.qualified())
        except KeyError:
            pass
        try:
            return relation.column_index(ref.name)
        except KeyError as error:
            raise SqlExecutionError(str(error)) from None

    def _resolve_name(self, relation: Relation, ref: ColumnRef) -> str:
        return relation.columns[self._column_index(relation, ref)]

    def _output_name(self, item: SelectItem, position: int) -> str:
        if item.alias:
            return item.alias
        expression = item.expression
        if isinstance(expression, ColumnRef):
            return expression.name
        if isinstance(expression, FuncCall):
            argument = "*" if isinstance(expression.argument, Star) else expression.argument.name
            return f"{expression.name}_{argument}"
        return f"column_{position}"


# -- helpers -------------------------------------------------------------------
def _truthy(value: Value) -> bool:
    if value is None:
        return False
    return bool(value)


def _compare(operator: str, left: Value, right: Value) -> Value:
    if left is None or right is None:
        return False
    if operator == "like":
        return _like(str(left), str(right))
    ordering = compare_values(left, right)
    if operator == "=":
        return ordering == 0
    if operator in ("!=", "<>"):
        return ordering != 0
    if operator == "<":
        return ordering < 0
    if operator == "<=":
        return ordering <= 0
    if operator == ">":
        return ordering > 0
    if operator == ">=":
        return ordering >= 0
    raise SqlExecutionError(f"unsupported comparison operator {operator!r}")


def _like(value: str, pattern: str) -> bool:
    import re as _re

    regex = _re.escape(pattern).replace(r"%", ".*").replace(r"_", ".")
    return _re.fullmatch(regex, value, flags=_re.IGNORECASE) is not None


def _numeric_sum(values: list[Value]) -> Value:
    total = 0.0
    saw_float = False
    for value in values:
        if isinstance(value, bool):
            total += int(value)
        elif isinstance(value, (int, float)):
            saw_float = saw_float or isinstance(value, float)
            total += value
        else:
            raise SqlExecutionError(f"cannot SUM non-numeric value {value!r}")
    return total if saw_float else int(total)


def _extreme(values: list[Value], smallest: bool) -> Value:
    best = values[0]
    for value in values[1:]:
        ordering = compare_values(value, best)
        if (smallest and ordering < 0) or (not smallest and ordering > 0):
            best = value
    return best


def to_sql_condition(condition: BinaryOp) -> str:
    """Readable rendering of a join condition used in error messages."""
    from repro.sql.printer import to_sql as _  # noqa: F401 - keep printer import local

    left = condition.left.qualified() if isinstance(condition.left, ColumnRef) else repr(condition.left)
    right = condition.right.qualified() if isinstance(condition.right, ColumnRef) else repr(condition.right)
    return f"{left} {condition.operator} {right}"


def _resolve_column(relation: Relation, ref: ColumnRef) -> str | None:
    """Resolve ``ref`` to one of ``relation``'s column names, or ``None``.

    Qualified references must match their qualifier exactly; unqualified
    references match any single column with that name.
    """
    if ref.table is not None:
        qualified = ref.qualified()
        return qualified if qualified in relation.columns else None
    try:
        return relation.columns[relation.column_index(ref.name)]
    except KeyError:
        return None
