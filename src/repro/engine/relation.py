"""Relations (row sets) and the relational operators the executor composes.

A :class:`Relation` is an immutable-ish list of rows with named, possibly
qualified columns (``table.column``).  The SQL executor translates an AST into
a pipeline of the operators defined here: scan, filter, project, join,
aggregate, sort, limit, distinct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.engine.values import Value, canonical, compare_values

Row = tuple[Value, ...]


@dataclass
class Relation:
    """A named-column row collection.

    Column names are qualified (``alias.column``) while flowing through the
    executor; projection at the end strips qualifiers for the final result.
    """

    columns: list[str]
    rows: list[Row] = field(default_factory=list)

    def __post_init__(self) -> None:
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"row width {len(row)} does not match columns {len(self.columns)}"
                )

    # -- basic accessors ------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def column_index(self, name: str) -> int:
        """Resolve a possibly-unqualified column name to its index.

        Unqualified names match any qualifier as long as the match is unique.
        """
        if name in self.columns:
            return self.columns.index(name)
        suffix = "." + name
        matches = [i for i, col in enumerate(self.columns) if col.endswith(suffix)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise KeyError(f"unknown column {name!r}; available: {self.columns}")
        raise KeyError(f"ambiguous column {name!r}; candidates: "
                       f"{[self.columns[i] for i in matches]}")

    def column_values(self, name: str) -> list[Value]:
        index = self.column_index(name)
        return [row[index] for row in self.rows]

    # -- operators ------------------------------------------------------------
    def filter(self, predicate: Callable[[Row], bool]) -> "Relation":
        return Relation(list(self.columns), [row for row in self.rows if predicate(row)])

    def project(self, indices: Sequence[int], names: Sequence[str]) -> "Relation":
        if len(indices) != len(names):
            raise ValueError("indices and names must align")
        rows = [tuple(row[i] for i in indices) for row in self.rows]
        return Relation(list(names), rows)

    def rename(self, names: Sequence[str]) -> "Relation":
        if len(names) != len(self.columns):
            raise ValueError("rename must preserve arity")
        return Relation(list(names), list(self.rows))

    def cross_join(self, other: "Relation") -> "Relation":
        columns = list(self.columns) + list(other.columns)
        rows = [left + right for left in self.rows for right in other.rows]
        return Relation(columns, rows)

    def hash_join(
        self,
        other: "Relation",
        left_key: str,
        right_key: str,
    ) -> "Relation":
        """Equi-join on ``left_key = right_key`` (inner join, NULLs never match)."""
        left_index = self.column_index(left_key)
        right_index = other.column_index(right_key)
        buckets: dict[object, list[Row]] = {}
        for row in other.rows:
            key = row[right_index]
            if key is None:
                continue
            buckets.setdefault(canonical(key), []).append(row)
        columns = list(self.columns) + list(other.columns)
        rows: list[Row] = []
        for row in self.rows:
            key = row[left_index]
            if key is None:
                continue
            for match in buckets.get(canonical(key), ()):
                rows.append(row + match)
        return Relation(columns, rows)

    def sort(self, keys: Sequence[tuple[str, bool]]) -> "Relation":
        """Sort by ``(column, descending)`` keys, NULLs first ascending."""
        import functools

        indices = [(self.column_index(name), descending) for name, descending in keys]

        def compare(left: Row, right: Row) -> int:
            for index, descending in indices:
                result = compare_values(left[index], right[index])
                if result != 0:
                    return -result if descending else result
            return 0

        return Relation(list(self.columns), sorted(self.rows, key=functools.cmp_to_key(compare)))

    def limit(self, count: int | None, offset: int = 0) -> "Relation":
        rows = self.rows[offset:]
        if count is not None:
            rows = rows[:count]
        return Relation(list(self.columns), list(rows))

    def distinct(self) -> "Relation":
        seen: set[tuple[object, ...]] = set()
        rows: list[Row] = []
        for row in self.rows:
            key = tuple(canonical(value) for value in row)
            if key not in seen:
                seen.add(key)
                rows.append(row)
        return Relation(list(self.columns), rows)

    def group_rows(self, key_columns: Sequence[str]) -> list[tuple[tuple[object, ...], list[Row]]]:
        """Group rows by the canonical values of ``key_columns`` (stable order)."""
        indices = [self.column_index(name) for name in key_columns]
        groups: dict[tuple[object, ...], list[Row]] = {}
        order: list[tuple[object, ...]] = []
        for row in self.rows:
            key = tuple(canonical(row[i]) for i in indices)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        return [(key, groups[key]) for key in order]


def from_records(columns: Sequence[str], records: Iterable[Sequence[Value]]) -> Relation:
    """Build a relation from an iterable of row sequences."""
    return Relation(list(columns), [tuple(record) for record in records])
