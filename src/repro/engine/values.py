"""Typed scalar values stored by the engine.

The engine keeps values as plain Python scalars (``int``, ``float``, ``str``,
``bool``, ``None``) but provides explicit coercion and comparison helpers so
the SQL executor behaves predictably across types -- in particular for the
NULL semantics and numeric/text comparisons that execution-accuracy evaluation
relies on.
"""

from __future__ import annotations

from typing import Union

from repro.schema.column import ColumnType

Value = Union[int, float, str, bool, None]


def coerce_value(raw: object, column_type: ColumnType) -> Value:
    """Coerce ``raw`` to the Python representation for ``column_type``.

    ``None`` always stays ``None`` (SQL NULL).  Raises :class:`ValueError`
    when the value cannot be represented in the requested type.
    """
    if raw is None:
        return None
    if column_type is ColumnType.INTEGER:
        if isinstance(raw, bool):
            return int(raw)
        return int(raw)
    if column_type is ColumnType.REAL:
        return float(raw)
    if column_type is ColumnType.BOOLEAN:
        if isinstance(raw, str):
            lowered = raw.strip().lower()
            if lowered in ("true", "t", "yes", "1"):
                return True
            if lowered in ("false", "f", "no", "0"):
                return False
            raise ValueError(f"cannot interpret {raw!r} as boolean")
        return bool(raw)
    # TEXT and DATE are stored as strings.
    return str(raw)


def is_null(value: Value) -> bool:
    return value is None


def compare_values(left: Value, right: Value) -> int:
    """Three-way comparison with SQL-ish NULL ordering (NULLs sort first).

    Returns -1, 0, or 1.  Mixed numeric comparisons are allowed; a number and
    a string are compared by their string forms, which keeps the comparison
    total (needed for deterministic ORDER BY).
    """
    if left is None and right is None:
        return 0
    if left is None:
        return -1
    if right is None:
        return 1
    if isinstance(left, bool) or isinstance(right, bool):
        left_key: object = int(left) if isinstance(left, bool) else left
        right_key: object = int(right) if isinstance(right, bool) else right
    else:
        left_key, right_key = left, right
    if isinstance(left_key, (int, float)) and isinstance(right_key, (int, float)):
        if left_key < right_key:
            return -1
        if left_key > right_key:
            return 1
        return 0
    left_str, right_str = str(left_key), str(right_key)
    if left_str < right_str:
        return -1
    if left_str > right_str:
        return 1
    return 0


def values_equal(left: Value, right: Value) -> bool:
    """SQL equality: NULL is never equal to anything (including NULL)."""
    if left is None or right is None:
        return False
    return compare_values(left, right) == 0


def canonical(value: Value) -> object:
    """Canonical hashable form used for grouping, DISTINCT, and EX comparison.

    Integral floats collapse to ints so that ``COUNT(*) = 3`` and ``3.0``
    compare equal, mirroring how execution-accuracy scripts normalise results.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, float):
        return round(value, 6)
    return value
