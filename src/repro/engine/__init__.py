"""In-memory relational engine.

The paper evaluates SQL generation with *execution accuracy* (EX): the result
of a generated query is compared against the result of the gold query on the
target database.  The original work executes against SQLite; this substrate
provides the equivalent capability offline -- typed rows stored per table, a
small set of relational operators, and result comparison semantics matching
the EX metric (order-insensitive multiset comparison unless the query orders
its output).
"""

from repro.engine.values import Value, coerce_value, compare_values
from repro.engine.relation import Relation, Row
from repro.engine.instance import DatabaseInstance, CatalogInstance
from repro.engine.comparison import results_equivalent

__all__ = [
    "Value",
    "coerce_value",
    "compare_values",
    "Relation",
    "Row",
    "DatabaseInstance",
    "CatalogInstance",
    "results_equivalent",
]
