"""Database instances: schema plus stored rows.

A :class:`DatabaseInstance` couples a :class:`repro.schema.Database` schema
with the actual rows for each table, giving the SQL executor something to scan
and the joinability heuristic something to measure value overlap on.  A
:class:`CatalogInstance` is the collection of instances for a whole catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.engine.relation import Relation, Row
from repro.engine.values import Value, coerce_value
from repro.schema.catalog import Catalog
from repro.schema.database import Database
from repro.utils.text import normalize_identifier


@dataclass
class DatabaseInstance:
    """Rows for every table of one database."""

    schema: Database
    tables: dict[str, list[Row]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in self.tables:
            if not self.schema.has_table(name):
                raise ValueError(f"rows supplied for unknown table {name!r}")
        for table in self.schema.tables:
            self.tables.setdefault(table.name, [])

    @property
    def name(self) -> str:
        return self.schema.name

    # -- data loading ---------------------------------------------------------
    def insert(self, table_name: str, values: Sequence[object]) -> None:
        """Insert one row, coercing each value to its column type."""
        table = self.schema.table(table_name)
        if len(values) != len(table.columns):
            raise ValueError(
                f"table {table.name!r} expects {len(table.columns)} values, got {len(values)}"
            )
        row = tuple(
            coerce_value(value, column.column_type)
            for value, column in zip(values, table.columns)
        )
        self.tables[table.name].append(row)

    def insert_many(self, table_name: str, rows: Iterable[Sequence[object]]) -> None:
        for row in rows:
            self.insert(table_name, row)

    # -- access -----------------------------------------------------------------
    def row_count(self, table_name: str) -> int:
        return len(self.tables[normalize_identifier(table_name)])

    def scan(self, table_name: str, alias: str | None = None) -> Relation:
        """Return the table's rows as a relation with qualified column names."""
        table = self.schema.table(table_name)
        prefix = normalize_identifier(alias) if alias else table.name
        columns = [f"{prefix}.{column.name}" for column in table.columns]
        return Relation(columns, list(self.tables[table.name]))

    def column_values(self) -> dict[str, dict[str, list[Value]]]:
        """Mapping ``table -> column -> values`` for joinability detection."""
        values: dict[str, dict[str, list[Value]]] = {}
        for table in self.schema.tables:
            rows = self.tables[table.name]
            values[table.name] = {
                column.name: [row[i] for row in rows]
                for i, column in enumerate(table.columns)
            }
        return values


@dataclass
class CatalogInstance:
    """Database instances for every database of a catalog."""

    catalog: Catalog
    instances: dict[str, DatabaseInstance] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in self.instances:
            if not self.catalog.has_database(name):
                raise ValueError(f"instance supplied for unknown database {name!r}")
        for database in self.catalog:
            self.instances.setdefault(database.name, DatabaseInstance(schema=database))

    def instance(self, database_name: str) -> DatabaseInstance:
        normalized = normalize_identifier(database_name)
        try:
            return self.instances[normalized]
        except KeyError:
            raise KeyError(f"no instance for database {normalized!r}") from None

    def __iter__(self):
        return iter(self.instances.values())

    def total_rows(self) -> int:
        return sum(
            sum(len(rows) for rows in instance.tables.values()) for instance in self
        )


def instance_from_mapping(
    schema: Database, data: Mapping[str, Iterable[Sequence[object]]]
) -> DatabaseInstance:
    """Convenience constructor: build an instance from ``{table: rows}``."""
    instance = DatabaseInstance(schema=schema)
    for table_name, rows in data.items():
        instance.insert_many(table_name, rows)
    return instance
