"""Result-set comparison for execution accuracy (EX).

Following the evaluation protocol of the paper (and the Spider/BIRD official
scripts it cites), two SQL results are considered equivalent when they contain
the same multiset of rows.  Column order matters (queries project named
columns in a fixed order), row order matters only when the query has an
``ORDER BY``.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.engine.relation import Relation
from repro.engine.values import canonical


def _canonical_rows(relation: Relation) -> list[tuple[object, ...]]:
    return [tuple(canonical(value) for value in row) for row in relation.rows]


def results_equivalent(
    predicted: Relation | None,
    gold: Relation | None,
    order_sensitive: bool = False,
) -> bool:
    """Return ``True`` when two query results are EX-equivalent.

    ``None`` represents an execution failure: a failed prediction never
    matches, and two failures do not match either (a failing gold query is a
    dataset bug we refuse to reward).
    """
    if predicted is None or gold is None:
        return False
    if len(predicted.columns) != len(gold.columns):
        return False
    predicted_rows = _canonical_rows(predicted)
    gold_rows = _canonical_rows(gold)
    if order_sensitive:
        return predicted_rows == gold_rows
    return Counter(predicted_rows) == Counter(gold_rows)


def rows_as_sorted_tuples(relation: Relation) -> list[tuple[object, ...]]:
    """Deterministic row listing used in example scripts and debugging."""
    return sorted(_canonical_rows(relation), key=_sort_key)


def _sort_key(row: Sequence[object]) -> tuple[str, ...]:
    return tuple(f"{type(value).__name__}:{value}" for value in row)
