"""DBCopilot core: the paper's primary contribution.

The copilot model routes a natural-language question to its SQL query schema
``S = <database, tables>`` over a massive catalog:

* :mod:`repro.core.graph` -- schema graph construction (Algorithm 1).
* :mod:`repro.core.serialization` -- DFS serialization of SQL query schemata
  (Algorithm 2) and the basic (unordered) serialization used in ablations.
* :mod:`repro.core.sampling` -- random-walk sampling of valid schemata.
* :mod:`repro.core.questioner` -- reverse schema-to-question generation.
* :mod:`repro.core.synthesis` -- training-data synthesis combining the two.
* :mod:`repro.core.trie` / :mod:`repro.core.constrained` -- prefix-trie,
  graph-based constrained decoding (§3.5).
* :mod:`repro.core.router` -- the Seq2Seq DSI schema router.
* :mod:`repro.core.dbcopilot` -- the end-to-end facade that builds the graph,
  synthesizes data, trains the router, and routes questions.
"""

from repro.core.graph import NodeKind, SchemaGraph
from repro.core.serialization import (
    SerializedSchema,
    basic_serialize,
    dfs_serialize,
    schema_to_tokens,
    tokens_to_schema,
)
from repro.core.sampling import SchemaSampler, SamplerConfig
from repro.core.questioner import NeuralQuestioner, SchemaQuestioner, TemplateQuestioner
from repro.core.synthesis import SynthesisConfig, SyntheticExample, synthesize_training_data
from repro.core.trie import PrefixTrie
from repro.core.constrained import GraphConstrainedDecoding
from repro.core.router import (
    RouterConfig,
    SchemaRoute,
    SchemaRouter,
    merge_route_lists,
    normalize_route_scores,
)
from repro.core.dbcopilot import DBCopilot, DBCopilotConfig

__all__ = [
    "NodeKind",
    "SchemaGraph",
    "SerializedSchema",
    "basic_serialize",
    "dfs_serialize",
    "schema_to_tokens",
    "tokens_to_schema",
    "SchemaSampler",
    "SamplerConfig",
    "SchemaQuestioner",
    "TemplateQuestioner",
    "NeuralQuestioner",
    "SynthesisConfig",
    "SyntheticExample",
    "synthesize_training_data",
    "PrefixTrie",
    "GraphConstrainedDecoding",
    "RouterConfig",
    "SchemaRoute",
    "SchemaRouter",
    "merge_route_lists",
    "normalize_route_scores",
    "DBCopilot",
    "DBCopilotConfig",
]
