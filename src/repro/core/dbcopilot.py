"""The DBCopilot facade: build, train, and route end to end.

``DBCopilot.build(...)`` performs the full training pipeline of Figure 2:

1. construct the schema graph from the catalog (Algorithm 1),
2. instantiate a schema questioner (template-based by default, or a neural
   questioner trained in reverse on NL2SQL training examples),
3. synthesize training data by sampling schemata with random walks and
   generating pseudo-questions,
4. train the Seq2Seq schema router with DFS serialization, and
5. wire up graph-constrained diverse-beam decoding for inference.

The resulting object routes questions to candidate schemata and plugs into the
SQL-generation pipeline of :mod:`repro.llm`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.graph import SchemaGraph
from repro.core.questioner import NeuralQuestioner, SchemaQuestioner, TemplateQuestioner
from repro.core.router import RouterConfig, SchemaRoute, SchemaRouter
from repro.core.sampling import SamplerConfig, SchemaSampler
from repro.core.synthesis import SynthesisConfig, SynthesisReport, synthesize_training_data
from repro.datasets.examples import Example
from repro.engine.instance import CatalogInstance
from repro.retrieval.base import RoutingPrediction
from repro.schema.catalog import Catalog


@dataclass(frozen=True)
class DBCopilotConfig:
    """End-to-end configuration."""

    router: RouterConfig = field(default_factory=RouterConfig)
    sampler: SamplerConfig = field(default_factory=SamplerConfig)
    synthesis: SynthesisConfig = field(default_factory=SynthesisConfig)
    #: "template" or "neural" (the latter requires training examples).
    questioner: str = "template"
    #: Paraphrase rate of the template questioner.
    paraphrase_probability: float = 0.5
    seed: int = 0


@dataclass
class BuildReport:
    """Timings and statistics of a build (feeds the Table 5 reproduction)."""

    build_seconds: float = 0.0
    synthesis: SynthesisReport | None = None
    training_losses: list[float] = field(default_factory=list)
    num_parameters: int = 0


class DBCopilot:
    """Schema routing over massive databases via a compact copilot model."""

    def __init__(self, graph: SchemaGraph, router: SchemaRouter,
                 questioner: SchemaQuestioner, config: DBCopilotConfig,
                 build_report: BuildReport) -> None:
        self.graph = graph
        self.router = router
        self.questioner = questioner
        self.config = config
        self.build_report = build_report

    # -- construction ----------------------------------------------------------
    @classmethod
    def build(cls, catalog: Catalog, instances: CatalogInstance | None = None,
              train_examples: list[Example] | None = None,
              config: DBCopilotConfig | None = None) -> "DBCopilot":
        """Build and train a DBCopilot instance over ``catalog``.

        ``train_examples`` are only used to train the neural questioner (when
        ``config.questioner == "neural"``); the router itself is always
        trained on synthetic data, as in the paper.
        """
        config = config or DBCopilotConfig()
        started = time.perf_counter()
        graph = SchemaGraph.from_catalog(catalog, instances)
        questioner = cls._build_questioner(catalog, train_examples, config)
        sampler = SchemaSampler(graph, config=config.sampler, seed=config.seed)
        report = synthesize_training_data(sampler, questioner, config.synthesis)
        router = SchemaRouter(graph=graph, config=config.router)
        losses = router.fit(report.examples)
        build_report = BuildReport(
            build_seconds=time.perf_counter() - started,
            synthesis=report,
            training_losses=losses,
            num_parameters=router.num_parameters(),
        )
        return cls(graph=graph, router=router, questioner=questioner,
                   config=config, build_report=build_report)

    @staticmethod
    def _build_questioner(catalog: Catalog, train_examples: list[Example] | None,
                          config: DBCopilotConfig) -> SchemaQuestioner:
        if config.questioner == "neural":
            questioner = NeuralQuestioner(catalog, seed=config.seed)
            if train_examples:
                triples = [(example.database, example.tables, example.question)
                           for example in train_examples]
                questioner.fit(triples)
            return questioner
        if config.questioner == "template":
            return TemplateQuestioner(catalog=catalog,
                                      paraphrase_probability=config.paraphrase_probability,
                                      seed=config.seed)
        raise ValueError(f"unknown questioner kind {config.questioner!r}")

    # -- inference ------------------------------------------------------------------
    def route(self, question: str, max_candidates: int | None = None) -> list[SchemaRoute]:
        """Return candidate schemata for ``question`` (best first)."""
        return self.router.route(question, max_candidates=max_candidates)

    def predict(self, question: str, max_candidates: int | None = None) -> RoutingPrediction:
        """Routing in the shared prediction format used by the evaluation."""
        return self.router.predict(question, max_candidates=max_candidates)

    def best_schema(self, question: str) -> SchemaRoute | None:
        routes = self.route(question, max_candidates=1)
        return routes[0] if routes else None
