"""Random-walk sampling of valid SQL query schemata (paper §3.4).

Training data synthesis first samples a large number of valid schemata by
performing finite-length random walks on the schema graph starting at the
root: the walk picks a database, then wanders across connected tables; the
database and traversed tables form a sampled schema.  The synthesis pipeline
additionally guarantees full coverage of every database and table, matching
the paper's setup ("covering all (100%) databases and tables").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.graph import SchemaGraph
from repro.utils.rng import SeededRng


@dataclass(frozen=True)
class SamplerConfig:
    """Random-walk parameters."""

    #: Maximum number of tables a sampled schema may contain.
    max_tables: int = 3
    #: Probability of stopping the walk after each table (geometric length).
    stop_probability: float = 0.45


class SchemaSampler:
    """Samples valid ``<database, tables>`` schemata from a schema graph."""

    def __init__(self, graph: SchemaGraph, config: SamplerConfig | None = None,
                 seed: int = 0) -> None:
        self.graph = graph
        self.config = config or SamplerConfig()
        self._rng = SeededRng(seed)

    # -- sampling -------------------------------------------------------------
    def sample(self) -> tuple[str, tuple[str, ...]]:
        """Sample one schema via a random walk from the root."""
        database = self._rng.choice(self.graph.databases())
        return self.sample_from_database(database)

    def sample_from_database(self, database: str,
                             first_table: str | None = None) -> tuple[str, tuple[str, ...]]:
        """Sample a schema within ``database`` (optionally anchored at a table)."""
        tables_available = self.graph.tables_of(database)
        if not tables_available:
            return database, ()
        current = first_table if first_table is not None else self._rng.choice(tables_available)
        visited = [current]
        while len(visited) < self.config.max_tables:
            if self._rng.coin(self.config.stop_probability):
                break
            neighbors = [
                neighbor for neighbor in self.graph.table_neighbors(database, current)
                if neighbor not in visited
            ]
            if not neighbors:
                break
            current = self._rng.choice(neighbors)
            visited.append(current)
        return database, tuple(visited)

    def sample_many(self, count: int) -> list[tuple[str, tuple[str, ...]]]:
        """Sample ``count`` schemata by independent random walks."""
        return [self.sample() for _ in range(count)]

    def coverage_samples(self) -> list[tuple[str, tuple[str, ...]]]:
        """One anchored sample per table, guaranteeing full catalog coverage."""
        samples = []
        for database in self.graph.databases():
            for table in self.graph.tables_of(database):
                samples.append(self.sample_from_database(database, first_table=table))
        return samples
