"""Training data synthesis: sampled schemata + reverse-generated questions.

This combines the random-walk schema sampler with a schema questioner to
produce the ``(question, schema)`` pseudo-instances the router is trained on
(paper §3.4, Figure 2).  Coverage of every database and table is guaranteed by
anchoring one walk at each table before filling the budget with free walks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.questioner import SchemaQuestioner
from repro.core.sampling import SchemaSampler


@dataclass(frozen=True)
class SynthesisConfig:
    """Synthesis parameters."""

    #: Total number of synthetic instances (the paper uses 1e5 per collection;
    #: the default here targets CPU-minute training).
    num_samples: int = 3000
    #: Number of distinct pseudo-questions generated per sampled schema.
    questions_per_schema: int = 1


@dataclass(frozen=True)
class SyntheticExample:
    """One synthesized training pair."""

    question: str
    database: str
    tables: tuple[str, ...]


@dataclass
class SynthesisReport:
    """Summary of a synthesis run (used in tests and docs)."""

    num_examples: int = 0
    num_databases_covered: int = 0
    num_tables_covered: int = 0
    tables_total: int = 0
    databases_total: int = 0
    examples: list[SyntheticExample] = field(default_factory=list)

    @property
    def full_coverage(self) -> bool:
        return (self.num_databases_covered == self.databases_total
                and self.num_tables_covered == self.tables_total)


def synthesize_training_data(sampler: SchemaSampler, questioner: SchemaQuestioner,
                             config: SynthesisConfig | None = None) -> SynthesisReport:
    """Generate synthetic ``(question, schema)`` training data."""
    config = config or SynthesisConfig()
    graph = sampler.graph

    schemas: list[tuple[str, tuple[str, ...]]] = []
    # 1) coverage pass: one anchored walk per table of every database.  If the
    #    coverage pass alone exceeds the budget it is kept in full -- full
    #    coverage matters more than the exact sample count.
    schemas.extend(sampler.coverage_samples())
    # 2) fill the remaining budget with free random walks.
    remaining = max(config.num_samples - len(schemas), 0)
    schemas.extend(sampler.sample_many(remaining))

    examples: list[SyntheticExample] = []
    covered_databases: set[str] = set()
    covered_tables: set[tuple[str, str]] = set()
    for database, tables in schemas:
        if not tables:
            continue
        covered_databases.add(database)
        covered_tables.update((database, table) for table in tables)
        for _ in range(config.questions_per_schema):
            question = questioner.question_for(database, tables)
            examples.append(SyntheticExample(question=question, database=database, tables=tables))

    databases_total = len(graph.databases())
    tables_total = sum(len(graph.tables_of(database)) for database in graph.databases())
    return SynthesisReport(
        num_examples=len(examples),
        num_databases_covered=len(covered_databases),
        num_tables_covered=len(covered_tables),
        databases_total=databases_total,
        tables_total=tables_total,
        examples=examples,
    )
