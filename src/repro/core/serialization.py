"""Schema serialization (paper §3.3, Algorithm 2).

A SQL query schema ``S = <database, tables>`` is a partially ordered set; to
train a Seq2Seq router it must be turned into a token sequence.  Two
strategies are provided:

* **DFS serialization** performs a depth-first traversal of the schema graph
  restricted to the schema's nodes, so that consecutive elements are related
  (database before its tables, joined tables adjacent).  The node iteration
  order is randomised, so the same schema can yield different -- all valid --
  serializations, which is exactly how the paper trains the router.
* **Basic serialization** simply lists the tables in random order after the
  database; it is the ablation baseline ("w/ BS" in Table 7).

Serialized schemata are converted to word-token streams with an element
separator for the tokenizer, and parsed back with :func:`tokens_to_schema`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.graph import SchemaGraph, database_node, table_node
from repro.utils.rng import SeededRng
from repro.utils.text import tokenize_text

#: Separator token emitted between schema elements in the target stream.
ELEMENT_SEPARATOR = "<sep>"


@dataclass(frozen=True)
class SerializedSchema:
    """A serialization: ordered element names (database first)."""

    database: str
    elements: tuple[str, ...]

    @property
    def tables(self) -> tuple[str, ...]:
        return self.elements[1:]


def dfs_serialize(graph: SchemaGraph, database: str, tables: tuple[str, ...] | list[str],
                  rng: SeededRng | None = None) -> SerializedSchema:
    """Depth-first-search serialization of a schema (Algorithm 2).

    The DFS starts at the root node and only visits nodes that belong to the
    schema; successor iteration order is shuffled by ``rng`` (the paper's
    iteration order :math:`\\pi`).  Tables unreachable through table relations
    are appended afterwards so the serialization always covers the schema.
    """
    rng = rng or SeededRng(0)
    wanted = {graph.root, database_node(database)}
    wanted.update(table_node(database, table) for table in tables)

    visited: list[tuple] = []
    visited_set: set[tuple] = set()
    stack: list[tuple] = [graph.root]
    while stack:
        node = stack.pop()
        if node in visited_set:
            continue
        visited.append(node)
        visited_set.add(node)
        if visited_set == wanted:
            break
        successors = [
            successor for successor in graph.successors(node)
            if successor in wanted and successor not in visited_set
        ]
        stack.extend(rng.shuffled(successors))

    ordered_names = [graph.node_name(node) for node in visited[1:]]  # skip the root
    # Append any table that DFS could not reach (disconnected under the graph).
    for table in tables:
        if table not in ordered_names:
            ordered_names.append(table)
    return SerializedSchema(database=database, elements=tuple(ordered_names))


def basic_serialize(database: str, tables: tuple[str, ...] | list[str],
                    rng: SeededRng | None = None) -> SerializedSchema:
    """Unordered (randomly shuffled) serialization -- the ablation baseline."""
    rng = rng or SeededRng(0)
    shuffled = rng.shuffled(list(tables))
    return SerializedSchema(database=database, elements=tuple([database] + shuffled))


def element_words(name: str) -> list[str]:
    """Words composing one schema element identifier."""
    return tokenize_text(name)


def schema_to_tokens(serialized: SerializedSchema) -> list[str]:
    """Convert a serialization to the word-token stream the router decodes.

    Every element contributes its identifier words followed by the element
    separator, e.g. ``concert_singer singer_in_concert`` becomes
    ``concert singer <sep> singer in concert <sep>``.
    """
    tokens: list[str] = []
    for element in serialized.elements:
        tokens.extend(element_words(element))
        tokens.append(ELEMENT_SEPARATOR)
    return tokens


def tokens_to_elements(tokens: list[str]) -> list[tuple[str, ...]]:
    """Split a decoded token stream into element word tuples."""
    elements: list[tuple[str, ...]] = []
    current: list[str] = []
    for token in tokens:
        if token == ELEMENT_SEPARATOR:
            if current:
                elements.append(tuple(current))
                current = []
        else:
            current.append(token)
    if current:
        elements.append(tuple(current))
    return elements


def tokens_to_schema(tokens: list[str], graph: SchemaGraph) -> tuple[str, tuple[str, ...]] | None:
    """Parse a decoded token stream back into ``(database, tables)``.

    Returns ``None`` when the first element does not name a database of the
    graph.  Table elements that do not name tables of that database are
    dropped (they can only appear when decoding unconstrained).
    """
    elements = tokens_to_elements(tokens)
    if not elements:
        return None
    database = _match_name(elements[0], graph.databases())
    if database is None:
        return None
    valid_tables = graph.tables_of(database)
    tables: list[str] = []
    for element in elements[1:]:
        table = _match_name(element, valid_tables)
        if table is not None and table not in tables:
            tables.append(table)
    return database, tuple(tables)


def _match_name(words: tuple[str, ...], candidates: list[str]) -> str | None:
    """Find the candidate identifier whose word decomposition equals ``words``."""
    for candidate in candidates:
        if tuple(element_words(candidate)) == words:
            return candidate
    return None
