"""Prefix trie over token-id sequences.

Constrained decoding maintains "a dynamic prefix tree containing the names of
accessible nodes from decoded schema elements" (paper §3.5).  The trie maps
the word-id decomposition of each accessible identifier to the identifier, so
that at every decoding step the set of allowed next tokens is the set of trie
children under the already-decoded word prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class _TrieNode:
    children: dict[int, "_TrieNode"] = field(default_factory=dict)
    #: Identifiers whose word decomposition ends exactly at this node.
    terminals: list[str] = field(default_factory=list)


class PrefixTrie:
    """A trie keyed by token ids, storing identifier strings at terminals."""

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._size = 0

    def insert(self, token_ids: Sequence[int], identifier: str) -> None:
        """Insert one identifier under its token-id decomposition."""
        node = self._root
        for token_id in token_ids:
            node = node.children.setdefault(int(token_id), _TrieNode())
        node.terminals.append(identifier)
        self._size += 1

    def extend(self, items: Iterable[tuple[Sequence[int], str]]) -> None:
        for token_ids, identifier in items:
            self.insert(token_ids, identifier)

    def __len__(self) -> int:
        return self._size

    # -- queries -------------------------------------------------------------
    def node_at(self, prefix: Sequence[int]) -> _TrieNode | None:
        node = self._root
        for token_id in prefix:
            node = node.children.get(int(token_id))
            if node is None:
                return None
        return node

    def allowed_next(self, prefix: Sequence[int]) -> set[int]:
        """Token ids that can extend ``prefix`` towards some identifier."""
        node = self.node_at(prefix)
        if node is None:
            return set()
        return set(node.children.keys())

    def is_terminal(self, prefix: Sequence[int]) -> bool:
        """Whether ``prefix`` spells a complete identifier."""
        node = self.node_at(prefix)
        return bool(node and node.terminals)

    def identifiers_at(self, prefix: Sequence[int]) -> list[str]:
        node = self.node_at(prefix)
        return list(node.terminals) if node else []
