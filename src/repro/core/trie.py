"""Prefix trie over token-id sequences.

Constrained decoding maintains "a dynamic prefix tree containing the names of
accessible nodes from decoded schema elements" (paper §3.5).  The trie maps
the word-id decomposition of each accessible identifier to the identifier, so
that at every decoding step the set of allowed next tokens is the set of trie
children under the already-decoded word prefix.

Two query styles share the same nodes:

* prefix walks (:meth:`PrefixTrie.node_at` and friends), which re-descend from
  the root for every query -- the reference-oracle shape;
* a cursor API (:meth:`PrefixTrie.root` / :meth:`PrefixTrie.child` plus the
  node-level accessors), which lets incremental callers carry the current
  node through the search and pay O(1) per consumed token instead of O(len)
  root re-walks per step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class _TrieNode:
    children: dict[int, "_TrieNode"] = field(default_factory=dict)
    #: Identifiers whose word decomposition ends exactly at this node.
    terminals: list[str] = field(default_factory=list)


class PrefixTrie:
    """A trie keyed by token ids, storing identifier strings at terminals."""

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._size = 0

    def insert(self, token_ids: Sequence[int], identifier: str) -> None:
        """Insert one identifier under its token-id decomposition."""
        node = self._root
        for token_id in token_ids:
            node = node.children.setdefault(int(token_id), _TrieNode())
        node.terminals.append(identifier)
        self._size += 1

    def extend(self, items: Iterable[tuple[Sequence[int], str]]) -> None:
        for token_ids, identifier in items:
            self.insert(token_ids, identifier)

    def __len__(self) -> int:
        return self._size

    # -- cursor API ----------------------------------------------------------
    def root(self) -> _TrieNode:
        """The cursor at the empty prefix (``node_at(())``, but O(1))."""
        return self._root

    @staticmethod
    def child(node: _TrieNode | None, token_id: int) -> _TrieNode | None:
        """Advance a cursor by one token; ``None`` stays ``None`` (dead walk)."""
        if node is None:
            return None
        return node.children.get(int(token_id))

    @staticmethod
    def node_children(node: _TrieNode | None) -> set[int]:
        """Token ids that extend the cursor (``allowed_next`` at the node)."""
        return set(node.children.keys()) if node is not None else set()

    @staticmethod
    def node_is_terminal(node: _TrieNode | None) -> bool:
        """Whether the cursor spells a complete identifier."""
        return bool(node and node.terminals)

    @staticmethod
    def node_identifiers(node: _TrieNode | None) -> list[str]:
        """Identifiers ending exactly at the cursor."""
        return list(node.terminals) if node is not None else []

    # -- queries -------------------------------------------------------------
    def node_at(self, prefix: Sequence[int]) -> _TrieNode | None:
        node = self._root
        for token_id in prefix:
            node = node.children.get(int(token_id))
            if node is None:
                return None
        return node

    def allowed_next(self, prefix: Sequence[int]) -> set[int]:
        """Token ids that can extend ``prefix`` towards some identifier."""
        node = self.node_at(prefix)
        if node is None:
            return set()
        return set(node.children.keys())

    def is_terminal(self, prefix: Sequence[int]) -> bool:
        """Whether ``prefix`` spells a complete identifier."""
        node = self.node_at(prefix)
        return bool(node and node.terminals)

    def identifiers_at(self, prefix: Sequence[int]) -> list[str]:
        node = self.node_at(prefix)
        return list(node.terminals) if node else []
