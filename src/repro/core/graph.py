"""Schema graph construction (paper §3.2, Algorithm 1).

The schema graph is a three-tiered heterogeneous directed graph:

* a single root node representing the database collection,
* one node per database, connected from the root (inclusion relation),
* one node per table, connected from its database (inclusion relation) and to
  every related table (Primary-Foreign, Foreign-Foreign, and value-overlap
  Joinable relations, added in both directions).

Any valid single-database SQL query schema is a trail on this graph starting
at the root, which is what makes relation-aware serialization, random-walk
sampling, and graph-constrained decoding possible.
"""

from __future__ import annotations

from enum import Enum

import networkx as nx

from repro.engine.instance import CatalogInstance
from repro.schema.catalog import Catalog
from repro.schema.joinability import DEFAULT_JACCARD_THRESHOLD, joinable_table_pairs


class NodeKind(str, Enum):
    """Type tag attached to every graph node."""

    ROOT = "root"
    DATABASE = "database"
    TABLE = "table"


#: The single root node (set of all databases).
ROOT_NODE = ("root",)


def database_node(database: str) -> tuple[str, str]:
    return ("database", database)


def table_node(database: str, table: str) -> tuple[str, str, str]:
    return ("table", database, table)


class SchemaGraph:
    """The heterogeneous schema graph over a catalog."""

    def __init__(self, catalog: Catalog, graph: nx.DiGraph) -> None:
        self.catalog = catalog
        self.graph = graph

    # -- construction (Algorithm 1) -------------------------------------------
    @classmethod
    def from_catalog(cls, catalog: Catalog, instances: CatalogInstance | None = None,
                     jaccard_threshold: float = DEFAULT_JACCARD_THRESHOLD) -> "SchemaGraph":
        """Build the schema graph for ``catalog``.

        When ``instances`` is provided, value-overlap Joinable edges are added
        using the Jaccard heuristic (threshold 0.85 by default, §4.1.5);
        otherwise only declared foreign-key relationships produce table edges.
        """
        graph = nx.DiGraph()
        graph.add_node(ROOT_NODE, kind=NodeKind.ROOT)
        for database in catalog:
            db_node = database_node(database.name)
            graph.add_node(db_node, kind=NodeKind.DATABASE, name=database.name)
            graph.add_edge(ROOT_NODE, db_node, relation="includes")
            for table in database.tables:
                t_node = table_node(database.name, table.name)
                graph.add_node(t_node, kind=NodeKind.TABLE, name=table.name,
                               database=database.name)
                graph.add_edge(db_node, t_node, relation="includes")
            column_values = None
            if instances is not None:
                column_values = instances.instance(database.name).column_values()
            # Joinable covers Primary-Foreign and Foreign-Foreign relations.
            for left, right in joinable_table_pairs(database, column_values,
                                                    threshold=jaccard_threshold):
                left_node = table_node(database.name, left)
                right_node = table_node(database.name, right)
                graph.add_edge(left_node, right_node, relation="joinable")
                graph.add_edge(right_node, left_node, relation="joinable")
        return cls(catalog=catalog, graph=graph)

    @classmethod
    def from_components(cls, catalog: Catalog,
                        joinable_edges: "list[tuple[str, str, str]] | tuple" = ()) -> "SchemaGraph":
        """Rebuild a graph from a catalog plus explicit joinable table pairs.

        This is the checkpoint-restore path: a saved graph records its
        ``(database, left_table, right_table)`` joinable pairs so the exact
        edge set is reproduced without re-running the Jaccard heuristic (which
        would need the original table instances).
        """
        graph = nx.DiGraph()
        graph.add_node(ROOT_NODE, kind=NodeKind.ROOT)
        for database in catalog:
            db_node = database_node(database.name)
            graph.add_node(db_node, kind=NodeKind.DATABASE, name=database.name)
            graph.add_edge(ROOT_NODE, db_node, relation="includes")
            for table in database.tables:
                t_node = table_node(database.name, table.name)
                graph.add_node(t_node, kind=NodeKind.TABLE, name=table.name,
                               database=database.name)
                graph.add_edge(db_node, t_node, relation="includes")
        for database_name, left, right in joinable_edges:
            left_node = table_node(database_name, left)
            right_node = table_node(database_name, right)
            if left_node not in graph or right_node not in graph:
                raise ValueError(
                    f"joinable edge references unknown table: {database_name}.{left}"
                    f" <-> {database_name}.{right}"
                )
            graph.add_edge(left_node, right_node, relation="joinable")
            graph.add_edge(right_node, left_node, relation="joinable")
        return cls(catalog=catalog, graph=graph)

    # -- queries ------------------------------------------------------------------
    @property
    def root(self) -> tuple[str, ...]:
        return ROOT_NODE

    def databases(self) -> list[str]:
        return [self.graph.nodes[node]["name"]
                for node in self.graph.successors(ROOT_NODE)]

    def tables_of(self, database: str) -> list[str]:
        db_node = database_node(database)
        if db_node not in self.graph:
            raise KeyError(f"unknown database {database!r}")
        return [self.graph.nodes[node]["name"]
                for node in self.graph.successors(db_node)
                if self.graph.nodes[node]["kind"] is NodeKind.TABLE]

    def table_neighbors(self, database: str, table: str) -> list[str]:
        """Tables connected to ``table`` by a table relation (joinable edge)."""
        t_node = table_node(database, table)
        if t_node not in self.graph:
            raise KeyError(f"unknown table {database}.{table}")
        neighbors = []
        for successor in self.graph.successors(t_node):
            if self.graph.nodes[successor]["kind"] is NodeKind.TABLE:
                neighbors.append(self.graph.nodes[successor]["name"])
        return neighbors

    def has_database(self, database: str) -> bool:
        return database_node(database) in self.graph

    def has_table(self, database: str, table: str) -> bool:
        return table_node(database, table) in self.graph

    def successors(self, node: tuple) -> list[tuple]:
        return list(self.graph.successors(node))

    def node_name(self, node: tuple) -> str:
        if node == ROOT_NODE:
            return "<root>"
        return self.graph.nodes[node]["name"]

    def node_kind(self, node: tuple) -> NodeKind:
        return self.graph.nodes[node]["kind"]

    # -- validity --------------------------------------------------------------------
    def is_valid_schema(self, database: str, tables: tuple[str, ...] | list[str],
                        require_connected: bool = True) -> bool:
        """Check that ``<database, tables>`` is a valid SQL query schema.

        Validity requires every table to exist in the database and -- when
        ``require_connected`` -- the tables to form a connected subgraph under
        table relations (single tables are trivially connected).
        """
        if not self.has_database(database):
            return False
        table_list = list(tables)
        if not table_list:
            return False
        for table in table_list:
            if not self.has_table(database, table):
                return False
        if not require_connected or len(table_list) == 1:
            return True
        undirected = set()
        for table in table_list:
            for neighbor in self.table_neighbors(database, table):
                if neighbor in table_list:
                    undirected.add(frozenset((table, neighbor)))
        # Connectivity via union-find over the induced edges.
        parent = {table: table for table in table_list}

        def find(item: str) -> str:
            while parent[item] != item:
                parent[item] = parent[parent[item]]
                item = parent[item]
            return item

        for edge in undirected:
            left, right = tuple(edge)
            parent[find(left)] = find(right)
        roots = {find(table) for table in table_list}
        return len(roots) == 1

    def joinable_edges(self) -> list[tuple[str, str, str]]:
        """Undirected joinable table pairs as ``(database, left, right)``, each once."""
        edges: list[tuple[str, str, str]] = []
        seen: set[tuple[str, frozenset[str]]] = set()
        for source, target, data in self.graph.edges(data=True):
            if data.get("relation") != "joinable":
                continue
            database = source[1]
            key = (database, frozenset((source[2], target[2])))
            if key in seen:
                continue
            seen.add(key)
            edges.append((database, source[2], target[2]))
        return edges

    # -- statistics -----------------------------------------------------------------
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    def num_edges(self) -> int:
        return self.graph.number_of_edges()
