"""Reverse schema-to-question generation (paper §3.4, Figure 3).

The schema questioner receives a (detailed) schema -- database, tables, and
their columns -- and produces a natural-language pseudo-question that such a
schema could answer.  The paper trains a T5 questioner on the NL2SQL training
sets; offline two implementations are provided:

* :class:`TemplateQuestioner` -- a deterministic, lexicon-driven generator
  that phrases questions about the sampled tables and paraphrases schema
  words.  It is the default for the experiments because it produces reliable,
  diverse questions at zero training cost; the semantic-mismatch signal the
  router needs comes from the paraphrasing step.
* :class:`NeuralQuestioner` -- a small Seq2Seq model trained in reverse on the
  (schema, question) pairs extracted from the NL2SQL training split, matching
  the paper's design.  It is exercised by tests and available for ablations;
  its output quality is limited by the model size (the hallucination /
  generation-bias issue the paper's case study discusses).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.datasets.vocabulary import SYNONYM_LEXICON
from repro.nn.data import Batch  # noqa: F401  (re-exported for typing convenience)
from repro.nn.decoding import greedy_decode
from repro.nn.seq2seq import Seq2SeqConfig, Seq2SeqModel
from repro.nn.tokenizer import Vocabulary, WordTokenizer
from repro.nn.trainer import Seq2SeqTrainer, TrainerConfig
from repro.schema.catalog import Catalog
from repro.schema.table import Table
from repro.utils.rng import SeededRng
from repro.utils.text import pluralize, tokenize_text


class SchemaQuestioner(ABC):
    """Interface: generate a pseudo-question for a sampled schema."""

    @abstractmethod
    def question_for(self, database: str, tables: tuple[str, ...]) -> str:
        """Return one natural-language question answerable by the schema."""


@dataclass
class TemplateQuestioner(SchemaQuestioner):
    """Template- and lexicon-based questioner.

    Questions mention the sampled tables and a few of their columns, with each
    schema word paraphrased with probability ``paraphrase_probability`` --
    this is what teaches the router the semantic mapping between user
    vocabulary and schema vocabulary.
    """

    catalog: Catalog
    paraphrase_probability: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = SeededRng(self.seed)

    # -- public API -----------------------------------------------------------
    def question_for(self, database: str, tables: tuple[str, ...]) -> str:
        rng = self._rng.child(f"{database}:{'|'.join(tables)}:{self._rng.randint(0, 10**9)}")
        db = self.catalog.database(database)
        table_objects = [db.table(name) for name in tables if db.has_table(name)]
        if not table_objects:
            return f"What information is stored about {self._phrase(database, rng)}?"
        if len(table_objects) == 1:
            return self._single_table_question(table_objects[0], rng)
        return self._multi_table_question(table_objects, rng)

    # -- phrasing helpers ---------------------------------------------------------
    def _phrase(self, identifier: str, rng: SeededRng) -> str:
        """Turn an identifier into words, paraphrasing each with some probability."""
        words = []
        for word in tokenize_text(identifier):
            synonyms = SYNONYM_LEXICON.get(word)
            if synonyms and rng.coin(self.paraphrase_probability):
                words.append(rng.choice(synonyms))
            else:
                words.append(word)
        return " ".join(words)

    def _entity_phrase(self, table: Table, rng: SeededRng, plural: bool = True) -> str:
        words = tokenize_text(table.name)
        head = words[-1]
        head = pluralize(head) if plural else head
        phrase_words = words[:-1] + [head]
        phrased = []
        for word in phrase_words:
            synonyms = SYNONYM_LEXICON.get(word) or SYNONYM_LEXICON.get(word.rstrip("s"))
            if synonyms and rng.coin(self.paraphrase_probability):
                phrased.append(rng.choice(synonyms))
            else:
                phrased.append(word)
        return " ".join(phrased)

    def _interesting_columns(self, table: Table, rng: SeededRng, count: int = 2) -> list[str]:
        candidates = [
            column.name for column in table.columns
            if not column.is_primary_key and not column.name.endswith("_id")
        ]
        if not candidates:
            candidates = table.column_names
        return rng.sample(candidates, min(count, len(candidates)))

    # -- templates -------------------------------------------------------------------
    def _single_table_question(self, table: Table, rng: SeededRng) -> str:
        entity = self._entity_phrase(table, rng)
        columns = self._interesting_columns(table, rng)
        column_phrases = [self._phrase(column, rng) for column in columns]
        numeric = [c.name for c in table.columns if c.column_type.is_numeric and not c.is_primary_key]
        templates = [
            f"What is the {column_phrases[0]} of all {entity}?",
            f"How many {entity} are there in total?",
            f"List the {' and '.join(column_phrases)} of every {self._entity_phrase(table, rng, plural=False)}.",
            f"Show all {entity} ordered by {column_phrases[-1]}.",
        ]
        if numeric:
            numeric_phrase = self._phrase(rng.choice(numeric), rng)
            templates.extend([
                f"Which {self._entity_phrase(table, rng, plural=False)} has the highest {numeric_phrase}?",
                f"What is the average {numeric_phrase} of {entity}?",
            ])
        if table.text_columns():
            text_phrase = self._phrase(rng.choice(table.text_columns()).name, rng)
            templates.append(f"Find the {entity} grouped by their {text_phrase}.")
        return rng.choice(templates)

    def _multi_table_question(self, tables: list[Table], rng: SeededRng) -> str:
        first, second = tables[0], tables[-1]
        first_entity = self._entity_phrase(first, rng)
        second_entity = self._entity_phrase(second, rng, plural=False)
        first_columns = self._interesting_columns(first, rng, count=1)
        second_columns = self._interesting_columns(second, rng, count=1)
        first_phrase = self._phrase(first_columns[0], rng) if first_columns else "details"
        second_phrase = self._phrase(second_columns[0], rng) if second_columns else "details"
        templates = [
            f"What is the {first_phrase} of {first_entity} related to each {second_entity}?",
            f"Show the {first_phrase} of {first_entity} together with the {second_phrase} "
            f"of their {second_entity}.",
            f"How many {first_entity} are associated with every {second_entity}?",
            f"Which {second_entity} has the most {first_entity}?",
            f"List {first_entity} whose {second_entity} has a given {second_phrase}.",
            f"Find the {first_entity} for the {second_entity} with the highest {second_phrase}.",
        ]
        if len(tables) >= 3:
            middle_entity = self._entity_phrase(tables[1], rng)
            templates.append(
                f"Show the {first_phrase} of {first_entity} linked through {middle_entity} "
                f"to each {second_entity}."
            )
        return rng.choice(templates)


class NeuralQuestioner(SchemaQuestioner):
    """A small Seq2Seq questioner trained in reverse on NL2SQL training pairs.

    The input is the detailed schema text (database, tables, columns), the
    output the question -- mirroring the paper's questioning model, which takes
    a richer schema than the router emits.
    """

    def __init__(self, catalog: Catalog, embedding_dim: int = 48, hidden_dim: int = 96,
                 seed: int = 0) -> None:
        self.catalog = catalog
        self.seed = seed
        self._embedding_dim = embedding_dim
        self._hidden_dim = hidden_dim
        self._source_vocabulary: Vocabulary | None = None
        self._target_vocabulary: Vocabulary | None = None
        self._model: Seq2SeqModel | None = None
        self._fallback = TemplateQuestioner(catalog=catalog, seed=seed)

    # -- schema rendering --------------------------------------------------------
    def schema_text(self, database: str, tables: tuple[str, ...]) -> str:
        db = self.catalog.database(database)
        parts = [database]
        for table_name in tables:
            if not db.has_table(table_name):
                continue
            table = db.table(table_name)
            parts.append(table.name)
            parts.extend(column.name for column in table.columns if not column.is_primary_key)
        return " ".join(parts)

    # -- training ------------------------------------------------------------------
    def fit(self, examples: list[tuple[str, tuple[str, ...], str]],
            epochs: int = 10, batch_size: int = 32, learning_rate: float = 5e-3) -> list[float]:
        """Train on ``(database, tables, question)`` triples; returns epoch losses."""
        if not examples:
            raise ValueError("no questioner training examples supplied")
        source_texts = [self.schema_text(database, tables) for database, tables, _ in examples]
        target_texts = [question for _, _, question in examples]
        source_vocabulary = Vocabulary()
        target_vocabulary = Vocabulary()
        for text in source_texts:
            source_vocabulary.add_text(text)
        for text in target_texts:
            target_vocabulary.add_text(text)
        self._source_vocabulary = source_vocabulary
        self._target_vocabulary = target_vocabulary
        source_tokenizer = WordTokenizer(source_vocabulary)
        target_tokenizer = WordTokenizer(target_vocabulary)
        pairs = [
            (source_tokenizer.encode_text(source),
             target_tokenizer.encode_tokens(tokenize_text(target)))
            for source, target in zip(source_texts, target_texts)
        ]
        self._model = Seq2SeqModel(Seq2SeqConfig(
            source_vocab_size=len(source_vocabulary),
            target_vocab_size=len(target_vocabulary),
            embedding_dim=self._embedding_dim,
            hidden_dim=self._hidden_dim,
            seed=self.seed,
        ))
        trainer = Seq2SeqTrainer(self._model, TrainerConfig(
            epochs=epochs, batch_size=batch_size, learning_rate=learning_rate, seed=self.seed,
        ), pad_id=target_vocabulary.pad_id)
        history = trainer.train(pairs)
        return history.epoch_losses

    @property
    def is_trained(self) -> bool:
        return self._model is not None

    # -- generation -------------------------------------------------------------------
    def question_for(self, database: str, tables: tuple[str, ...]) -> str:
        if self._model is None or self._source_vocabulary is None or self._target_vocabulary is None:
            return self._fallback.question_for(database, tables)
        source_tokenizer = WordTokenizer(self._source_vocabulary)
        target_tokenizer = WordTokenizer(self._target_vocabulary)
        source_ids = source_tokenizer.encode_text(self.schema_text(database, tables))
        hypothesis = greedy_decode(self._model, source_ids,
                                   self._target_vocabulary.bos_id,
                                   self._target_vocabulary.eos_id, max_length=24)
        words = target_tokenizer.decode(hypothesis.tokens)
        if len(words) < 3:
            return self._fallback.question_for(database, tables)
        return " ".join(words) + "?"
