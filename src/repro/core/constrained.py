"""Graph-based constrained decoding (paper §3.5, Figure 4).

At each autoregressive step the decoder may only emit tokens that extend the
prefix towards a *valid* serialized schema:

* the first element must spell the name of a database of the catalog;
* subsequent elements must spell tables of that database; once at least one
  table has been generated, the accessible tables are restricted to graph
  neighbours of the already-generated tables (not arbitrary tables of the
  database), mirroring how a SQL query's tables must be connected;
* the element separator is only allowed when the current word prefix spells a
  complete identifier, and EOS only after at least one complete table.

The constraint is exposed as a callable compatible with
:func:`repro.nn.decoding.diverse_beam_search`, plus a vectorized face
(:meth:`GraphConstrainedDecoding.allowed_mask`) returning cached boolean
ndarrays over the vocabulary, which the batched decode engine applies with a
single ``np.where`` instead of iterating Python sets.

Two interpretation paths produce those masks:

* the *prefix-walk oracle*: :meth:`GraphConstrainedDecoding.interpret` re-parses
  a beam's full prefix (O(len) Python + trie lookups) -- the reference
  semantics, used by the ``loop`` decode backend and the differential tests;
* the *incremental path*: each beam carries a :class:`ConstraintState` through
  the search and pays O(1) per emitted token --
  :meth:`GraphConstrainedDecoding.advance` consumes one token via the trie
  cursor API and :meth:`GraphConstrainedDecoding.allowed_mask_for_state`
  resolves the state's mask without ever touching the prefix again.  The two
  paths are exactly equivalent by construction (``advance`` mirrors one loop
  iteration of ``interpret``), which ``tests/test_constrained_incremental.py``
  enforces differentially.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.graph import SchemaGraph
from repro.core.serialization import element_words
from repro.core.trie import PrefixTrie
from repro.nn.tokenizer import Vocabulary


@dataclass
class _DecodedState:
    """The interpretation of a decoded prefix."""

    database: str | None = None
    tables: tuple[str, ...] = ()
    current_words: tuple[int, ...] = ()
    complete: bool = False  # True when the last token was a separator


class ConstraintState:
    """An incrementally-updatable interpreter state carried by one beam.

    Semantically identical to the :class:`_DecodedState` that
    :meth:`GraphConstrainedDecoding.interpret` would produce for the beam's
    prefix, plus two private accelerators: ``node`` -- the trie cursor of the
    current element's walk in the *commit* trie (the database trie before a
    database is committed, the database's full table trie after), which makes
    :meth:`GraphConstrainedDecoding.advance` O(1) per token -- and ``mask``,
    a memoized reference to the state's allowed-token mask so repeated beams
    resolve their constraint as one attribute read.

    Instances are immutable from the search's point of view (``advance``
    returns a new state), so surviving beams may share them freely across
    groups, questions, and steps.  ``transitions`` memoizes outgoing
    ``advance`` edges (token -> successor state): beams in different groups
    repeatedly take the same transitions within a decode, and the memo turns
    those repeats into one dict hit.  The tree is rooted at the
    ``initial_state()`` a decode call starts from, so it lives exactly as
    long as the call's beams and never accumulates across requests.
    """

    __slots__ = ("database", "tables", "current_words", "complete", "node",
                 "mask", "transitions")

    def __init__(self, database: str | None, tables: tuple[str, ...],
                 current_words: tuple[int, ...], complete: bool, node) -> None:
        self.database = database
        self.tables = tables
        self.current_words = current_words
        self.complete = complete
        self.node = node
        self.mask: np.ndarray | None = None
        self.transitions: dict[int, "ConstraintState"] | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ConstraintState(database={self.database!r}, "
                f"tables={self.tables!r}, current_words={self.current_words!r}, "
                f"complete={self.complete!r})")


class _MaskEntry:
    """One cached constraint resolution: the boolean mask + lazy token set.

    The token set is derived from the mask on first request (and only the
    set-protocol face :meth:`GraphConstrainedDecoding.allowed_tokens` ever
    asks for it), so mask-only consumers never pay for set construction and
    set consumers pay for it once per interpreter state instead of per call.
    """

    __slots__ = ("mask", "_tokens")

    def __init__(self, mask: np.ndarray) -> None:
        self.mask = mask
        self._tokens: frozenset[int] | None = None

    def tokens(self) -> frozenset[int]:
        if self._tokens is None:
            self._tokens = frozenset(np.flatnonzero(self.mask).tolist())
        return self._tokens


class GraphConstrainedDecoding:
    """Builds the token-level constraint for a schema graph and vocabulary."""

    def __init__(self, graph: SchemaGraph, vocabulary: Vocabulary,
                 max_tables: int = 4) -> None:
        self.graph = graph
        self.vocabulary = vocabulary
        self.max_tables = max_tables
        self._database_trie = PrefixTrie()
        for database in graph.databases():
            self._database_trie.insert(self._word_ids(database), database)
        # Per-database table tries are built lazily and cached.
        self._table_tries: dict[str, PrefixTrie] = {}
        self._table_word_ids: dict[tuple[str, str], tuple[int, ...]] = {}
        # Allowed-token cache entries (boolean mask + lazily-derived token
        # set), keyed by the interpreter state a prefix parses to.  Many
        # prefixes collapse onto one state (every beam inside a database
        # shares a handful of trie positions), so the cache turns the
        # per-step constraint from trie walks + set building into one
        # dictionary hit returning a read-only ndarray.  Distinct states are
        # combinatorial in catalog size (ordered table tuples x word-prefix
        # positions), so the cache is bounded: oldest entries are evicted
        # first once ``max_cached_masks`` is reached.
        self._mask_cache: dict[tuple, _MaskEntry] = {}
        self.max_cached_masks = 4096
        # Observability counters: memo/cache hits vs fresh mask computations.
        # Read (as before/after deltas) by SchemaRouter's decode spans.
        self.mask_cache_hits = 0
        self.mask_cache_misses = 0

    # -- helpers --------------------------------------------------------------
    def _word_ids(self, identifier: str) -> tuple[int, ...]:
        return tuple(self.vocabulary.id_of(word) for word in element_words(identifier))

    def _table_trie(self, database: str) -> PrefixTrie:
        trie = self._table_tries.get(database)
        if trie is None:
            trie = PrefixTrie()
            for table in self.graph.tables_of(database):
                ids = self._word_ids(table)
                trie.insert(ids, table)
                self._table_word_ids[(database, table)] = ids
            self._table_tries[database] = trie
        return trie

    def _restricted_trie(self, database: str, tables: tuple[str, ...]) -> PrefixTrie:
        """Trie over the tables reachable from the already-decoded tables."""
        self._table_trie(database)  # ensure word ids are cached
        allowed: set[str] = set()
        for table in tables:
            for neighbor in self.graph.table_neighbors(database, table):
                if neighbor not in tables:
                    allowed.add(neighbor)
        trie = PrefixTrie()
        for table in sorted(allowed):
            trie.insert(self._table_word_ids[(database, table)], table)
        return trie

    # -- prefix interpretation -----------------------------------------------------
    def interpret(self, prefix: list[int] | tuple[int, ...]) -> _DecodedState:
        """Parse the decoded prefix into (database, tables, current element)."""
        separator = self.vocabulary.sep_id
        state = _DecodedState(complete=True)
        element: list[int] = []
        for token in prefix:
            if token == separator:
                if not element:
                    continue
                state = self._commit_element(state, tuple(element))
                element = []
            else:
                element.append(int(token))
        if element:
            state.current_words = tuple(element)
            state.complete = False
        else:
            state.current_words = ()
            state.complete = True
        return state

    def _commit_element(self, state: _DecodedState, words: tuple[int, ...]) -> _DecodedState:
        if state.database is None:
            matches = self._database_trie.identifiers_at(words)
            database = matches[0] if matches else None
            return _DecodedState(database=database, tables=(), complete=True)
        matches = self._table_trie(state.database).identifiers_at(words)
        if matches and matches[0] not in state.tables:
            return _DecodedState(database=state.database,
                                 tables=state.tables + (matches[0],), complete=True)
        return _DecodedState(database=state.database, tables=state.tables, complete=True)

    # -- incremental interpretation --------------------------------------------------
    def initial_state(self) -> ConstraintState:
        """The interpreter state of the empty prefix."""
        return ConstraintState(None, (), (), True, self._database_trie.root())

    def advance(self, state: ConstraintState, token: int) -> ConstraintState:
        """Consume one emitted token: O(1), no prefix re-walk.

        Exactly mirrors one loop iteration of :meth:`interpret`: a separator
        after a non-empty element commits it (database first, then tables,
        matched at the carried trie cursor instead of by a root walk); a
        separator after an empty element is skipped; any other token -- EOS
        included -- extends the current element and advances the cursor
        (``None`` once the walk leaves the trie, exactly like a failed
        ``node_at``).  Transitions are memoized per state, so beams taking a
        transition any sibling already took pay one dict hit.
        """
        token = int(token)
        transitions = state.transitions
        if transitions is None:
            transitions = state.transitions = {}
        successor = transitions.get(token)
        if successor is None:
            if token == self.vocabulary.sep_id:
                successor = state if not state.current_words \
                    else self._commit_state(state)
            else:
                successor = ConstraintState(state.database, state.tables,
                                            state.current_words + (token,), False,
                                            PrefixTrie.child(state.node, token))
            transitions[token] = successor
        return successor

    def _commit_state(self, state: ConstraintState) -> ConstraintState:
        """Commit the current element (the incremental :meth:`_commit_element`)."""
        matches = PrefixTrie.node_identifiers(state.node)
        if state.database is None:
            if not matches:
                return self.initial_state()
            database = matches[0]
            return ConstraintState(database, (), (), True,
                                   self._table_trie(database).root())
        tables = state.tables
        if matches and matches[0] not in tables:
            tables = tables + (matches[0],)
        return ConstraintState(state.database, tables, (), True,
                               self._table_trie(state.database).root())

    def allowed_mask_for_state(self, state: ConstraintState) -> np.ndarray:
        """The allowed-token mask of an incrementally-maintained state.

        Resolution order: the state's own memoized reference (one attribute
        read -- the common case once a beam has been scored before), then the
        shared per-key cache, then a fresh computation.  Identical to
        ``allowed_mask(prefix)`` for the prefix the state was advanced over.
        """
        mask = state.mask
        if mask is None:
            mask = self._mask_entry(state).mask
            state.mask = mask
        else:
            self.mask_cache_hits += 1
        return mask

    # -- the constraint callable ------------------------------------------------------
    def allowed_tokens(self, prefix: list[int] | tuple[int, ...]) -> frozenset[int]:
        """Token ids allowed after ``prefix`` (the Constraint protocol).

        Served from the same per-state cache as :meth:`allowed_mask`: the
        token set is derived from the cached boolean mask once per interpreter
        state, instead of rebuilding restricted tries and a fresh Python set
        on every call.
        """
        return self._mask_entry(self.interpret(prefix)).tokens()

    def allowed_mask(self, prefix: list[int] | tuple[int, ...]) -> np.ndarray:
        """A boolean mask over the vocabulary of the tokens allowed next.

        Masks are cached per interpreter state (the database / tables / trie
        position a prefix parses to), so repeated beams pay one dict lookup
        instead of rebuilding restricted tries and Python sets.  The returned
        array is shared and read-only; apply it with ``np.where``.
        """
        return self._mask_entry(self.interpret(prefix)).mask

    def _mask_entry(self, state: "_DecodedState | ConstraintState") -> _MaskEntry:
        key = (state.database, state.tables, state.current_words, state.complete)
        entry = self._mask_cache.get(key)
        if entry is None:
            self.mask_cache_misses += 1
            size = len(self.vocabulary)
            mask = np.zeros(size, dtype=bool)
            # _allowed_for_state never returns an empty set (it falls back to
            # {eos}), so the mask always has at least one bit set -- the same
            # guarantee the set-based path in repro.nn.decoding gives.
            allowed = self._allowed_for_state(state)
            mask[[token for token in allowed if 0 <= token < size]] = True
            mask.setflags(write=False)
            while len(self._mask_cache) >= self.max_cached_masks:
                self._mask_cache.pop(next(iter(self._mask_cache)))
            entry = _MaskEntry(mask)
            self._mask_cache[key] = entry
        else:
            self.mask_cache_hits += 1
        return entry

    def _allowed_for_state(self, state: _DecodedState) -> set[int]:
        separator = self.vocabulary.sep_id
        eos = self.vocabulary.eos_id
        allowed: set[int] = set()

        if state.database is None:
            # Still decoding the database name.
            allowed |= self._database_trie.allowed_next(state.current_words)
            if state.current_words and self._database_trie.is_terminal(state.current_words):
                allowed.add(separator)
            return allowed

        # Decoding table names within the committed database.
        if not state.tables:
            trie = self._table_trie(state.database)
        elif len(state.tables) >= self.max_tables:
            trie = PrefixTrie()  # no further tables allowed
        else:
            trie = self._restricted_trie(state.database, state.tables)
        allowed |= trie.allowed_next(state.current_words)
        if state.current_words and trie.is_terminal(state.current_words):
            allowed.add(separator)
        if state.complete and state.tables:
            # A complete schema (>= 1 table) may stop here.
            allowed.add(eos)
        if not allowed:
            allowed.add(eos)
        return allowed

    def __call__(self, prefix: list[int] | tuple[int, ...]) -> frozenset[int]:
        return self.allowed_tokens(prefix)
