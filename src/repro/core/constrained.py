"""Graph-based constrained decoding (paper §3.5, Figure 4).

At each autoregressive step the decoder may only emit tokens that extend the
prefix towards a *valid* serialized schema:

* the first element must spell the name of a database of the catalog;
* subsequent elements must spell tables of that database; once at least one
  table has been generated, the accessible tables are restricted to graph
  neighbours of the already-generated tables (not arbitrary tables of the
  database), mirroring how a SQL query's tables must be connected;
* the element separator is only allowed when the current word prefix spells a
  complete identifier, and EOS only after at least one complete table.

The constraint is exposed as a callable compatible with
:func:`repro.nn.decoding.diverse_beam_search`, plus a vectorized face
(:meth:`GraphConstrainedDecoding.allowed_mask`) returning cached boolean
ndarrays over the vocabulary, which the batched decode engine applies with a
single ``np.where`` instead of iterating Python sets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.graph import SchemaGraph
from repro.core.serialization import element_words
from repro.core.trie import PrefixTrie
from repro.nn.tokenizer import Vocabulary


@dataclass
class _DecodedState:
    """The interpretation of a decoded prefix."""

    database: str | None = None
    tables: tuple[str, ...] = ()
    current_words: tuple[int, ...] = ()
    complete: bool = False  # True when the last token was a separator


class GraphConstrainedDecoding:
    """Builds the token-level constraint for a schema graph and vocabulary."""

    def __init__(self, graph: SchemaGraph, vocabulary: Vocabulary,
                 max_tables: int = 4) -> None:
        self.graph = graph
        self.vocabulary = vocabulary
        self.max_tables = max_tables
        self._database_trie = PrefixTrie()
        for database in graph.databases():
            self._database_trie.insert(self._word_ids(database), database)
        # Per-database table tries are built lazily and cached.
        self._table_tries: dict[str, PrefixTrie] = {}
        self._table_word_ids: dict[tuple[str, str], tuple[int, ...]] = {}
        # Boolean allowed-token masks, keyed by the interpreter state a prefix
        # parses to.  Many prefixes collapse onto one state (every beam inside
        # a database shares a handful of trie positions), so the cache turns
        # the per-step constraint from trie walks + set building into one
        # dictionary hit returning a read-only ndarray.  Distinct states are
        # combinatorial in catalog size (ordered table tuples x word-prefix
        # positions), so the cache is bounded: oldest entries are evicted
        # first once ``max_cached_masks`` is reached.
        self._mask_cache: dict[tuple, np.ndarray] = {}
        self.max_cached_masks = 4096

    # -- helpers --------------------------------------------------------------
    def _word_ids(self, identifier: str) -> tuple[int, ...]:
        return tuple(self.vocabulary.id_of(word) for word in element_words(identifier))

    def _table_trie(self, database: str) -> PrefixTrie:
        trie = self._table_tries.get(database)
        if trie is None:
            trie = PrefixTrie()
            for table in self.graph.tables_of(database):
                ids = self._word_ids(table)
                trie.insert(ids, table)
                self._table_word_ids[(database, table)] = ids
            self._table_tries[database] = trie
        return trie

    def _restricted_trie(self, database: str, tables: tuple[str, ...]) -> PrefixTrie:
        """Trie over the tables reachable from the already-decoded tables."""
        self._table_trie(database)  # ensure word ids are cached
        allowed: set[str] = set()
        for table in tables:
            for neighbor in self.graph.table_neighbors(database, table):
                if neighbor not in tables:
                    allowed.add(neighbor)
        trie = PrefixTrie()
        for table in sorted(allowed):
            trie.insert(self._table_word_ids[(database, table)], table)
        return trie

    # -- prefix interpretation -----------------------------------------------------
    def interpret(self, prefix: list[int] | tuple[int, ...]) -> _DecodedState:
        """Parse the decoded prefix into (database, tables, current element)."""
        separator = self.vocabulary.sep_id
        state = _DecodedState(complete=True)
        element: list[int] = []
        for token in prefix:
            if token == separator:
                if not element:
                    continue
                state = self._commit_element(state, tuple(element))
                element = []
            else:
                element.append(int(token))
        if element:
            state.current_words = tuple(element)
            state.complete = False
        else:
            state.current_words = ()
            state.complete = True
        return state

    def _commit_element(self, state: _DecodedState, words: tuple[int, ...]) -> _DecodedState:
        if state.database is None:
            matches = self._database_trie.identifiers_at(words)
            database = matches[0] if matches else None
            return _DecodedState(database=database, tables=(), complete=True)
        matches = self._table_trie(state.database).identifiers_at(words)
        if matches and matches[0] not in state.tables:
            return _DecodedState(database=state.database,
                                 tables=state.tables + (matches[0],), complete=True)
        return _DecodedState(database=state.database, tables=state.tables, complete=True)

    # -- the constraint callable ------------------------------------------------------
    def allowed_tokens(self, prefix: list[int] | tuple[int, ...]) -> set[int] | None:
        """Token ids allowed after ``prefix`` (the Constraint protocol)."""
        return self._allowed_for_state(self.interpret(prefix))

    def allowed_mask(self, prefix: list[int] | tuple[int, ...]) -> np.ndarray:
        """A boolean mask over the vocabulary of the tokens allowed next.

        Masks are cached per interpreter state (the database / tables / trie
        position a prefix parses to), so repeated beams pay one dict lookup
        instead of rebuilding restricted tries and Python sets.  The returned
        array is shared and read-only; apply it with ``np.where``.
        """
        state = self.interpret(prefix)
        key = (state.database, state.tables, state.current_words, state.complete)
        mask = self._mask_cache.get(key)
        if mask is None:
            size = len(self.vocabulary)
            mask = np.zeros(size, dtype=bool)
            # _allowed_for_state never returns an empty set (it falls back to
            # {eos}), so the mask always has at least one bit set -- the same
            # guarantee the set-based path in repro.nn.decoding gives.
            allowed = self._allowed_for_state(state)
            mask[[token for token in allowed if 0 <= token < size]] = True
            mask.setflags(write=False)
            while len(self._mask_cache) >= self.max_cached_masks:
                self._mask_cache.pop(next(iter(self._mask_cache)))
            self._mask_cache[key] = mask
        return mask

    def _allowed_for_state(self, state: _DecodedState) -> set[int]:
        separator = self.vocabulary.sep_id
        eos = self.vocabulary.eos_id
        allowed: set[int] = set()

        if state.database is None:
            # Still decoding the database name.
            allowed |= self._database_trie.allowed_next(state.current_words)
            if state.current_words and self._database_trie.is_terminal(state.current_words):
                allowed.add(separator)
            return allowed

        # Decoding table names within the committed database.
        if not state.tables:
            trie = self._table_trie(state.database)
        elif len(state.tables) >= self.max_tables:
            trie = PrefixTrie()  # no further tables allowed
        else:
            trie = self._restricted_trie(state.database, state.tables)
        allowed |= trie.allowed_next(state.current_words)
        if state.current_words and trie.is_terminal(state.current_words):
            allowed.add(separator)
        if state.complete and state.tables:
            # A complete schema (>= 1 table) may stop here.
            allowed.add(eos)
        if not allowed:
            allowed.add(eos)
        return allowed

    def __call__(self, prefix: list[int] | tuple[int, ...]) -> set[int] | None:
        return self.allowed_tokens(prefix)
