"""The Seq2Seq schema router (paper §3.5).

The router is a differentiable search index: it is trained to map a question
to serialized SQL query schemata and, at inference time, decodes multiple
candidate schemata with diverse beam search under graph-based constraints.
Candidate sequences that share the same database are combined into a single
candidate schema, exactly as described in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.core.constrained import GraphConstrainedDecoding
from repro.core.graph import SchemaGraph
from repro.core.serialization import (
    ELEMENT_SEPARATOR,
    basic_serialize,
    dfs_serialize,
    schema_to_tokens,
    tokens_to_schema,
)
from repro.core.synthesis import SyntheticExample
from repro.nn.decoding import (
    diverse_beam_search_batch,
    diverse_beam_search_loop,
    greedy_decode,
)
from repro.nn.seq2seq import (
    EncodedSource,
    Seq2SeqConfig,
    Seq2SeqModel,
    VocabularySlice,
    rescore_token_sequences,
)
from repro.nn.tokenizer import Vocabulary, WordTokenizer
from repro.obs.trace import distinct_traces, stage_spans
from repro.nn.trainer import Seq2SeqTrainer, TrainerConfig
from repro.retrieval.base import CandidateSchema, RankedTable, RoutingPrediction
from repro.utils.rng import SeededRng


@dataclass(frozen=True)
class RouterConfig:
    """Hyper-parameters of the schema router.

    The decoding defaults follow §4.1.5: 10 schema sequences per question via
    diverse beam search with 10 beams, 10 beam groups, diversity penalty 2.0.
    """

    embedding_dim: int = 48
    hidden_dim: int = 96
    epochs: int = 14
    batch_size: int = 32
    learning_rate: float = 5e-3
    weight_decay: float = 0.01
    num_beams: int = 10
    beam_groups: int = 10
    diversity_penalty: float = 2.0
    max_source_length: int = 24
    max_decode_length: int = 40
    max_candidate_schemas: int = 5
    #: "dfs" (paper) or "basic" (ablation "w/ BS").
    serialization: str = "dfs"
    constrained_decoding: bool = True
    diverse_beam: bool = True
    #: Decode tier.  "vectorized" (default) decodes every question of a batch
    #: through the stacked beam engine with the bit-exact kernel; "loop" keeps
    #: the per-beam reference path (bit-identical to "vectorized" -- the pair
    #: exists for differential testing and as an escape hatch); "fast" runs
    #: the same batched search over the flat-GEMM kernel
    #: (:meth:`repro.nn.seq2seq.Seq2SeqModel.decode_step_numpy_batch_fast`),
    #: trading bit-identity for tolerance-checked agreement and the highest
    #: throughput.  The knob round-trips through router and cluster
    #: checkpoints, so serving fleets and shard workers ride whichever tier
    #: the checkpoint was saved with.
    decode_backend: str = "vectorized"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.decode_backend not in ("vectorized", "loop", "fast"):
            raise ValueError(
                f"decode_backend must be 'vectorized', 'loop', or 'fast', "
                f"got {self.decode_backend!r}")

    def ablated(self, **changes: object) -> "RouterConfig":
        """A copy with some fields overridden (used by the ablation study)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class SchemaRoute:
    """One candidate schema produced by the router."""

    database: str
    tables: tuple[str, ...]
    score: float

    def to_payload(self) -> dict:
        """A JSON-safe dict that round-trips this route *bit-exactly*.

        ``score`` is included for readability, but ``score_hex`` (the C99 hex
        representation) is authoritative on the way back: routes that cross a
        process boundary must merge and rank exactly like local ones, so the
        score may not lose a single bit to decimal formatting.
        """
        return {"database": self.database, "tables": list(self.tables),
                "score": self.score, "score_hex": self.score.hex()}

    @classmethod
    def from_payload(cls, payload: dict) -> "SchemaRoute":
        score_hex = payload.get("score_hex")
        score = float.fromhex(score_hex) if score_hex is not None \
            else float(payload["score"])
        return cls(database=payload["database"], tables=tuple(payload["tables"]),
                   score=score)


def normalize_route_scores(routes: Sequence[SchemaRoute]) -> list[SchemaRoute]:
    """Softmax-normalize raw log-probability scores over a candidate pool.

    The transformation is monotonic, so it never changes the ranking of the
    pool it is applied to; it turns accumulated log-probabilities into
    probability-like weights in ``(0, 1]`` that sum to 1.  Cross-shard merging
    uses this on the *pooled* candidates of all shards (never per shard), which
    keeps scores produced by the same underlying model directly comparable
    while presenting a calibrated ranking to callers.
    """
    if not routes:
        return []
    peak = max(route.score for route in routes)
    weights = [math.exp(route.score - peak) for route in routes]
    # fsum is exactly rounded, so the normalizer -- and therefore every
    # normalized score -- is identical no matter what order shards answer in.
    total = math.fsum(weights)
    # Direct construction, not dataclasses.replace: this runs once per pooled
    # candidate on every merge, and replace() pays field introspection per
    # call (~5x the cost; it shows up in cluster wave profiles).
    return [SchemaRoute(database=route.database, tables=route.tables,
                        score=weight / total)
            for route, weight in zip(routes, weights)]


def merge_route_lists(route_lists: Iterable[Sequence[SchemaRoute]],
                      max_candidates: int | None = None,
                      normalize: bool = True) -> list[SchemaRoute]:
    """Deterministically merge per-shard candidate lists into one ranking.

    The result is independent of the order of ``route_lists`` (scatter-gather
    may collect shards in any order): candidates are pooled, optionally
    normalized with :func:`normalize_route_scores`, sorted by
    ``(-score, database, tables)``, and deduplicated per database keeping the
    best-scored entry.  With disjoint shard catalogs the dedup is a no-op; it
    guards against overlapping assignments.
    """
    pooled = [route for routes in route_lists for route in routes]
    if not pooled:
        return []
    merged: list[SchemaRoute] = []
    seen: set[str] = set()
    if normalize:
        # Inlined softmax (see normalize_route_scores): the weight order is
        # the normalized-score order, so candidates are ranked on raw weights
        # and the normalized SchemaRoute is constructed only for the ones
        # that survive dedup + truncation.  This merge runs twice per
        # question per wave (fast tier + escalation) -- it is the parent-side
        # hot path of every cluster gather.
        peak = max(route.score for route in pooled)
        weights = [math.exp(route.score - peak) for route in pooled]
        total = math.fsum(weights)
        order = sorted(range(len(pooled)),
                       key=lambda index: (-weights[index],
                                          pooled[index].database,
                                          pooled[index].tables))
        for index in order:
            route = pooled[index]
            if route.database in seen:
                continue
            seen.add(route.database)
            merged.append(SchemaRoute(database=route.database,
                                      tables=route.tables,
                                      score=weights[index] / total))
            if max_candidates is not None and len(merged) >= max_candidates:
                break
        return merged
    pooled.sort(key=lambda route: (-route.score, route.database, route.tables))
    for route in pooled:
        if route.database in seen:
            continue
        seen.add(route.database)
        merged.append(route)
    return merged[:max_candidates] if max_candidates is not None else merged


@dataclass
class SchemaRouter:
    """Trainable DSI router over a schema graph."""

    graph: SchemaGraph
    config: RouterConfig = field(default_factory=RouterConfig)

    def __post_init__(self) -> None:
        self._source_vocabulary: Vocabulary | None = None
        self._target_vocabulary: Vocabulary | None = None
        self._model: Seq2SeqModel | None = None
        self._constraint: GraphConstrainedDecoding | None = None
        # Decoded-hypothesis parse memo: token tuple -> (database, tables).
        # Hypotheses repeat heavily across beams and requests (the catalog is
        # finite), and parsing re-tokenizes identifier names against the
        # graph; bounded like the constraint mask cache, oldest-first.
        self._parse_cache: dict[tuple[int, ...], tuple[str, tuple[str, ...]] | None] = {}
        self.max_cached_parses = 4096
        self.training_losses: list[float] = []
        #: Set when this router decodes over a sliced target vocabulary (a
        #: cluster shard projected with ``sliced_vocabulary=True``): maps the
        #: slice back to the master output head so decoded scores can be
        #: calibrated to exact master-vocabulary log-probabilities.  ``None``
        #: for ordinary (global-vocabulary) routers.
        self.vocabulary_slice: VocabularySlice | None = None

    # -- vocabulary --------------------------------------------------------------
    def _build_vocabularies(self, examples: list[SyntheticExample]) -> None:
        source = Vocabulary()
        for example in examples:
            source.add_text(example.question)
        target = Vocabulary()
        target.add(ELEMENT_SEPARATOR)
        for database in self.graph.databases():
            target.add_text(database)
            for table in self.graph.tables_of(database):
                target.add_text(table)
        self._source_vocabulary = source
        self._target_vocabulary = target

    @property
    def is_trained(self) -> bool:
        return self._model is not None

    @property
    def source_vocabulary(self) -> Vocabulary:
        if self._source_vocabulary is None:
            raise RuntimeError("the router has not been trained yet")
        return self._source_vocabulary

    @property
    def target_vocabulary(self) -> Vocabulary:
        if self._target_vocabulary is None:
            raise RuntimeError("the router has not been trained yet")
        return self._target_vocabulary

    @property
    def model(self) -> Seq2SeqModel:
        if self._model is None:
            raise RuntimeError("the router has not been trained yet")
        return self._model

    @property
    def constraint(self) -> GraphConstrainedDecoding | None:
        """The active decoding constraint (None when decoding unconstrained).

        Public so external decode drivers (the cluster wave engine) can run
        this router's search under exactly the constraint ``route_batch``
        would use."""
        return self._constraint if self.config.constrained_decoding else None

    def num_parameters(self) -> int:
        return self._model.num_parameters() if self._model is not None else 0

    # -- training -------------------------------------------------------------------
    def _serialize(self, database: str, tables: tuple[str, ...], rng: SeededRng) -> list[str]:
        if self.config.serialization == "basic":
            serialized = basic_serialize(database, tables, rng)
        else:
            serialized = dfs_serialize(self.graph, database, tables, rng)
        return schema_to_tokens(serialized)

    def fit(self, examples: list[SyntheticExample]) -> list[float]:
        """Train the router on synthetic (question, schema) examples."""
        if not examples:
            raise ValueError("no training examples supplied")
        self._parse_cache.clear()
        self._build_vocabularies(examples)
        source_tokenizer = WordTokenizer(self.source_vocabulary)
        target_tokenizer = WordTokenizer(self.target_vocabulary)
        rng = SeededRng(self.config.seed)
        pairs = []
        for example in examples:
            if not example.tables:
                continue
            source_ids = source_tokenizer.encode_text(example.question,
                                                      max_length=self.config.max_source_length)
            tokens = self._serialize(example.database, example.tables, rng.child(example.question))
            target_ids = target_tokenizer.encode_tokens(tokens)
            pairs.append((source_ids, target_ids))
        self._model = Seq2SeqModel(Seq2SeqConfig(
            source_vocab_size=len(self.source_vocabulary),
            target_vocab_size=len(self.target_vocabulary),
            embedding_dim=self.config.embedding_dim,
            hidden_dim=self.config.hidden_dim,
            seed=self.config.seed,
        ))
        trainer = Seq2SeqTrainer(self._model, TrainerConfig(
            epochs=self.config.epochs,
            batch_size=self.config.batch_size,
            learning_rate=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
            seed=self.config.seed,
        ), pad_id=self.target_vocabulary.pad_id)
        history = trainer.train(pairs)
        self.training_losses = history.epoch_losses
        if self.config.constrained_decoding:
            self._constraint = GraphConstrainedDecoding(self.graph, self.target_vocabulary)
        else:
            self._constraint = None
        return history.epoch_losses

    # -- persistence --------------------------------------------------------------------
    def restore(self, model: Seq2SeqModel, source_vocabulary: Vocabulary,
                target_vocabulary: Vocabulary,
                training_losses: list[float] | None = None) -> None:
        """Install a trained state (the checkpoint-load path, no training run)."""
        self._source_vocabulary = source_vocabulary
        self._target_vocabulary = target_vocabulary
        self._model = model
        self._parse_cache.clear()
        self.training_losses = list(training_losses or [])
        if self.config.constrained_decoding:
            self._constraint = GraphConstrainedDecoding(self.graph, target_vocabulary)
        else:
            self._constraint = None

    @classmethod
    def from_checkpoint(cls, path: str) -> "SchemaRouter":
        """Load a trained router saved with :func:`repro.serving.save_router`."""
        from repro.serving.checkpoint import load_router

        return load_router(path)

    # -- inference ----------------------------------------------------------------------
    def route(self, question: str, max_candidates: int | None = None) -> list[SchemaRoute]:
        """Decode candidate schemata for ``question`` (best first)."""
        return self.route_batch([question], max_candidates=max_candidates)[0]

    def route_batch(self, questions: list[str],
                    max_candidates: int | None = None, *,
                    traces: "Sequence | None" = None,
                    decode_stats: dict | None = None) -> list[list[SchemaRoute]]:
        """Route several questions, decoding them as one batch.

        The source encoding runs once for the whole batch, the tokenizers and
        decoding constraint are set up once instead of per question, and (with
        the default ``decode_backend="vectorized"``) every active beam of
        every question advances through one stacked kernel call per decode
        step.  ``decode_backend="loop"`` decodes each question through the
        per-beam reference path instead; both backends -- and per-question
        :meth:`route` calls -- return bit-identical results.
        ``decode_backend="fast"`` runs the batched engine over the flat-GEMM
        kernel: same search semantics, highest throughput, scores allowed to
        drift in the last ulps (tolerance-checked agreement instead of
        bit-identity).

        ``traces`` is an optional per-question list of ``repro.obs`` trace
        contexts (``None`` entries allowed; repeats collapse): each distinct
        context gets ``encode`` / ``decode`` / ``parse`` spans, with decode
        spans annotated by engine counters (steps, beam rows advanced,
        questions compacted, constraint mask-cache hits/misses).
        ``decode_stats`` additionally accumulates the raw engine counters
        into a caller-owned dict.  Neither affects routing results.
        """
        if self._model is None:
            raise RuntimeError("the router has not been trained yet")
        if not questions:
            return []
        contexts = distinct_traces(traces)
        stats = decode_stats if decode_stats is not None else ({} if contexts else None)
        max_candidates = max_candidates or self.config.max_candidate_schemas
        source_tokenizer = WordTokenizer(self.source_vocabulary)
        target_tokenizer = WordTokenizer(self.target_vocabulary)
        constraint = self._constraint if self.config.constrained_decoding else None
        if self.config.diverse_beam:
            num_groups = self.config.beam_groups
            diversity_penalty = self.config.diversity_penalty
        else:
            num_groups, diversity_penalty = 1, 0.0
        bos_id = self.target_vocabulary.bos_id
        eos_id = self.target_vocabulary.eos_id
        with stage_spans(contexts, "encode", questions=len(questions)):
            encoded_batch = self._model.encode_numpy_batch(
                [source_tokenizer.encode_text(question,
                                              max_length=self.config.max_source_length)
                 for question in questions],
                pad_id=self.source_vocabulary.pad_id,
            )
        masks_before = ((self._constraint.mask_cache_hits,
                         self._constraint.mask_cache_misses)
                        if constraint is not None else (0, 0))
        with stage_spans(contexts, "decode",
                         backend=self.config.decode_backend,
                         questions=len(questions)) as decode_spans:
            if self.config.decode_backend == "loop":
                hypotheses_batch = [
                    diverse_beam_search_loop(
                        self._model, (), bos_id, eos_id,
                        num_beams=self.config.num_beams, num_groups=num_groups,
                        diversity_penalty=diversity_penalty,
                        max_length=self.config.max_decode_length, constraint=constraint,
                        encoded=encoded, stats=stats,
                    )
                    for encoded in encoded_batch
                ]
            else:
                hypotheses_batch = diverse_beam_search_batch(
                    self._model, encoded_batch, bos_id, eos_id,
                    num_beams=self.config.num_beams, num_groups=num_groups,
                    diversity_penalty=diversity_penalty,
                    max_length=self.config.max_decode_length, constraint=constraint,
                    kernel="fast" if self.config.decode_backend == "fast" else "exact",
                    stats=stats,
                )
            if decode_spans and stats is not None:
                counters = dict(stats)
                if constraint is not None:
                    counters["mask_cache_hits"] = \
                        self._constraint.mask_cache_hits - masks_before[0]
                    counters["mask_cache_misses"] = \
                        self._constraint.mask_cache_misses - masks_before[1]
                for span in decode_spans:
                    span.annotate(**counters)
        for index, hypotheses in enumerate(hypotheses_batch):
            if not hypotheses:
                hypotheses_batch[index] = self.decode_fallback(encoded_batch[index])
        if self.vocabulary_slice is not None:
            with stage_spans(contexts, "calibrate", questions=len(questions)):
                self.rescore_hypotheses(encoded_batch, hypotheses_batch)
        with stage_spans(contexts, "parse"):
            results: list[list[SchemaRoute]] = []
            for hypotheses in hypotheses_batch:
                results.append(self._combine_hypotheses(hypotheses, target_tokenizer,
                                                        max_candidates))
        return results

    def _combine_hypotheses(self, hypotheses: list, target_tokenizer: WordTokenizer,
                            max_candidates: int) -> list[SchemaRoute]:
        """Parse hypotheses to schemata and combine those sharing a database."""
        combined: dict[str, SchemaRoute] = {}
        order: list[str] = []
        for hypothesis in hypotheses:
            key = tuple(hypothesis.tokens)
            if key in self._parse_cache:
                parsed = self._parse_cache[key]
            else:
                tokens = target_tokenizer.decode(hypothesis.tokens)
                parsed = tokens_to_schema(tokens, self.graph)
                while len(self._parse_cache) >= self.max_cached_parses:
                    # Concurrent decodes (a multiplexed subprocess worker runs
                    # several) may race the eviction; losing a memo is fine,
                    # raising is not.
                    try:
                        self._parse_cache.pop(next(iter(self._parse_cache)), None)
                    except (StopIteration, RuntimeError):
                        break
                self._parse_cache[key] = parsed
            if parsed is None:
                continue
            database, tables = parsed
            if not tables:
                continue
            if database not in combined:
                combined[database] = SchemaRoute(database=database, tables=tables,
                                                 score=hypothesis.score)
                order.append(database)
            else:
                existing = combined[database]
                merged_tables = existing.tables + tuple(
                    table for table in tables if table not in existing.tables
                )
                combined[database] = SchemaRoute(database=database, tables=merged_tables,
                                                 score=max(existing.score, hypothesis.score))
        routes = [combined[database] for database in order]
        routes.sort(key=lambda route: route.score, reverse=True)
        return routes[:max_candidates]

    def decode_fallback(self, encoded: EncodedSource) -> list:
        """The greedy fallback used when beam search returns no hypotheses.

        Public so external decode drivers (the cluster wave engine) fall back
        exactly as :meth:`route_batch` does."""
        return [greedy_decode(self.model, (),
                              self.target_vocabulary.bos_id,
                              self.target_vocabulary.eos_id,
                              max_length=self.config.max_decode_length,
                              constraint=self.constraint, encoded=encoded)]

    def rescore_hypotheses(self, encoded_batch: "Sequence[EncodedSource]",
                           hypotheses_batch: "Sequence[list]") -> None:
        """Calibrate sliced-vocabulary scores to master-vocabulary scores.

        In-place, batched over every hypothesis of every question: each final
        sequence is replayed teacher-forced through the trunk against the
        full master head (see
        :func:`repro.nn.seq2seq.rescore_token_sequences`), and its score
        replaced by the exact global log-probability -- afterwards scores
        from differently-sliced shards are directly comparable, exactly as
        if every shard had decoded over the master vocabulary.  No-op for
        unsliced routers.
        """
        if self.vocabulary_slice is None:
            return
        eos_id = self.target_vocabulary.eos_id
        encoded_rows: list[EncodedSource] = []
        sequences: list[list[int]] = []
        rows: list[tuple[int, int]] = []
        for question, hypotheses in enumerate(hypotheses_batch):
            for position, hypothesis in enumerate(hypotheses):
                encoded_rows.append(encoded_batch[question])
                sequences.append(hypothesis.tokens + [eos_id]
                                 if hypothesis.finished else list(hypothesis.tokens))
                rows.append((question, position))
        if not rows:
            return
        scores = rescore_token_sequences(self.model, encoded_rows, sequences,
                                         self.vocabulary_slice,
                                         bos_id=self.target_vocabulary.bos_id)
        for (question, position), score in zip(rows, scores):
            hypotheses_batch[question][position].score = float(score)

    def combine_hypotheses(self, hypotheses: list,
                           max_candidates: int | None = None) -> list[SchemaRoute]:
        """Parse decoded hypotheses into ranked routes (the public parse API).

        The same parse-and-combine step :meth:`route_batch` ends with,
        reusing this router's bounded parse cache; external decode drivers
        (the cluster wave engine) hand decoded hypotheses straight here."""
        return self._combine_hypotheses(
            hypotheses, WordTokenizer(self.target_vocabulary),
            max_candidates or self.config.max_candidate_schemas)

    def predict(self, question: str, max_candidates: int | None = None) -> RoutingPrediction:
        """Route and convert to the shared :class:`RoutingPrediction` format.

        The decoded candidate schemata determine the head of the table ranking;
        the tail is backfilled with the remaining tables of the candidate
        databases (graph neighbours of predicted tables first), so recall@k for
        larger k can be measured on the same footing as the retrieval baselines.
        """
        routes = self.route(question, max_candidates=max_candidates)
        ranked_databases = [route.database for route in routes]
        ranked_tables: list[RankedTable] = []
        seen: set[tuple[str, str]] = set()

        def push(database: str, table: str, score: float) -> None:
            key = (database, table)
            if key not in seen:
                seen.add(key)
                ranked_tables.append(RankedTable(database=database, table=table, score=score))

        for rank, route in enumerate(routes):
            for position, table in enumerate(route.tables):
                push(route.database, table, route.score - 0.01 * position - 10.0 * rank)
        # Backfill: neighbours of the predicted tables, then the rest of each
        # candidate database, in candidate order.
        for rank, route in enumerate(routes):
            base = route.score - 100.0 - 10.0 * rank
            offset = 0
            for table in route.tables:
                for neighbor in self.graph.table_neighbors(route.database, table):
                    push(route.database, neighbor, base - 0.01 * offset)
                    offset += 1
            for table in self.graph.tables_of(route.database):
                push(route.database, table, base - 1.0 - 0.01 * offset)
                offset += 1
        candidates = [CandidateSchema(database=route.database, tables=route.tables,
                                      score=route.score) for route in routes]
        return RoutingPrediction(
            ranked_databases=ranked_databases,
            ranked_tables=ranked_tables,
            candidate_schemas=candidates,
        )
