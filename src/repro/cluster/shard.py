"""Shard workers: one routing service per catalog partition.

A :class:`ShardWorker` owns everything one shard needs to serve its slice of
the catalog: a *projected* router (the trained model restricted to the shard's
sub-graph), a :class:`repro.serving.RoutingService` with its own route cache
and metrics, and optionally the checkpoint directory it was booted from.

Projection shares the master model and vocabularies (decoding stays
bit-identical for sequences inside the shard) while the graph constraint and
hypothesis parsing only admit the shard's databases.  Because every shard
scores with the same model, raw scores are directly comparable across shards
-- the property the dispatcher's merge relies on.  Projected routers also run
with a reduced beam budget: under the default escalation cascade the fast
tier decodes with a single beam and the careful tier with
``num_beams // num_shards``; with the cascade disabled the single pass uses
``num_beams // num_shards`` (see :meth:`ClusterConfig.shard_beams_for`).  A
shard only has to surface the best candidates of its own partition, which is
where the cluster's single-core speedup comes from.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.core.graph import SchemaGraph
from repro.core.router import SchemaRoute, SchemaRouter
from repro.core.serialization import ELEMENT_SEPARATOR
from repro.nn.seq2seq import Seq2SeqModel, VocabularySlice
from repro.nn.tokenizer import Vocabulary
from repro.serving.service import RoutingService, ServingConfig

#: Modules shared by reference between the master model and a sliced shard
#: twin: everything except the target embedding and output head, whose rows /
#: columns are the slice.
_TRUNK_MODULES = ("source_embedding", "encoder_projection", "state_init",
                  "input_projection", "recurrent_projection",
                  "combine_projection")


def slice_target_vocabulary(master: SchemaRouter,
                            graph: SchemaGraph) -> tuple[np.ndarray, Vocabulary]:
    """The master target-vocabulary rows a sub-catalog needs.

    Returns ``(kept_ids, sliced_vocabulary)``: the ascending master token ids
    of the special tokens, the element separator, and every word of the
    sub-catalog's database and table names, plus the sliced
    :class:`Vocabulary` over exactly those tokens (specials keep ids 0..4, so
    BOS/EOS/PAD agree between master and slice).  Sliced id ``j`` corresponds
    to master id ``kept_ids[j]``.
    """
    master_vocabulary = master.target_vocabulary
    master_tokens = master_vocabulary.tokens()
    needed = Vocabulary(specials=master_vocabulary.specials)
    needed.add(ELEMENT_SEPARATOR)
    for database in graph.databases():
        needed.add_text(database)
        for table in graph.tables_of(database):
            needed.add_text(table)
    wanted = set(needed.tokens())
    num_specials = len(master_vocabulary.specials.as_tuple())
    kept = [index for index, token in enumerate(master_tokens)
            if index < num_specials or token in wanted]
    sliced = Vocabulary([master_tokens[index] for index in kept[num_specials:]],
                        specials=master_vocabulary.specials)
    return np.asarray(kept, dtype=np.int64), sliced


def _sliced_model(master_model: Seq2SeqModel, kept_ids: np.ndarray) -> Seq2SeqModel:
    """A shard twin of ``master_model`` over ``kept_ids`` of the target vocab.

    Shares every trunk module by reference (the module tree walk in
    ``state_dict`` / ``parameters`` follows attributes, so the twin persists
    and loads through the standard checkpoint machinery); only the target
    embedding rows and output-head columns are copied, sliced to the kept
    ids.  Inference through the twin is therefore the master's computation
    restricted to the slice: per-step log-softmax normalizes over the slice
    (scores need :func:`repro.nn.seq2seq.rescore_token_sequences` to compare
    across shards), while argmax-within-constraint is unchanged.
    """
    sliced = Seq2SeqModel(replace(master_model.config,
                                  target_vocab_size=int(kept_ids.shape[0])))
    for attribute in _TRUNK_MODULES:
        setattr(sliced, attribute, getattr(master_model, attribute))
    sliced.target_embedding.weight.data = np.ascontiguousarray(
        master_model.target_embedding.weight.data[kept_ids])
    sliced.output_projection.weight.data = np.ascontiguousarray(
        master_model.output_projection.weight.data[:, kept_ids])
    sliced.output_projection.bias.data = np.ascontiguousarray(
        master_model.output_projection.bias.data[kept_ids])
    return sliced


def project_router(master: SchemaRouter, database_names: tuple[str, ...] | list[str],
                   num_beams: int | None = None,
                   beam_groups: int | None = None,
                   sliced_vocabulary: bool = False) -> SchemaRouter:
    """Restrict a trained ``master`` router to ``database_names``.

    The projected router shares the master's model and vocabularies (no
    training, no copying of weights) but decodes under the sub-catalog's graph
    constraint, so it can only ever emit schemata of its own shard.  An empty
    ``database_names`` yields a router that routes every question to ``[]``.

    ``sliced_vocabulary=True`` additionally slices the *target* vocabulary to
    the shard's own sub-catalog tokens: the projected router decodes a model
    twin whose target embedding and output head keep only the kept rows
    (decode cost scales with the shard's slice, not the global vocabulary),
    sharing the trunk with the master by reference.  Its
    ``vocabulary_slice`` carries the mapping back to the master head, and
    final scores are calibrated by exact full-vocabulary rescoring
    (:meth:`repro.core.router.SchemaRouter.rescore_hypotheses`), so merged
    rankings stay comparable across differently-sliced shards.
    """
    if not master.is_trained:
        raise ValueError("cannot project an untrained router")
    wanted = set(database_names)
    unknown = wanted - set(master.graph.catalog.database_names)
    if unknown:
        raise ValueError(f"databases not in the master catalog: {sorted(unknown)}")
    sub_catalog = master.graph.catalog.subset(database_names)
    edges = [edge for edge in master.graph.joinable_edges() if edge[0] in wanted]
    config = master.config
    if num_beams is not None or beam_groups is not None:
        beams = num_beams if num_beams is not None else config.num_beams
        groups = beam_groups if beam_groups is not None else min(config.beam_groups, beams)
        if beams % groups != 0:
            groups = beams  # keep the diverse-beam invariant: groups | beams
        config = config.ablated(num_beams=beams, beam_groups=groups)
    projected = SchemaRouter(graph=SchemaGraph.from_components(sub_catalog, edges),
                             config=config)
    if not sliced_vocabulary:
        projected.restore(master.model, master.source_vocabulary,
                          master.target_vocabulary, master.training_losses)
        return projected
    kept_ids, sliced_vocab = slice_target_vocabulary(master, projected.graph)
    projected.restore(_sliced_model(master.model, kept_ids),
                      master.source_vocabulary, sliced_vocab,
                      master.training_losses)
    projected.vocabulary_slice = VocabularySlice(
        kept_ids=kept_ids,
        output_weight=master.model.output_projection.weight.data,
        output_bias=master.model.output_projection.bias.data)
    return projected


class ShardWorker:
    """One shard of the cluster: a projected router behind a RoutingService.

    A worker optionally carries a second, *careful* decode tier: the same
    model and sub-graph re-wrapped with a wider beam budget
    (``escalation_num_beams``).  The dispatcher routes every question through
    the fast tier first and re-asks the careful tier only when the merged
    answer's confidence is low, so the wide beams are paid for exactly where
    they matter.
    """

    def __init__(self, shard_id: int, databases: tuple[str, ...], router: SchemaRouter,
                 serving_config: ServingConfig | None = None,
                 checkpoint_dir: str | Path | None = None,
                 escalation_num_beams: int | None = None) -> None:
        self.shard_id = shard_id
        self.databases = tuple(databases)
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        # The dispatcher already batches whole scatter waves into one
        # ``submit_many`` call per shard, so the per-shard micro-batcher (and
        # its worker thread) is off by default; the route cache stays on.
        self.serving_config = serving_config or ServingConfig(enable_batching=False)
        self.escalation_num_beams = escalation_num_beams
        self.service = RoutingService(router, self.serving_config)
        self.careful_service: RoutingService | None = None
        if escalation_num_beams is not None:
            self.careful_service = RoutingService(self._careful_router(router),
                                                  self.serving_config)

    def _careful_router(self, fast: SchemaRouter) -> SchemaRouter:
        """The fast router re-wrapped with the escalation beam budget."""
        careful = SchemaRouter(
            graph=fast.graph,
            config=fast.config.ablated(num_beams=self.escalation_num_beams,
                                       beam_groups=1),
        )
        careful.restore(fast.model, fast.source_vocabulary,
                        fast.target_vocabulary, fast.training_losses)
        # The careful tier shares the fast tier's (possibly sliced) model, so
        # it needs the same calibration mapping back to the master head.
        careful.vocabulary_slice = fast.vocabulary_slice
        return careful

    @classmethod
    def from_projection(cls, shard_id: int, databases: tuple[str, ...],
                        master: SchemaRouter,
                        serving_config: ServingConfig | None = None,
                        num_beams: int | None = None,
                        beam_groups: int | None = None,
                        escalation_num_beams: int | None = None,
                        sliced_vocabulary: bool = False) -> "ShardWorker":
        router = project_router(master, databases, num_beams=num_beams,
                                beam_groups=beam_groups,
                                sliced_vocabulary=sliced_vocabulary)
        return cls(shard_id, databases, router, serving_config=serving_config,
                   escalation_num_beams=escalation_num_beams)

    @classmethod
    def from_checkpoint(cls, shard_id: int, path: str | Path,
                        serving_config: ServingConfig | None = None,
                        escalation_num_beams: int | None = None) -> "ShardWorker":
        """Boot a worker from a per-shard router checkpoint directory."""
        router = SchemaRouter.from_checkpoint(path)
        return cls(shard_id, tuple(router.graph.catalog.database_names), router,
                   serving_config=serving_config, checkpoint_dir=path,
                   escalation_num_beams=escalation_num_beams)

    # -- request path --------------------------------------------------------
    @property
    def router(self) -> SchemaRouter:
        return self.service.router

    def route_batch(self, questions: list[str], max_candidates: int | None = None,
                    careful: bool = False, trace=None) -> list[list[SchemaRoute]]:
        """Route one scatter wave (cache-aware, deduplicated within the wave).

        ``careful=True`` decodes through the escalation tier (wide beams);
        it falls back to the fast tier when no escalation tier is configured.
        A caller-provided ``trace`` scope threads through to the service so
        encode/decode/parse spans nest under the dispatcher's scatter span.
        """
        service = self.careful_service if careful and self.careful_service is not None \
            else self.service
        return service.submit_many(questions, max_candidates=max_candidates,
                                   trace=trace)

    # -- rebalance hook ------------------------------------------------------
    def set_databases(self, databases: tuple[str, ...], master: SchemaRouter) -> None:
        """Re-project this shard onto a new database set (rebalancing).

        Swaps the routers under each service's route lock and bumps *this*
        shard's cache versions; other shards' caches are untouched.
        """
        router = project_router(
            master, databases,
            num_beams=self.router.config.num_beams,
            beam_groups=self.router.config.beam_groups,
            # Preserve the slicing mode across rebalances (checkpoint-booted
            # workers included: a sliced router always carries its slice).
            sliced_vocabulary=self.router.vocabulary_slice is not None,
        )
        self.databases = tuple(databases)
        self.service.replace_router(router)
        if self.careful_service is not None:
            self.careful_service.replace_router(self._careful_router(router))

    def notify_catalog_changed(self) -> None:
        self.service.notify_catalog_changed()
        if self.careful_service is not None:
            self.careful_service.notify_catalog_changed()

    # -- introspection / lifecycle ------------------------------------------
    def health(self, policy=None):
        """Both decode tiers' verdicts rolled up under one worker report."""
        from repro.obs.health import rollup

        fast = self.service.health(policy)
        fast.component = "fast_tier"
        children = [fast]
        if self.careful_service is not None:
            careful = self.careful_service.health(policy)
            careful.component = "careful_tier"
            children.append(careful)
        report = rollup(f"shard-{self.shard_id}-worker", children)
        report.details["databases"] = len(self.databases)
        return report

    def stats(self) -> dict:
        stats = self.service.stats()
        stats["shard_id"] = self.shard_id
        stats["databases"] = list(self.databases)
        if self.careful_service is not None:
            stats["careful"] = self.careful_service.stats()
        return stats

    def close(self) -> None:
        self.service.close()
        if self.careful_service is not None:
            self.careful_service.close()

    def __repr__(self) -> str:
        return f"ShardWorker(shard_id={self.shard_id}, databases={list(self.databases)})"
