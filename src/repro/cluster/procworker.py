"""Multi-process shard workers: a shard in its own interpreter.

The in-process :class:`~repro.cluster.shard.ShardWorker` shares one GIL with
every other shard, so scatter-gather only overlaps the numpy portions of the
decode.  This module moves the worker across a process boundary:

* :func:`worker_main` is the child side -- ``python -m repro.cluster.procworker
  --checkpoint DIR``.  It boots a :class:`ShardWorker` from a per-shard router
  checkpoint (the directories ``save_cluster`` writes), performs the
  ``hello``/``hello_ack`` version handshake on its stdin/stdout pipes, and
  serves :mod:`repro.cluster.transport` frames until a ``shutdown`` frame or
  EOF.

* :class:`ProcShardWorker` is the dispatcher side -- a proxy with the same
  ``route_batch(questions, max_candidates, careful)`` surface as
  ``ShardWorker``, so :class:`~repro.cluster.replica.ReplicaSet` and
  :class:`~repro.cluster.dispatcher.ClusterDispatcher` work unchanged over the
  wire.  It owns the worker's lifecycle: spawn from a checkpoint directory,
  health-check pings, kill on request timeout, automatic respawn after a
  crash, and a graceful ``close()`` that drains in-flight requests before
  sending ``shutdown``.

Since protocol 3 the connection is **multiplexed**: frame ids are real
correlation ids, many requests ride the pipe concurrently, and responses
return in whatever order they finish.  The child splits into a reader loop
feeding a small bounded decode executor behind a write-lock-guarded writer,
so a careful-tier escalation no longer blocks fast-tier traffic on the same
worker; control frames (``ping`` / ``stats_request`` / ``invalidate_cache``)
are answered inline on the reader loop, making the ping a genuinely
out-of-band liveness signal even while every decode slot is busy.  The
dispatcher side runs one receiver thread per child that demultiplexes
responses into per-request events.  A request that misses its deadline still
kills the process (a wedged decode cannot be cancelled politely) -- and with
it fails *every* in-flight request; auto-respawn then boots a clean child for
the next request.  ``ProcShardWorker(pipeline=False)`` restores the strictly
serial one-frame-at-a-time discipline for old-peer emulation and A/B
benchmarks.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable

from repro.cluster.dispatcher import ClusterError, ShardTimeoutError
from repro.cluster.shard import ShardWorker
from repro.cluster.transport import (
    BINARY_KEY,
    BINARY_PROTOCOL_VERSION,
    FrameReader,
    FrameTooLargeError,
    FrameWriter,
    MAX_FRAME_BYTES,
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    ProtocolError,
    TRACE_PROTOCOL_VERSION,
    TransportTimeoutError,
    check_protocol,
    error_message,
    hello_message,
    read_frame,
    route_lists_from_binary,
    route_lists_from_payload,
    route_lists_to_binary,
    route_lists_to_payload,
    write_frame,
)
from repro.core.router import SchemaRoute
from repro.obs import Tracer
from repro.serving.service import ServingConfig

#: Decode slots of one child's serve loop: how many route requests it works
#: on concurrently.  Small and bounded -- the executor exists to overlap the
#: careful tier with fast-tier frames (and numpy kernels release the GIL),
#: not to oversubscribe a core with dozens of decodes.
SERVE_CONCURRENCY = 4

#: Env var (seconds, float) that makes the child sleep before serving any
#: *careful* route request -- the injectable slow shard the overlap and
#: chaos tests drive.  An env var rather than an argument so tests reach the
#: children spawned deep inside checkpoint boot paths.
SLOW_CAREFUL_ENV = "REPRO_PROCWORKER_TEST_SLOW_CAREFUL"


class WorkerCrashedError(ClusterError):
    """The worker process died (EOF / broken pipe) before answering."""


class WorkerError(ClusterError):
    """The worker answered a request with an ``error`` frame."""


# -- child side ----------------------------------------------------------------
def serve(worker: ShardWorker, reader, writer,
          *, max_frame_bytes: int = MAX_FRAME_BYTES,
          max_concurrency: int = SERVE_CONCURRENCY,
          slow_careful_seconds: float = 0.0) -> None:
    """Handshake, then answer frames until ``shutdown`` or EOF.

    The loop reads frames on the calling thread and fans route requests out
    to a bounded executor; every reply goes through one write lock, so
    responses interleave on the pipe in completion order and the negotiated
    correlation id is what pairs them with their requests.  Control frames
    are answered inline -- a ping is never stuck behind a decode.  Request-
    scoped failures (a malformed batch, an unexpected exception in the
    router) answer with an ``error`` frame and keep serving; stream-level
    corruption is fatal -- once framing is lost there is nothing left to
    trust.
    """
    write_frame(writer, hello_message(worker.shard_id, worker.databases, os.getpid()),
                max_frame_bytes=max_frame_bytes)
    ack = read_frame(reader, max_frame_bytes=max_frame_bytes)
    if ack is None:
        return  # dispatcher went away before acking; nothing to serve
    if ack.get("type") != "hello_ack":
        raise ProtocolError(f"expected hello_ack, got {ack.get('type')!r}")
    check_protocol(ack)
    peer_protocol = int(ack["protocol"])
    # Route payloads go binary only to peers that negotiated protocol 3;
    # older dispatchers keep receiving the hex-float JSON form.
    send_binary = peer_protocol >= BINARY_PROTOCOL_VERSION
    # Pre-multiplexing dispatchers canonicalized every frame (sorted JSON
    # keys); keep replies to them byte-faithful to that wire.
    canonical = peer_protocol < BINARY_PROTOCOL_VERSION
    # Child-side tracer: spans recorded here feed the worker service's own
    # stage metrics AND travel back in ``route_response.spans`` to be
    # stitched into the dispatcher's trace.  The journal stays tiny -- the
    # parent side retains the interesting exemplars.
    tracer = Tracer(metrics=worker.service.metrics, max_slow_traces=4)
    write_lock = threading.Lock()

    def send(reply: dict, binary: bytes | None = None) -> None:
        with write_lock:
            try:
                write_frame(writer, reply, binary=binary, canonical=canonical,
                            max_frame_bytes=max_frame_bytes)
            except FrameTooLargeError as error:
                # An oversized *reply* is request-scoped too: answer with an
                # error frame instead of dying -- otherwise the dispatcher
                # would retry the same lethal batch against every freshly-
                # respawned replica.
                write_frame(writer, error_message(reply.get("id"), error),
                            canonical=canonical,
                            max_frame_bytes=max_frame_bytes)

    def handle_route(message: dict) -> None:
        request_id = message.get("id")
        try:
            careful = bool(message.get("careful", False))
            if slow_careful_seconds > 0.0 and careful:
                time.sleep(slow_careful_seconds)  # injected slow shard (tests)
            questions = list(message["questions"]) \
                if message.get("type") == "route_batch_request" \
                else [message["question"]]
            wire_trace = message.get("trace")
            context = None
            if isinstance(wire_trace, dict) and wire_trace.get("trace_id"):
                context = tracer.adopt(
                    str(wire_trace["trace_id"]),
                    wire_trace.get("parent_span_id"),
                    name="worker", shard=worker.shard_id, pid=os.getpid())
            try:
                routes = worker.route_batch(
                    questions,
                    max_candidates=message.get("max_candidates"),
                    careful=careful,
                    trace=context)
            except Exception as error:
                if context is not None:
                    context.finish(status="error",
                                   error=f"{type(error).__name__}: {error}")
                raise
            if send_binary:
                descriptor, segment = route_lists_to_binary(routes)
                reply = {"type": "route_response", "id": request_id,
                         "routes_binary": descriptor}
            else:
                segment = None
                reply = {"type": "route_response", "id": request_id,
                         "routes": route_lists_to_payload(routes)}
            if context is not None:
                context.finish()
                reply["spans"] = context.span_dicts()
        except Exception as error:  # request-scoped: report, keep serving
            send(error_message(request_id, error))
            return
        send(reply, segment)

    executor = ThreadPoolExecutor(max_workers=max(1, max_concurrency),
                                  thread_name_prefix="repro-procworker-decode")
    try:
        while True:
            message = read_frame(reader, max_frame_bytes=max_frame_bytes)
            if message is None:
                break  # dispatcher closed the pipe: treat as shutdown
            request_id = message.get("id")
            kind = message.get("type")
            if kind in ("route_batch_request", "route_request"):
                executor.submit(handle_route, message)
                continue
            try:
                if kind == "stats_request":
                    reply = {"type": "stats_response", "id": request_id,
                             "stats": worker.stats()}
                elif kind == "invalidate_cache":
                    worker.notify_catalog_changed()
                    reply = {"type": "ok", "id": request_id}
                elif kind == "ping":
                    # Answered inline on the reader thread: out-of-band
                    # liveness, even with every decode slot busy.
                    reply = {"type": "pong", "id": request_id, "pid": os.getpid()}
                elif kind == "shutdown":
                    # Graceful drain: finish every in-flight decode (their
                    # replies hit the pipe first), then ack and stop.
                    executor.shutdown(wait=True)
                    send({"type": "shutdown_ack", "id": request_id})
                    return
                elif kind == "crash":
                    os._exit(70)  # test hook: die without replying
                else:
                    reply = error_message(
                        request_id,
                        ProtocolError(f"worker cannot handle message type {kind!r}"))
            except Exception as error:  # request-scoped: report, keep serving
                reply = error_message(request_id, error)
            send(reply)
    finally:
        executor.shutdown(wait=True)


def worker_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.procworker",
        description="Serve one cluster shard over stdin/stdout frames.")
    parser.add_argument("--checkpoint", required=True,
                        help="per-shard router checkpoint directory")
    parser.add_argument("--shard-id", type=int, default=0)
    parser.add_argument("--escalation-num-beams", type=int, default=None,
                        help="enable the careful decode tier at this beam budget")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the shard's route cache")
    parser.add_argument("--cache-size", type=int, default=2048)
    parser.add_argument("--cache-ttl-seconds", type=float, default=None)
    parser.add_argument("--max-frame-bytes", type=int, default=MAX_FRAME_BYTES)
    parser.add_argument("--serve-concurrency", type=int, default=SERVE_CONCURRENCY,
                        help="concurrent route decodes per worker process")
    arguments = parser.parse_args(argv)

    # The frame stream owns fd 1.  Re-point sys.stdout at stderr so a stray
    # print() inside the router cannot corrupt the framing.
    writer = sys.stdout.buffer
    sys.stdout = sys.stderr
    reader = sys.stdin.buffer

    try:
        slow_careful = float(os.environ.get(SLOW_CAREFUL_ENV, "0") or "0")
    except ValueError:
        slow_careful = 0.0

    worker = ShardWorker.from_checkpoint(
        arguments.shard_id, Path(arguments.checkpoint),
        serving_config=ServingConfig(enable_batching=False,
                                     enable_cache=not arguments.no_cache,
                                     cache_size=arguments.cache_size,
                                     cache_ttl_seconds=arguments.cache_ttl_seconds,
                                     # Traces are adopted from the wire (see
                                     # serve()); the shard service must not
                                     # start its own per-wave traces on top.
                                     enable_tracing=False),
        escalation_num_beams=arguments.escalation_num_beams,
    )
    try:
        serve(worker, reader, writer, max_frame_bytes=arguments.max_frame_bytes,
              max_concurrency=arguments.serve_concurrency,
              slow_careful_seconds=slow_careful)
    except (BrokenPipeError, ProtocolError):
        return 1  # dispatcher vanished or the stream corrupted; nothing to save
    finally:
        worker.close()
    return 0


# -- dispatcher side -----------------------------------------------------------
def _repro_source_root() -> Path:
    """The directory that must be on the child's PYTHONPATH to import repro."""
    import repro

    return Path(repro.__file__).resolve().parents[1]


class _PendingRequest:
    """One in-flight frame on the receiver thread's demux table."""

    __slots__ = ("event", "reply", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.reply: dict | None = None
        self.error: BaseException | None = None

    def complete(self, reply: dict) -> None:
        self.reply = reply
        self.event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.event.set()


class ProcShardWorker:
    """A shard worker living in a subprocess, driven over the wire protocol.

    Quacks like :class:`ShardWorker` for the replica/dispatch layers
    (``route_batch`` / ``stats`` / ``notify_catalog_changed`` / ``close`` /
    ``databases``), plus process lifecycle:

    * **spawn** -- boots ``python -m repro.cluster.procworker`` on a per-shard
      checkpoint directory, runs the version handshake, and starts a receiver
      thread that demultiplexes responses by correlation id into per-request
      events -- many frames ride the pipe concurrently (``pipeline=False``
      restores the serial one-frame discipline);
    * **timeout** -- a request that misses ``request_timeout_seconds`` kills
      the process (a wedged decode cannot be cancelled politely) and raises
      :class:`ShardTimeoutError`; every *other* in-flight request on the dead
      pipe fails as :class:`WorkerCrashedError`.  The replica layer counts
      both and fails over;
    * **crash** -- EOF with requests in flight fails them all as
      :class:`WorkerCrashedError`; with ``auto_respawn`` the next request
      transparently boots a fresh process from the same checkpoint (counted
      in ``respawns``);
    * **close** -- waits for in-flight requests to drain, sends ``shutdown``,
      and escalates to ``kill`` only if the worker does not exit in time.

    Locking: ``_lifecycle`` (an RLock) guards spawn/destroy/close and the
    writer; ``_pending_lock`` guards only the demux table and its counters.
    The receiver thread takes *only* ``_pending_lock``, so lifecycle
    transitions can always join it without deadlock.
    """

    def __init__(self, shard_id: int, checkpoint_dir: str | Path, *,
                 escalation_num_beams: int | None = None,
                 enable_cache: bool = True,
                 cache_size: int = 2048,
                 cache_ttl_seconds: float | None = None,
                 request_timeout_seconds: float | None = None,
                 control_timeout_seconds: float = 10.0,
                 spawn_timeout_seconds: float = 60.0,
                 auto_respawn: bool = True,
                 pipeline: bool = True,
                 protocol_cap: int = PROTOCOL_VERSION,
                 python_executable: str | None = None,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if not MIN_PROTOCOL_VERSION <= protocol_cap <= PROTOCOL_VERSION:
            raise ValueError(
                f"protocol_cap must be in [{MIN_PROTOCOL_VERSION}, "
                f"{PROTOCOL_VERSION}], not {protocol_cap}")
        self.shard_id = shard_id
        self.checkpoint_dir = Path(checkpoint_dir)
        self.escalation_num_beams = escalation_num_beams
        self.enable_cache = enable_cache
        self.cache_size = cache_size
        self.cache_ttl_seconds = cache_ttl_seconds
        self.request_timeout_seconds = request_timeout_seconds
        #: Control-plane frames (stats / ping / invalidate / shutdown) answer
        #: without decoding, so they get their own, generous deadline -- a
        #: tight data-path timeout must not kill a worker mid-stats-poll.
        self.control_timeout_seconds = control_timeout_seconds
        self.spawn_timeout_seconds = spawn_timeout_seconds
        self.auto_respawn = auto_respawn
        #: ``True`` multiplexes frames on the pipe (protocol 3); ``False``
        #: serializes whole requests behind one gate -- the faithful old-
        #: transport twin A/B benchmarks compare against.
        self.pipeline = pipeline
        #: Highest protocol this proxy acks, whatever the child offers.
        #: Capping at 2 yields a protocol-2 connection (hex-float JSON
        #: payloads, no binary frames) against an unmodified child -- the
        #: interop knob tests and benchmarks use.
        self.protocol_cap = protocol_cap
        self.python_executable = python_executable or sys.executable
        self.max_frame_bytes = max_frame_bytes
        self.databases: tuple[str, ...] = ()
        #: What the connection speaks: ``min(child's hello, protocol_cap)``.
        #: A respawn may change it, e.g. when an upgraded proxy drives an old
        #: checkpointed worker image.  Trace/binary fields are only exchanged
        #: with peers whose negotiated version understands them.
        self.peer_protocol = 1
        self.respawns = -1  # first _spawn() brings it to 0
        self.requests_sent = 0
        self.timeouts = 0
        self.crashes = 0
        #: Frames sent while at least one other frame was already in flight
        #: (the multiplexing win, observable).
        self.pipelined_frames = 0
        #: Highest concurrent in-flight depth ever reached.
        self.max_in_flight = 0
        #: Replies whose routes arrived in the kind-1 binary form.
        self.binary_responses = 0
        self._clock = clock
        #: When the child last answered anything (set at handshake and on
        #: every reply) -- the heartbeat the health probe ages.
        self.last_reply_at: float | None = None
        #: Recent spawn timestamps, for the crash-loop (respawn-velocity)
        #: probe; bounded, since only the policy window ever matters.
        self._respawn_times: deque[float] = deque(maxlen=32)
        self._request_id = 0
        #: Lifecycle lock: spawn / destroy / close / the writer.  Reentrant
        #: so the request path can destroy-and-respawn under it.
        self._lifecycle = threading.RLock()
        #: Demux-table lock; the *only* lock the receiver thread takes.
        self._pending_lock = threading.Lock()
        self._pending: dict[int, _PendingRequest] = {}
        #: Depth histogram: in-flight depth at send time -> frame count
        #: (the in-flight p95 in TRANSPORT_SUMMARY comes from this).
        self._in_flight_depths: dict[int, int] = {}
        #: Serial-mode gate: held across a whole request when pipelining is
        #: off, restoring the one-frame-in-flight discipline.
        self._serial_gate = threading.Lock()
        #: Bumped on every spawn/destroy; a receiver thread that wakes up to
        #: a different generation stands down silently.
        self._generation = 0
        self._receiver: threading.Thread | None = None
        #: Set by the receiver when the pipe died under it: the child may
        #: still be mid-exit (``poll()`` racy), but the connection is gone.
        self._stream_dead = False
        #: Set during graceful close so the receiver does not count the
        #: worker's own clean exit as a crash.
        self._draining = False
        #: Byte counters accumulated across respawns (live halves come from
        #: the current reader/writer).
        self._bytes_sent_total = 0
        self._bytes_received_total = 0
        self._process: subprocess.Popen | None = None
        self._reader: FrameReader | None = None
        self._writer: FrameWriter | None = None
        self._closed = False
        self._spawn()

    # -- lifecycle -------------------------------------------------------------
    def _command(self) -> list[str]:
        command = [self.python_executable, "-m", "repro.cluster.procworker",
                   "--checkpoint", str(self.checkpoint_dir),
                   "--shard-id", str(self.shard_id),
                   "--cache-size", str(self.cache_size),
                   "--max-frame-bytes", str(self.max_frame_bytes)]
        if self.escalation_num_beams is not None:
            command += ["--escalation-num-beams", str(self.escalation_num_beams)]
        if not self.enable_cache:
            command.append("--no-cache")
        if self.cache_ttl_seconds is not None:
            command += ["--cache-ttl-seconds", str(self.cache_ttl_seconds)]
        return command

    def _spawn(self) -> None:
        environment = dict(os.environ)
        source_root = str(_repro_source_root())
        existing = environment.get("PYTHONPATH")
        environment["PYTHONPATH"] = source_root if not existing \
            else os.pathsep.join([source_root, existing])
        self._generation += 1
        generation = self._generation
        self._stream_dead = False
        self._process = subprocess.Popen(
            self._command(), stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            env=environment)
        self._reader = FrameReader(self._process.stdout,
                                   max_frame_bytes=self.max_frame_bytes)
        self._writer = FrameWriter(self._process.stdin,
                                   max_frame_bytes=self.max_frame_bytes)
        self.respawns += 1
        try:
            hello = self._reader.read(timeout_seconds=self.spawn_timeout_seconds)
            if hello is None:
                raise WorkerCrashedError(
                    f"shard {self.shard_id} worker exited during startup "
                    f"(code {self._process.poll()})")
            if hello.get("type") != "hello":
                raise ProtocolError(f"expected hello, got {hello.get('type')!r}")
            check_protocol(hello)
            # Negotiate downward: the connection speaks the smaller of what
            # the child offers and what this proxy is willing to ack.
            self.peer_protocol = min(int(hello["protocol"]), self.protocol_cap)
            self.databases = tuple(hello.get("databases", ()))
            self._writer.write({"type": "hello_ack",
                                "protocol": self.peer_protocol},
                               timeout_seconds=self.spawn_timeout_seconds)
            self.last_reply_at = self._clock()
            self._respawn_times.append(self._clock())
        except TransportTimeoutError as error:
            self._destroy()
            raise ShardTimeoutError(
                f"shard {self.shard_id} worker did not complete the handshake "
                f"within {self.spawn_timeout_seconds}s") from error
        except Exception:
            self._destroy()
            raise
        self._receiver = threading.Thread(
            target=self._receive_loop, args=(self._reader, generation),
            name=f"repro-procworker-recv-{self.shard_id}", daemon=True)
        self._receiver.start()

    def _receive_loop(self, reader: FrameReader, generation: int) -> None:
        """Demultiplex replies into their pending events until the pipe dies.

        Takes only ``_pending_lock``, never ``_lifecycle``: destroy paths
        hold the lifecycle lock while joining this thread.
        """
        try:
            while True:
                reply = reader.read(timeout_seconds=None)
                if generation != self._generation:
                    return  # a destroy superseded this connection
                if reply is None:
                    raise WorkerCrashedError(
                        f"shard {self.shard_id} worker closed its pipe")
                self.last_reply_at = self._clock()
                with self._pending_lock:
                    pending = self._pending.pop(reply.get("id"), None)
                if pending is not None:
                    pending.complete(reply)
                # else: a reply that lost the race with its own timeout --
                # the process is being killed anyway; drop it.
        except BaseException as error:
            if generation != self._generation or self._draining or self._closed:
                return  # deliberate teardown, not a crash
            self._stream_dead = True
            exit_code = None
            process = self._process
            if process is not None:
                exit_code = process.poll()
            self.crashes += 1
            description = (f"shard {self.shard_id} worker died mid-request "
                           f"(exit code {exit_code})"
                           if isinstance(error, WorkerCrashedError)
                           else f"shard {self.shard_id} worker reply stream "
                                f"failed ({type(error).__name__}: {error})")
            self._fail_in_flight(lambda: WorkerCrashedError(description))

    def _fail_in_flight(self, make_error: Callable[[], BaseException]) -> int:
        """Fail every pending request (each gets its own exception instance,
        since they are raised on different caller threads)."""
        with self._pending_lock:
            pending, self._pending = list(self._pending.values()), {}
        for entry in pending:
            entry.fail(make_error())
        return len(pending)

    def _destroy(self) -> None:
        """Hard-stop the child, fail anything in flight, release its pipes."""
        with self._lifecycle:
            self._generation += 1  # stand down the current receiver
            process, self._process = self._process, None
            reader, self._reader = self._reader, None
            writer, self._writer = self._writer, None
            receiver, self._receiver = self._receiver, None
            self._fail_in_flight(lambda: WorkerCrashedError(
                f"shard {self.shard_id} worker was stopped with requests "
                f"in flight"))
            if process is not None:
                if process.poll() is None:
                    process.kill()
                try:
                    process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover - kill is final
                    pass
            # The kill closed the child's end: EOF wakes a blocked receiver,
            # which sees the bumped generation and stands down.
            if receiver is not None and receiver is not threading.current_thread():
                receiver.join(timeout=5.0)
            if reader is not None:
                self._bytes_received_total += reader.bytes_read
                reader.close()
            if writer is not None:
                self._bytes_sent_total += writer.bytes_written
                writer.close()
            if process is not None:
                for pipe in (process.stdin, process.stdout):
                    if pipe is not None:
                        try:
                            pipe.close()
                        except OSError:
                            pass

    @property
    def process(self) -> subprocess.Popen | None:
        return self._process

    @property
    def pid(self) -> int | None:
        process = self._process  # snapshot: a timing-out request may _destroy
        return process.pid if process is not None else None

    def is_alive(self) -> bool:
        process = self._process  # snapshot: a timing-out request may _destroy
        return process is not None and process.poll() is None

    @property
    def in_flight(self) -> int:
        """How many requests ride the pipe right now."""
        with self._pending_lock:
            return len(self._pending)

    def kill(self) -> None:
        """Hard-kill the child (the crash-injection path used by tests)."""
        self._destroy()

    def crash(self) -> None:
        """Chaos hook: make the worker die (it receives a ``crash`` frame and
        exits without replying), exercising exactly the path a segfaulting or
        OOM-killed worker would take -- including failing whatever other
        frames are in flight at that moment."""
        with self._lifecycle:
            if not self.is_alive():
                return
            self._request_id += 1
            try:
                self._writer.write(
                    {"type": "crash", "id": self._request_id},
                    canonical=self.peer_protocol < BINARY_PROTOCOL_VERSION,
                    timeout_seconds=self.control_timeout_seconds)
            except (TransportTimeoutError, OSError):
                return  # already dead / wedged; the receiver handles the rest
            process = self._process
        if process is not None:
            try:
                process.wait(timeout=self.control_timeout_seconds)
            except subprocess.TimeoutExpired:  # pragma: no cover - exit is immediate
                pass
        # Let the receiver notice the EOF (it counts the crash and fails the
        # in-flight requests) before the caller inspects the counters.
        receiver = self._receiver
        if receiver is not None:
            receiver.join(timeout=self.control_timeout_seconds)

    def respawn(self) -> None:
        """Kill (if needed) and boot a fresh process from the checkpoint."""
        with self._lifecycle:
            self._destroy()
            self._spawn()

    def _ensure_alive_locked(self) -> None:
        if self._closed:
            raise RuntimeError("the worker proxy has been closed")
        if self.is_alive() and not self._stream_dead:
            return
        if not self.auto_respawn:
            raise WorkerCrashedError(f"shard {self.shard_id} worker is not running")
        self._destroy()
        self._spawn()

    # -- request path ----------------------------------------------------------
    def _begin_request(self, message: dict, timeout_seconds: float | None,
                       *, ensure: bool = True,
                       trace_context: Callable[[], dict] | None = None,
                       ) -> tuple[int, _PendingRequest, int]:
        """Register a pending entry and write the frame.

        Returns ``(request id, pending entry, in-flight depth at send)``.
        The pending entry is registered *before* the write, so a reply can
        never race past its own bookkeeping.
        """
        with self._lifecycle:
            if self._closed:
                raise RuntimeError("the worker proxy has been closed")
            if ensure:
                self._ensure_alive_locked()
            elif self._stream_dead or not self.is_alive():
                raise WorkerCrashedError(
                    f"shard {self.shard_id} worker is not running")
            self._request_id += 1
            request_id = self._request_id
            message = dict(message, id=request_id)
            # peer_protocol is read under the lock: _ensure_alive_locked may
            # have just respawned a (differently-versioned) child.
            if trace_context is not None \
                    and self.peer_protocol >= TRACE_PROTOCOL_VERSION:
                message["trace"] = trace_context()
            pending = _PendingRequest()
            with self._pending_lock:
                depth = len(self._pending) + 1
                self._pending[request_id] = pending
                if depth > 1:
                    self.pipelined_frames += 1
                if depth > self.max_in_flight:
                    self.max_in_flight = depth
                self._in_flight_depths[depth] = \
                    self._in_flight_depths.get(depth, 0) + 1
            self.requests_sent += 1
            try:
                self._writer.write(
                    message,
                    canonical=self.peer_protocol < BINARY_PROTOCOL_VERSION,
                    timeout_seconds=timeout_seconds)
            except TransportTimeoutError as error:
                with self._pending_lock:
                    self._pending.pop(request_id, None)
                self.timeouts += 1
                self._destroy()  # a wedged pipe cannot be drained politely
                raise ShardTimeoutError(
                    f"shard {self.shard_id} worker did not drain "
                    f"{message['type']} within {timeout_seconds}s") from error
            except (BrokenPipeError, OSError) as error:
                with self._pending_lock:
                    self._pending.pop(request_id, None)
                self.crashes += 1
                self._destroy()
                raise WorkerCrashedError(
                    f"shard {self.shard_id} worker pipe broke mid-request"
                ) from error
        return request_id, pending, depth

    def _await_reply(self, request_id: int, pending: _PendingRequest,
                     expected: str, timeout_seconds: float | None,
                     label: str) -> dict:
        """Wait for the receiver to demux this request's reply.

        A deadline miss kills the process (failing every other in-flight
        frame with it) and raises :class:`ShardTimeoutError`.
        """
        if not pending.event.wait(timeout_seconds):
            with self._lifecycle:
                # Re-check under the lock: the reply may have just landed.
                if not pending.event.is_set():
                    with self._pending_lock:
                        self._pending.pop(request_id, None)
                    self.timeouts += 1
                    self._destroy()
                    raise ShardTimeoutError(
                        f"shard {self.shard_id} worker did not answer "
                        f"{label} within {timeout_seconds}s")
        if pending.error is not None:
            raise pending.error
        reply = pending.reply
        assert reply is not None
        if reply.get("type") == "error":
            raise WorkerError(f"shard {self.shard_id} worker: "
                              f"{reply.get('error')}: {reply.get('message')}")
        if reply.get("type") != expected:
            self._destroy()  # correlation broke: cannot trust the stream
            raise ProtocolError(
                f"expected {expected} for request {request_id}, got "
                f"{reply.get('type')!r}")
        return reply

    def _decode_routes(self, reply: dict) -> list[list[SchemaRoute]]:
        descriptor = reply.get("routes_binary")
        if descriptor is not None:
            self.binary_responses += 1
            return route_lists_from_binary(descriptor, reply.get(BINARY_KEY, b""))
        return route_lists_from_payload(reply["routes"])

    def route_batch(self, questions: list[str], max_candidates: int | None = None,
                    careful: bool = False, trace=None) -> list[list[SchemaRoute]]:
        """Route one scatter wave in the worker process.

        With a ``trace``, a ``wire`` span covers the whole round-trip and is
        tagged with the in-flight depth at send time; the propagation context
        rides the request frame (only to trace-aware peers -- a protocol-1
        worker never sees the field) and the worker's own spans come back in
        the reply, rebased and stitched under the ``wire`` span."""
        gate = None if self.pipeline else self._serial_gate
        if gate is not None:
            gate.acquire()
        try:
            span = trace.start_span("wire", shard=self.shard_id,
                                    questions=len(questions)) \
                if trace is not None else None
            try:
                message = {"type": "route_batch_request",
                           "questions": list(questions),
                           "max_candidates": max_candidates, "careful": careful}
                request_id, pending, depth = self._begin_request(
                    message, self.request_timeout_seconds,
                    trace_context=(lambda: trace.wire_context(span))
                    if span is not None else None)
                if span is not None:
                    span.annotate(in_flight=depth)
                reply = self._await_reply(request_id, pending, "route_response",
                                          self.request_timeout_seconds,
                                          "route_batch_request")
                routes = self._decode_routes(reply)
                if len(routes) != len(questions):
                    raise ProtocolError(
                        f"worker answered {len(routes)} route lists "
                        f"for {len(questions)} questions")
            except BaseException as exc:
                if span is not None:
                    span.end(status="error", error=f"{type(exc).__name__}: {exc}")
                raise
            if span is not None:
                span.end()
                remote_spans = reply.get("spans")
                if remote_spans:
                    trace.add_remote_spans(remote_spans, anchor=span)
            return routes
        finally:
            if gate is not None:
                gate.release()

    def ping(self, timeout_seconds: float | None = None,
             *, ensure: bool = True) -> float:
        """Heartbeat: round-trip one ``ping`` frame, returning seconds taken.

        Out-of-band on a multiplexed connection: the child answers pings on
        its reader thread, so this measures liveness even while every decode
        slot is busy.  ``ensure=False`` never boots a process as a side
        effect (the health probe's mode)."""
        timeout = timeout_seconds or self.control_timeout_seconds
        started = time.monotonic()
        request_id, pending, _ = self._begin_request({"type": "ping"}, timeout,
                                                     ensure=ensure)
        self._await_reply(request_id, pending, "pong", timeout, "ping")
        return time.monotonic() - started

    def notify_catalog_changed(self) -> None:
        request_id, pending, _ = self._begin_request(
            {"type": "invalidate_cache"}, self.control_timeout_seconds)
        self._await_reply(request_id, pending, "ok",
                          self.control_timeout_seconds, "invalidate_cache")

    def set_databases(self, databases: tuple[str, ...], master) -> None:
        raise ClusterError(
            "subprocess shard workers cannot be re-projected live; rebalance "
            "the cluster checkpoint and respawn the worker instead")

    # -- introspection ---------------------------------------------------------
    def health(self, policy=None):
        """Liveness, heartbeat age, respawn velocity, and protocol parity.

        Like :meth:`stats`, this never boots a process as a side effect: a
        dead child reports ``failing`` and leaves respawning to the request
        path (or an operator).  A stale heartbeat is re-checked with one
        *out-of-band* ping -- since the multiplexed transport answers pings on
        the child's reader thread, this is a real liveness check even while
        requests are in flight (the old transport had to assume a busy worker
        was working, because its one request slot was occupied)."""
        from repro.obs.health import HealthPolicy, HealthReport

        policy = policy or HealthPolicy()
        report = HealthReport(component=f"shard-{self.shard_id}-procworker")
        report.details.update(pid=self.pid, respawns=self.respawns,
                              timeouts=self.timeouts, crashes=self.crashes,
                              peer_protocol=self.peer_protocol,
                              in_flight=self.in_flight)
        if self._closed:
            report.degrade("failing", "worker proxy is closed")
            return report
        if not self.is_alive() or self._stream_dead:
            report.degrade("failing", "worker process is not running")
            return report
        now = self._clock()
        recent = sum(1 for at in self._respawn_times
                     if now - at <= policy.respawn_window_seconds)
        report.details["recent_respawns"] = recent
        # The boot spawn is expected; only respawns *beyond* the first count
        # against the crash-loop budget.
        if recent - 1 > policy.max_respawns_in_window:
            report.degrade("degraded",
                           f"{recent - 1} respawns in the last "
                           f"{policy.respawn_window_seconds:g}s (crash loop)")
        if self.peer_protocol < TRACE_PROTOCOL_VERSION:
            report.degrade("degraded",
                           f"peer speaks protocol {self.peer_protocol} < "
                           f"{TRACE_PROTOCOL_VERSION} (no trace propagation)")
        age = now - self.last_reply_at if self.last_reply_at is not None else None
        report.details["heartbeat_age_seconds"] = (
            round(age, 3) if age is not None else None)
        if age is not None and age > policy.heartbeat_max_age_seconds:
            try:
                seconds = self.ping(self.control_timeout_seconds, ensure=False)
            except (ClusterError, ProtocolError, RuntimeError):
                report.degrade("failing",
                               f"no reply for {age:.0f}s and the "
                               f"health ping failed")
            else:
                report.details["heartbeat_check"] = \
                    f"ping answered in {seconds:.3f}s"
        return report

    def transport_stats(self) -> dict:
        reader = self._reader  # snapshots: a concurrent destroy may None them
        writer = self._writer
        with self._pending_lock:
            in_flight = len(self._pending)
            depths = dict(self._in_flight_depths)
        return {
            "backend": "subprocess",
            "pid": self.pid,
            "alive": self.is_alive(),
            "protocol": self.peer_protocol,
            "pipelined": self.pipeline,
            "respawns": self.respawns,
            "requests_sent": self.requests_sent,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "in_flight": in_flight,
            "max_in_flight": self.max_in_flight,
            "pipelined_frames": self.pipelined_frames,
            "binary_responses": self.binary_responses,
            "bytes_sent": self._bytes_sent_total
            + (writer.bytes_written if writer is not None else 0),
            "bytes_received": self._bytes_received_total
            + (reader.bytes_read if reader is not None else 0),
            "in_flight_depths": {str(depth): count
                                 for depth, count in sorted(depths.items())},
        }

    def _shell_stats(self) -> dict:
        """What a dead/unreachable worker reports: zeroes + transport truth."""
        return {"shard_id": self.shard_id, "databases": list(self.databases),
                "counters": {}, "qps": 0.0, "transport": self.transport_stats()}

    def stats(self) -> dict:
        """The worker's own service stats plus transport-level accounting.

        A dead worker -- including one that dies *during* the poll -- reports
        an empty shell (zero counters) instead of respawning or raising:
        ``stats()`` is the monitoring path, and it must never boot a process
        as a side effect nor crash the cluster-wide rollup exactly when a
        shard goes down.
        """
        if self._closed or self._stream_dead or not self.is_alive():
            return self._shell_stats()
        try:
            request_id, pending, _ = self._begin_request(
                {"type": "stats_request"}, self.control_timeout_seconds,
                ensure=False)
            reply = self._await_reply(request_id, pending, "stats_response",
                                      self.control_timeout_seconds,
                                      "stats_request")
        except (ClusterError, ProtocolError, RuntimeError):
            return self._shell_stats()  # crashed / timed out / closed mid-poll
        stats = reply["stats"]
        stats["transport"] = self.transport_stats()
        return stats

    # -- shutdown --------------------------------------------------------------
    def close(self, shutdown_timeout_seconds: float = 10.0) -> None:
        """Graceful stop: drain in-flight frames, ``shutdown``, wait, then
        escalate to a hard kill only if the worker does not exit in time."""
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
            self._draining = True
            process = self._process
        if process is None or process.poll() is not None or self._stream_dead:
            self._destroy()
            return
        # Drain: give requests already on the pipe until the deadline to come
        # home before the shutdown frame jumps the (multiplexed) queue.
        deadline = time.monotonic() + shutdown_timeout_seconds
        while time.monotonic() < deadline:
            with self._pending_lock:
                if not self._pending:
                    break
            time.sleep(0.005)
        pending = _PendingRequest()
        with self._lifecycle:
            try:
                self._request_id += 1
                request_id = self._request_id
                with self._pending_lock:
                    self._pending[request_id] = pending
                self._writer.write(
                    {"type": "shutdown", "id": request_id},
                    canonical=self.peer_protocol < BINARY_PROTOCOL_VERSION,
                    timeout_seconds=shutdown_timeout_seconds)
            except (ClusterError, ProtocolError, OSError, AttributeError):
                self._destroy()  # stream already gone: straight to the kill
                return
        # The child acks only after its decode executor fully drains.
        pending.event.wait(shutdown_timeout_seconds)
        try:
            process.wait(timeout=shutdown_timeout_seconds)
        except subprocess.TimeoutExpired:
            pass  # fall through to the hard stop
        self._destroy()

    def __enter__(self) -> "ProcShardWorker":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "alive" if self.is_alive() else "dead"
        return (f"ProcShardWorker(shard_id={self.shard_id}, pid={self.pid}, "
                f"{state}, checkpoint={str(self.checkpoint_dir)!r})")


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(worker_main())
