"""Multi-process shard workers: a shard in its own interpreter.

The in-process :class:`~repro.cluster.shard.ShardWorker` shares one GIL with
every other shard, so scatter-gather only overlaps the numpy portions of the
decode.  This module moves the worker across a process boundary:

* :func:`worker_main` is the child side -- ``python -m repro.cluster.procworker
  --checkpoint DIR``.  It boots a :class:`ShardWorker` from a per-shard router
  checkpoint (the directories ``save_cluster`` writes), performs the
  ``hello``/``hello_ack`` version handshake on its stdin/stdout pipes, and
  serves :mod:`repro.cluster.transport` frames until a ``shutdown`` frame or
  EOF.

* :class:`ProcShardWorker` is the dispatcher side -- a proxy with the same
  ``route_batch(questions, max_candidates, careful)`` surface as
  ``ShardWorker``, so :class:`~repro.cluster.replica.ReplicaSet` and
  :class:`~repro.cluster.dispatcher.ClusterDispatcher` work unchanged over the
  wire.  It owns the worker's lifecycle: spawn from a checkpoint directory,
  health-check pings, kill on request timeout, automatic respawn after a
  crash, and a graceful ``close()`` that drains the in-flight request before
  sending ``shutdown``.

Request/response is strictly serial per worker (one frame in flight), which
matches how the dispatcher drives shards -- one scatter wave at a time -- and
keeps the protocol trivially ordered.  Parallelism comes from having many
workers, each on its own core.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable

from repro.cluster.dispatcher import ClusterError, ShardTimeoutError
from repro.cluster.shard import ShardWorker
from repro.cluster.transport import (
    FrameReader,
    FrameTooLargeError,
    FrameWriter,
    MAX_FRAME_BYTES,
    ProtocolError,
    TRACE_PROTOCOL_VERSION,
    TransportTimeoutError,
    check_protocol,
    error_message,
    hello_message,
    read_frame,
    route_lists_from_payload,
    route_lists_to_payload,
    write_frame,
)
from repro.core.router import SchemaRoute
from repro.obs import Tracer
from repro.serving.service import ServingConfig


class WorkerCrashedError(ClusterError):
    """The worker process died (EOF / broken pipe) before answering."""


class WorkerError(ClusterError):
    """The worker answered a request with an ``error`` frame."""


# -- child side ----------------------------------------------------------------
def serve(worker: ShardWorker, reader, writer,
          *, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
    """Handshake, then answer frames until ``shutdown`` or EOF.

    Request-scoped failures (a malformed batch, an unexpected exception in the
    router) answer with an ``error`` frame and keep serving; stream-level
    corruption is fatal -- once framing is lost there is nothing left to trust.
    """
    write_frame(writer, hello_message(worker.shard_id, worker.databases, os.getpid()),
                max_frame_bytes=max_frame_bytes)
    ack = read_frame(reader, max_frame_bytes=max_frame_bytes)
    if ack is None:
        return  # dispatcher went away before acking; nothing to serve
    if ack.get("type") != "hello_ack":
        raise ProtocolError(f"expected hello_ack, got {ack.get('type')!r}")
    check_protocol(ack)
    # Child-side tracer: spans recorded here feed the worker service's own
    # stage metrics AND travel back in ``route_response.spans`` to be
    # stitched into the dispatcher's trace.  The journal stays tiny -- the
    # parent side retains the interesting exemplars.
    tracer = Tracer(metrics=worker.service.metrics, max_slow_traces=4)
    while True:
        message = read_frame(reader, max_frame_bytes=max_frame_bytes)
        if message is None:
            break  # dispatcher closed the pipe: treat as shutdown
        request_id = message.get("id")
        kind = message.get("type")
        try:
            if kind in ("route_batch_request", "route_request"):
                questions = list(message["questions"]) \
                    if kind == "route_batch_request" else [message["question"]]
                wire_trace = message.get("trace")
                context = None
                if isinstance(wire_trace, dict) and wire_trace.get("trace_id"):
                    context = tracer.adopt(
                        str(wire_trace["trace_id"]),
                        wire_trace.get("parent_span_id"),
                        name="worker", shard=worker.shard_id, pid=os.getpid())
                try:
                    routes = worker.route_batch(
                        questions,
                        max_candidates=message.get("max_candidates"),
                        careful=bool(message.get("careful", False)),
                        trace=context)
                except Exception as error:
                    if context is not None:
                        context.finish(status="error",
                                       error=f"{type(error).__name__}: {error}")
                    raise
                reply = {"type": "route_response", "id": request_id,
                         "routes": route_lists_to_payload(routes)}
                if context is not None:
                    context.finish()
                    reply["spans"] = context.span_dicts()
            elif kind == "stats_request":
                reply = {"type": "stats_response", "id": request_id,
                         "stats": worker.stats()}
            elif kind == "invalidate_cache":
                worker.notify_catalog_changed()
                reply = {"type": "ok", "id": request_id}
            elif kind == "ping":
                reply = {"type": "pong", "id": request_id, "pid": os.getpid()}
            elif kind == "shutdown":
                write_frame(writer, {"type": "shutdown_ack", "id": request_id},
                            max_frame_bytes=max_frame_bytes)
                break
            elif kind == "crash":
                os._exit(70)  # test hook: die without replying
            else:
                reply = error_message(
                    request_id,
                    ProtocolError(f"worker cannot handle message type {kind!r}"))
        except Exception as error:  # request-scoped: report, keep serving
            reply = error_message(request_id, error)
        try:
            write_frame(writer, reply, max_frame_bytes=max_frame_bytes)
        except FrameTooLargeError as error:
            # An oversized *reply* is request-scoped too: answer with an error
            # frame instead of dying -- otherwise the dispatcher would retry
            # the same lethal batch against every freshly-respawned replica.
            write_frame(writer, error_message(request_id, error),
                        max_frame_bytes=max_frame_bytes)


def worker_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.procworker",
        description="Serve one cluster shard over stdin/stdout frames.")
    parser.add_argument("--checkpoint", required=True,
                        help="per-shard router checkpoint directory")
    parser.add_argument("--shard-id", type=int, default=0)
    parser.add_argument("--escalation-num-beams", type=int, default=None,
                        help="enable the careful decode tier at this beam budget")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the shard's route cache")
    parser.add_argument("--cache-size", type=int, default=2048)
    parser.add_argument("--cache-ttl-seconds", type=float, default=None)
    parser.add_argument("--max-frame-bytes", type=int, default=MAX_FRAME_BYTES)
    arguments = parser.parse_args(argv)

    # The frame stream owns fd 1.  Re-point sys.stdout at stderr so a stray
    # print() inside the router cannot corrupt the framing.
    writer = sys.stdout.buffer
    sys.stdout = sys.stderr
    reader = sys.stdin.buffer

    worker = ShardWorker.from_checkpoint(
        arguments.shard_id, Path(arguments.checkpoint),
        serving_config=ServingConfig(enable_batching=False,
                                     enable_cache=not arguments.no_cache,
                                     cache_size=arguments.cache_size,
                                     cache_ttl_seconds=arguments.cache_ttl_seconds,
                                     # Traces are adopted from the wire (see
                                     # serve()); the shard service must not
                                     # start its own per-wave traces on top.
                                     enable_tracing=False),
        escalation_num_beams=arguments.escalation_num_beams,
    )
    try:
        serve(worker, reader, writer, max_frame_bytes=arguments.max_frame_bytes)
    except (BrokenPipeError, ProtocolError):
        return 1  # dispatcher vanished or the stream corrupted; nothing to save
    finally:
        worker.close()
    return 0


# -- dispatcher side -----------------------------------------------------------
def _repro_source_root() -> Path:
    """The directory that must be on the child's PYTHONPATH to import repro."""
    import repro

    return Path(repro.__file__).resolve().parents[1]


class ProcShardWorker:
    """A shard worker living in a subprocess, driven over the wire protocol.

    Quacks like :class:`ShardWorker` for the replica/dispatch layers
    (``route_batch`` / ``stats`` / ``notify_catalog_changed`` / ``close`` /
    ``databases``), plus process lifecycle:

    * **spawn** -- boots ``python -m repro.cluster.procworker`` on a per-shard
      checkpoint directory and runs the version handshake;
    * **timeout** -- a request that misses ``request_timeout_seconds`` kills
      the process (a wedged decode cannot be cancelled politely) and raises
      :class:`ShardTimeoutError`, which the replica layer counts and fails
      over;
    * **crash** -- EOF mid-request raises :class:`WorkerCrashedError`; with
      ``auto_respawn`` the next request transparently boots a fresh process
      from the same checkpoint (counted in ``respawns``);
    * **close** -- takes the request lock (draining any in-flight request),
      sends ``shutdown``, and escalates to ``terminate``/``kill`` only if the
      worker does not exit in time.
    """

    def __init__(self, shard_id: int, checkpoint_dir: str | Path, *,
                 escalation_num_beams: int | None = None,
                 enable_cache: bool = True,
                 cache_size: int = 2048,
                 cache_ttl_seconds: float | None = None,
                 request_timeout_seconds: float | None = None,
                 control_timeout_seconds: float = 10.0,
                 spawn_timeout_seconds: float = 60.0,
                 auto_respawn: bool = True,
                 python_executable: str | None = None,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.shard_id = shard_id
        self.checkpoint_dir = Path(checkpoint_dir)
        self.escalation_num_beams = escalation_num_beams
        self.enable_cache = enable_cache
        self.cache_size = cache_size
        self.cache_ttl_seconds = cache_ttl_seconds
        self.request_timeout_seconds = request_timeout_seconds
        #: Control-plane frames (stats / ping / invalidate / shutdown) answer
        #: without decoding, so they get their own, generous deadline -- a
        #: tight data-path timeout must not kill a worker mid-stats-poll.
        self.control_timeout_seconds = control_timeout_seconds
        self.spawn_timeout_seconds = spawn_timeout_seconds
        self.auto_respawn = auto_respawn
        self.python_executable = python_executable or sys.executable
        self.max_frame_bytes = max_frame_bytes
        self.databases: tuple[str, ...] = ()
        #: What the current child speaks (from its hello); a respawn may
        #: change it, e.g. when an upgraded proxy drives an old checkpointed
        #: worker image.  Trace fields are only sent to trace-aware peers.
        self.peer_protocol = 1
        self.respawns = -1  # first _spawn() brings it to 0
        self.requests_sent = 0
        self.timeouts = 0
        self.crashes = 0
        self._clock = clock
        #: When the child last answered anything (set at handshake and on
        #: every reply) — the heartbeat the health probe ages.
        self.last_reply_at: float | None = None
        #: Recent spawn timestamps, for the crash-loop (respawn-velocity)
        #: probe; bounded, since only the policy window ever matters.
        self._respawn_times: deque[float] = deque(maxlen=32)
        self._request_id = 0
        self._lock = threading.Lock()
        self._process: subprocess.Popen | None = None
        self._reader: FrameReader | None = None
        self._writer: FrameWriter | None = None
        self._closed = False
        self._spawn()

    # -- lifecycle -------------------------------------------------------------
    def _command(self) -> list[str]:
        command = [self.python_executable, "-m", "repro.cluster.procworker",
                   "--checkpoint", str(self.checkpoint_dir),
                   "--shard-id", str(self.shard_id),
                   "--cache-size", str(self.cache_size),
                   "--max-frame-bytes", str(self.max_frame_bytes)]
        if self.escalation_num_beams is not None:
            command += ["--escalation-num-beams", str(self.escalation_num_beams)]
        if not self.enable_cache:
            command.append("--no-cache")
        if self.cache_ttl_seconds is not None:
            command += ["--cache-ttl-seconds", str(self.cache_ttl_seconds)]
        return command

    def _spawn(self) -> None:
        environment = dict(os.environ)
        source_root = str(_repro_source_root())
        existing = environment.get("PYTHONPATH")
        environment["PYTHONPATH"] = source_root if not existing \
            else os.pathsep.join([source_root, existing])
        self._process = subprocess.Popen(
            self._command(), stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            env=environment)
        self._reader = FrameReader(self._process.stdout,
                                   max_frame_bytes=self.max_frame_bytes)
        self._writer = FrameWriter(self._process.stdin,
                                   max_frame_bytes=self.max_frame_bytes)
        self.respawns += 1
        try:
            hello = self._reader.read(timeout_seconds=self.spawn_timeout_seconds)
            if hello is None:
                raise WorkerCrashedError(
                    f"shard {self.shard_id} worker exited during startup "
                    f"(code {self._process.poll()})")
            if hello.get("type") != "hello":
                raise ProtocolError(f"expected hello, got {hello.get('type')!r}")
            check_protocol(hello)
            self.peer_protocol = int(hello["protocol"])
            self.databases = tuple(hello.get("databases", ()))
            self._writer.write({"type": "hello_ack", "protocol": hello["protocol"]},
                               timeout_seconds=self.spawn_timeout_seconds)
            self.last_reply_at = self._clock()
            self._respawn_times.append(self._clock())
        except TransportTimeoutError as error:
            self._destroy()
            raise ShardTimeoutError(
                f"shard {self.shard_id} worker did not complete the handshake "
                f"within {self.spawn_timeout_seconds}s") from error
        except Exception:
            self._destroy()
            raise

    def _destroy(self) -> None:
        """Hard-stop the child and release its pipes."""
        process, self._process = self._process, None
        reader, self._reader = self._reader, None
        writer, self._writer = self._writer, None
        if reader is not None:
            reader.close()
        if writer is not None:
            writer.close()
        if process is not None:
            if process.poll() is None:
                process.kill()
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - kill is final
                pass
            for pipe in (process.stdin, process.stdout):
                if pipe is not None:
                    try:
                        pipe.close()
                    except OSError:
                        pass

    @property
    def process(self) -> subprocess.Popen | None:
        return self._process

    @property
    def pid(self) -> int | None:
        process = self._process  # snapshot: a timing-out request may _destroy
        return process.pid if process is not None else None

    def is_alive(self) -> bool:
        process = self._process  # snapshot: a timing-out request may _destroy
        return process is not None and process.poll() is None

    def kill(self) -> None:
        """Hard-kill the child (the crash-injection path used by tests)."""
        with self._lock:
            self._destroy()

    def crash(self) -> None:
        """Chaos hook: make the worker die *mid-request* (it receives a
        ``crash`` frame and exits without replying), exercising exactly the
        path a segfaulting or OOM-killed worker would take."""
        with self._lock:
            if not self.is_alive():
                return
            try:
                self._request_locked({"type": "crash"}, "pong", 10.0)
            except (WorkerCrashedError, ShardTimeoutError):
                pass  # dying without a reply is the point

    def respawn(self) -> None:
        """Kill (if needed) and boot a fresh process from the checkpoint."""
        with self._lock:
            self._destroy()
            self._spawn()

    def _ensure_alive_locked(self) -> None:
        if self._closed:
            raise RuntimeError("the worker proxy has been closed")
        if self.is_alive():
            return
        if not self.auto_respawn:
            raise WorkerCrashedError(f"shard {self.shard_id} worker is not running")
        self._destroy()
        self._spawn()

    # -- request path ----------------------------------------------------------
    def _request_locked(self, message: dict, expected: str,
                        timeout_seconds: float | None) -> dict:
        self._request_id += 1
        request_id = self._request_id
        message = dict(message, id=request_id)
        self.requests_sent += 1
        try:
            # The deadline covers both halves: a worker that stops draining
            # stdin mid-wave times out just like one that never replies.
            self._writer.write(message, timeout_seconds=timeout_seconds)
            reply = self._reader.read(timeout_seconds=timeout_seconds)
        except TransportTimeoutError as error:
            self.timeouts += 1
            self._destroy()  # a wedged decode cannot be cancelled politely
            raise ShardTimeoutError(
                f"shard {self.shard_id} worker did not answer "
                f"{message['type']} within {timeout_seconds}s") from error
        except (BrokenPipeError, OSError) as error:
            self.crashes += 1
            self._destroy()
            raise WorkerCrashedError(
                f"shard {self.shard_id} worker pipe broke mid-request") from error
        if reply is None:
            self.crashes += 1
            code = self._process.poll() if self._process is not None else None
            self._destroy()
            raise WorkerCrashedError(
                f"shard {self.shard_id} worker died mid-request (exit code {code})")
        self.last_reply_at = self._clock()  # any reply at all is a heartbeat
        if reply.get("type") == "error":
            raise WorkerError(f"shard {self.shard_id} worker: "
                              f"{reply.get('error')}: {reply.get('message')}")
        if reply.get("type") != expected or reply.get("id") != request_id:
            self._destroy()  # reply stream out of sync: cannot trust it anymore
            raise ProtocolError(
                f"expected {expected} for request {request_id}, got "
                f"{reply.get('type')!r} for {reply.get('id')!r}")
        return reply

    def route_batch(self, questions: list[str], max_candidates: int | None = None,
                    careful: bool = False, trace=None) -> list[list[SchemaRoute]]:
        """Route one scatter wave in the worker process.

        With a ``trace``, a ``wire`` span covers the whole round-trip; the
        propagation context rides the request frame (only to trace-aware
        peers -- a protocol-1 worker never sees the field) and the worker's
        own spans come back in the reply, rebased and stitched under the
        ``wire`` span."""
        span = trace.start_span("wire", shard=self.shard_id,
                                questions=len(questions)) \
            if trace is not None else None
        try:
            with self._lock:
                self._ensure_alive_locked()
                message = {"type": "route_batch_request",
                           "questions": list(questions),
                           "max_candidates": max_candidates, "careful": careful}
                # peer_protocol is read under the lock: _ensure_alive_locked
                # may have just respawned a (differently-versioned) child.
                if span is not None \
                        and self.peer_protocol >= TRACE_PROTOCOL_VERSION:
                    message["trace"] = trace.wire_context(span)
                reply = self._request_locked(message, "route_response",
                                             self.request_timeout_seconds)
            routes = route_lists_from_payload(reply["routes"])
            if len(routes) != len(questions):
                raise ProtocolError(f"worker answered {len(routes)} route lists "
                                    f"for {len(questions)} questions")
        except BaseException as exc:
            if span is not None:
                span.end(status="error", error=f"{type(exc).__name__}: {exc}")
            raise
        if span is not None:
            span.end()
            remote_spans = reply.get("spans")
            if remote_spans:
                trace.add_remote_spans(remote_spans, anchor=span)
        return routes

    def ping(self, timeout_seconds: float | None = None) -> float:
        """Heartbeat: round-trip one ``ping`` frame, returning seconds taken."""
        started = time.monotonic()
        with self._lock:
            self._ensure_alive_locked()
            self._request_locked({"type": "ping"}, "pong",
                                 timeout_seconds or self.control_timeout_seconds)
        return time.monotonic() - started

    def notify_catalog_changed(self) -> None:
        with self._lock:
            self._ensure_alive_locked()
            self._request_locked({"type": "invalidate_cache"}, "ok",
                                 self.control_timeout_seconds)

    def set_databases(self, databases: tuple[str, ...], master) -> None:
        raise ClusterError(
            "subprocess shard workers cannot be re-projected live; rebalance "
            "the cluster checkpoint and respawn the worker instead")

    # -- introspection ---------------------------------------------------------
    def health(self, policy=None):
        """Liveness, heartbeat age, respawn velocity, and protocol parity.

        Like :meth:`stats`, this never boots a process as a side effect: a
        dead child reports ``failing`` and leaves respawning to the request
        path (or an operator).  A stale heartbeat on an *idle* worker is
        re-checked with one ping; a busy worker (request in flight, lock
        held) is working by definition, so staleness is not held against it.
        """
        from repro.obs.health import HealthPolicy, HealthReport

        policy = policy or HealthPolicy()
        report = HealthReport(component=f"shard-{self.shard_id}-procworker")
        report.details.update(pid=self.pid, respawns=self.respawns,
                              timeouts=self.timeouts, crashes=self.crashes,
                              peer_protocol=self.peer_protocol)
        if self._closed:
            report.degrade("failing", "worker proxy is closed")
            return report
        if not self.is_alive():
            report.degrade("failing", "worker process is not running")
            return report
        now = self._clock()
        recent = sum(1 for at in self._respawn_times
                     if now - at <= policy.respawn_window_seconds)
        report.details["recent_respawns"] = recent
        # The boot spawn is expected; only respawns *beyond* the first count
        # against the crash-loop budget.
        if recent - 1 > policy.max_respawns_in_window:
            report.degrade("degraded",
                           f"{recent - 1} respawns in the last "
                           f"{policy.respawn_window_seconds:g}s (crash loop)")
        if self.peer_protocol < TRACE_PROTOCOL_VERSION:
            report.degrade("degraded",
                           f"peer speaks protocol {self.peer_protocol} < "
                           f"{TRACE_PROTOCOL_VERSION} (no trace propagation)")
        age = now - self.last_reply_at if self.last_reply_at is not None else None
        report.details["heartbeat_age_seconds"] = (
            round(age, 3) if age is not None else None)
        if age is not None and age > policy.heartbeat_max_age_seconds:
            if self._lock.acquire(blocking=False):
                try:
                    self._request_locked({"type": "ping"}, "pong",
                                         self.control_timeout_seconds)
                except (ClusterError, ProtocolError):
                    report.degrade("failing",
                                   f"no reply for {age:.0f}s and the "
                                   f"health ping failed")
                finally:
                    self._lock.release()
            else:
                # Lock held -> a request is in flight right now; the child is
                # busy decoding, not wedged.
                report.details["heartbeat_check"] = "skipped: request in flight"
        return report

    def transport_stats(self) -> dict:
        return {
            "backend": "subprocess",
            "pid": self.pid,
            "alive": self.is_alive(),
            "respawns": self.respawns,
            "requests_sent": self.requests_sent,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
        }

    def _shell_stats(self) -> dict:
        """What a dead/unreachable worker reports: zeroes + transport truth."""
        return {"shard_id": self.shard_id, "databases": list(self.databases),
                "counters": {}, "qps": 0.0, "transport": self.transport_stats()}

    def stats(self) -> dict:
        """The worker's own service stats plus transport-level accounting.

        A dead worker -- including one that dies *during* the poll -- reports
        an empty shell (zero counters) instead of respawning or raising:
        ``stats()`` is the monitoring path, and it must never boot a process
        as a side effect nor crash the cluster-wide rollup exactly when a
        shard goes down.
        """
        if not self.is_alive():
            return self._shell_stats()
        with self._lock:
            if self._closed or not self.is_alive():
                return self._shell_stats()
            try:
                reply = self._request_locked({"type": "stats_request"},
                                             "stats_response",
                                             self.control_timeout_seconds)
            except ClusterError:  # crashed / timed out / errored mid-poll
                return self._shell_stats()
        stats = reply["stats"]
        stats["transport"] = self.transport_stats()
        return stats

    # -- shutdown --------------------------------------------------------------
    def close(self, shutdown_timeout_seconds: float = 10.0) -> None:
        """Graceful stop: drain, ``shutdown``, wait, then escalate."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._process is None:
                return
            if self.is_alive():
                try:
                    self._request_locked({"type": "shutdown"}, "shutdown_ack",
                                         shutdown_timeout_seconds)
                    self._process.wait(timeout=shutdown_timeout_seconds)
                except (ClusterError, ProtocolError, subprocess.TimeoutExpired,
                        OSError):
                    pass  # fall through to the hard stop
            self._destroy()

    def __enter__(self) -> "ProcShardWorker":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "alive" if self.is_alive() else "dead"
        return (f"ProcShardWorker(shard_id={self.shard_id}, pid={self.pid}, "
                f"{state}, checkpoint={str(self.checkpoint_dir)!r})")


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(worker_main())
