"""Whole-cluster checkpoints: shard manifest + per-shard router checkpoints.

A cluster checkpoint is a directory::

    cluster-ckpt/
      cluster.json     # format/version, ClusterConfig, the shard assignment
      master/          # full router checkpoint (rebalancing universe)
      shard-00/        # per-shard projected-router checkpoints
      shard-01/
      ...

Each shard directory is an ordinary :mod:`repro.serving.checkpoint` router
checkpoint of that shard's *projected* router (sub-catalog, shard beam
budget), so a shard can also be booted standalone with
``SchemaRouter.from_checkpoint``.  Loading the whole directory reproduces the
cluster identically: same assignment, same per-shard configs, bit-identical
weights, hence identical routes.
"""

from __future__ import annotations

import json
import shutil
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, replace
from pathlib import Path

from repro.cluster.partition import ShardAssignment
from repro.cluster.replica import ReplicaSet
from repro.cluster.service import ClusterConfig, ClusterRoutingService
from repro.cluster.shard import ShardWorker
from repro.core.router import SchemaRouter
from repro.serving.checkpoint import CheckpointError, load_router, save_router

CLUSTER_FORMAT = "repro-cluster-checkpoint"
CLUSTER_VERSION = 1

CLUSTER_MANIFEST_FILE = "cluster.json"
MASTER_DIR = "master"


def _shard_dir(shard_id: int) -> str:
    return f"shard-{shard_id:02d}"


def save_cluster(cluster: ClusterRoutingService, path: str | Path) -> Path:
    """Write ``cluster`` (layout + routers) to a checkpoint directory."""
    if cluster.master_router is None:
        raise CheckpointError("cannot checkpoint a cluster without its master router")
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    save_router(cluster.master_router, path / MASTER_DIR)
    shard_entries = []
    for replica_set in cluster.shards:
        shard_id = replica_set.shard_id
        directory = _shard_dir(shard_id)
        # Replicas are interchangeable projections of the same model; one
        # checkpoint per shard reproduces all of them.
        worker = replica_set.workers[0]
        if hasattr(worker, "router"):
            save_router(worker.router, path / directory)
        else:
            # Subprocess workers have no in-memory router: their projected
            # router already lives in the checkpoint directory they were
            # booted from, so saving is a directory copy.
            if worker.checkpoint_dir is None:
                raise CheckpointError(
                    f"shard {shard_id} worker has no checkpoint directory to copy")
            source = Path(worker.checkpoint_dir).resolve()
            target = (path / directory).resolve()
            if source != target:
                shutil.copytree(source, target, dirs_exist_ok=True)
        shard_entries.append({
            "shard_id": shard_id,
            "databases": list(replica_set.databases),
            "dir": directory,
        })
    manifest = {
        "format": CLUSTER_FORMAT,
        "version": CLUSTER_VERSION,
        "config": asdict(cluster.config),
        "assignment": cluster.assignment.to_payload(),
        "catalog_version": cluster.catalog_version,
        "shards": shard_entries,
    }
    (path / CLUSTER_MANIFEST_FILE).write_text(json.dumps(manifest, indent=2,
                                                         sort_keys=True))
    return path


def load_cluster_manifest(path: str | Path) -> dict:
    """Read and validate the cluster manifest of a checkpoint directory."""
    manifest_path = Path(path) / CLUSTER_MANIFEST_FILE
    if not manifest_path.is_file():
        raise CheckpointError(f"no {CLUSTER_MANIFEST_FILE} in {Path(path)!s}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as error:
        raise CheckpointError(f"corrupt cluster manifest in {Path(path)!s}: "
                              f"{error}") from error
    if manifest.get("format") != CLUSTER_FORMAT:
        raise CheckpointError(f"not a cluster checkpoint: {manifest.get('format')!r}")
    if manifest.get("version") != CLUSTER_VERSION:
        raise CheckpointError(
            f"unsupported cluster checkpoint version {manifest.get('version')!r}"
            f" (this build reads version {CLUSTER_VERSION})"
        )
    return manifest


def _spawn_proc_shards(path: Path, entries: list[dict], config: ClusterConfig,
                       master: SchemaRouter) -> list[ReplicaSet]:
    """Boot every subprocess replica of every shard, concurrently.

    Each replica is its own ``repro.cluster.procworker`` process, booted from
    the shard directory and driven over the wire protocol; the shard
    checkpoint already carries the projected sub-catalog and beam budget, so
    only serving knobs travel on the command line.  Spawning is fanned out on
    a thread pool -- each child loads weights and handshakes on its own core,
    so an N-worker cluster boots in ~one worker's time, not N.  On *any*
    failure (spawn, handshake, manifest mismatch) every already-spawned
    worker is closed: a failed load must not leak orphan processes.
    """
    from repro.cluster.procworker import ProcShardWorker

    jobs = [entry for entry in entries for _ in range(config.replicas)]

    from repro.cluster.transport import PROTOCOL_VERSION, TRACE_PROTOCOL_VERSION

    def boot(entry: dict) -> "ProcShardWorker":
        return ProcShardWorker(
            entry["shard_id"], path / entry["dir"],
            escalation_num_beams=config.escalation_beams_for(master),
            enable_cache=config.enable_cache,
            cache_size=config.cache_size,
            cache_ttl_seconds=config.cache_ttl_seconds,
            request_timeout_seconds=config.shard_timeout_seconds,
            pipeline=config.pipelined_transport,
            # The serial twin also speaks the old wire format: capping the
            # handshake at protocol 2 keeps its payloads hex-float JSON, so
            # pipelined_transport=False is a faithful pre-multiplexing
            # baseline (and an emulation of old peers), not just a gate.
            protocol_cap=PROTOCOL_VERSION if config.pipelined_transport
            else TRACE_PROTOCOL_VERSION,
        )

    spawned: list[ProcShardWorker] = []
    failure: BaseException | None = None
    with ThreadPoolExecutor(max_workers=min(len(jobs), 8),
                            thread_name_prefix="repro-cluster-spawn") as pool:
        for future in [pool.submit(boot, entry) for entry in jobs]:
            try:
                spawned.append(future.result())
            except BaseException as error:  # noqa: BLE001 - cleanup then re-raise
                if failure is None:
                    failure = error
    try:
        if failure is not None:
            raise failure
        for worker, entry in zip(spawned, jobs):
            if sorted(worker.databases) != sorted(entry["databases"]):
                raise CheckpointError(
                    f"shard {entry['shard_id']} worker announced "
                    f"{sorted(worker.databases)} but the manifest assigns "
                    f"{entry['databases']}"
                )
    except BaseException:
        for worker in spawned:
            worker.close()
        raise
    replicas_of: dict[int, list[ProcShardWorker]] = {}
    for worker in spawned:
        replicas_of.setdefault(worker.shard_id, []).append(worker)
    return [
        ReplicaSet(
            entry["shard_id"], replicas_of[entry["shard_id"]],
            quarantine_seconds=config.quarantine_seconds,
            attempt_timeout_seconds=config.shard_timeout_seconds
            if config.replicas > 1 else None,
        )
        for entry in entries
    ]


def load_cluster(path: str | Path,
                 config: ClusterConfig | None = None) -> ClusterRoutingService:
    """Rebuild a :class:`ClusterRoutingService` from a checkpoint directory.

    ``config`` overrides the saved *serving* knobs (cache sizes, timeouts,
    replicas, partial gathers); everything that affects routing decisions --
    assignment, shard/escalation beam budgets, the escalation threshold --
    always comes from the checkpoint so a restarted cluster routes
    identically.
    """
    path = Path(path)
    manifest = load_cluster_manifest(path)
    saved_config = ClusterConfig(**manifest["config"])
    assignment = ShardAssignment.from_payload(manifest["assignment"])
    if config is None:
        config = saved_config
    else:
        config = replace(config,
                         strategy=saved_config.strategy,
                         shard_num_beams=saved_config.shard_num_beams,
                         shard_beam_groups=saved_config.shard_beam_groups,
                         escalation_threshold=saved_config.escalation_threshold,
                         escalation_num_beams=saved_config.escalation_num_beams,
                         # Slicing changes what each shard checkpoint contains
                         # (sliced vocab + slice.npz), so it is pinned like the
                         # beam budgets: the checkpoint decides.
                         sliced_vocabulary=saved_config.sliced_vocabulary)
    if config.num_shards != assignment.num_shards:
        config = replace(config, num_shards=assignment.num_shards)
    master = load_router(path / MASTER_DIR)
    entries = sorted(manifest["shards"], key=lambda item: item["shard_id"])
    if config.worker_backend == "subprocess":
        shards = _spawn_proc_shards(path, entries, config, master)
        if len(shards) != assignment.num_shards:
            raise CheckpointError(f"cluster manifest lists {len(shards)} shards but "
                                  f"the assignment has {assignment.num_shards}")
        return ClusterRoutingService(shards, assignment, config=config,
                                     master_router=master,
                                     catalog_version=manifest.get("catalog_version", 0))
    shards = []
    for entry in entries:
        shard_id = entry["shard_id"]
        shard_router = load_router(path / entry["dir"])
        if sorted(shard_router.graph.catalog.database_names) != sorted(entry["databases"]):
            raise CheckpointError(
                f"shard {shard_id} checkpoint serves "
                f"{shard_router.graph.catalog.database_names} but the manifest "
                f"assigns {entry['databases']}"
            )
        workers = []
        for replica_index in range(config.replicas):
            if replica_index == 0:
                router = shard_router
            else:
                # Extra replicas share the loaded model and vocabularies; each
                # gets its own router instance (own constraint/tries) so the
                # replica services stay independent.
                router = SchemaRouter(graph=shard_router.graph,
                                      config=shard_router.config)
                router.restore(shard_router.model, shard_router.source_vocabulary,
                               shard_router.target_vocabulary,
                               shard_router.training_losses)
                router.vocabulary_slice = shard_router.vocabulary_slice
            workers.append(ShardWorker(shard_id, tuple(entry["databases"]), router,
                                       serving_config=config.serving_config(),
                                       checkpoint_dir=path / entry["dir"],
                                       escalation_num_beams=config.escalation_beams_for(master)))
        shards.append(ReplicaSet(
            shard_id, workers,
            quarantine_seconds=config.quarantine_seconds,
            attempt_timeout_seconds=config.shard_timeout_seconds
            if config.replicas > 1 else None,
        ))
    if len(shards) != assignment.num_shards:
        raise CheckpointError(f"cluster manifest lists {len(shards)} shards but "
                              f"the assignment has {assignment.num_shards}")
    return ClusterRoutingService(shards, assignment, config=config,
                                 master_router=master,
                                 catalog_version=manifest.get("catalog_version", 0))
