"""Cluster-native dense wave decode: one kernel stream for the whole fleet.

The pool-based scatter path hands each shard its own ``submit_many`` call, so
an inproc fleet of K shards pays K separate decode loops (and K thread hops)
per wave.  :class:`ClusterWaveEngine` instead stacks every shard's beams into
*one* slot-dense decode: each (shard, pending-question) pair becomes a virtual
question of a single :func:`repro.nn.decoding.diverse_beam_search_batch` call
over a :class:`repro.nn.seq2seq.WaveDecodeKernel`, tagged with its shard index
so per-shard constraint masks and vocabulary slices stay exactly as they are
on the pool path.  With sliced vocabularies the kernel decodes in
calibrated-head mode: one master-width output GEMM per step, log-softmax over
the *master* vocabulary, each shard's kept columns gathered into its grid
slots -- so search prunes exactly as a master-head decode restricted to the
slice would, and finished hypotheses already carry exact master-vocabulary
scores (the pool path gets the same scores by post-hoc replay through
:meth:`SchemaRouter.rescore_hypotheses`).

The engine deliberately mirrors the per-shard ``RoutingService`` request
path around the stacked decode: the same cache consult (``variant`` keying
included), the same ``requests`` / ``cache_hits`` / ``routed`` counters, the
same within-wave dedup.  Shard services therefore report identical stats
whether a wave went through the pool or the wave engine, and a cache warmed
by one path is hit by the other.

Only homogeneous inproc fleets qualify: every shard must share the master
trunk by reference (projection guarantees this; checkpoint-booted workers
load independent weight copies and fall back to the pool path) and decode
with one beam budget.  :class:`ClusterRoutingService` builds the engine
opportunistically and keeps the pool dispatcher as the fallback.
"""

from __future__ import annotations

import threading
import time
from typing import Sequence

from repro.core.router import SchemaRoute
from repro.nn.decoding import diverse_beam_search_batch
from repro.nn.seq2seq import WaveDecodeKernel
from repro.nn.tokenizer import WordTokenizer
from repro.obs import maybe_span

#: Decode knobs that must agree across every shard of a wave: the stacked
#: grid has one (groups, slots) shape and one step budget for all rows.
_UNIFORM_FIELDS = ("num_beams", "beam_groups", "diverse_beam",
                   "diversity_penalty", "max_source_length",
                   "max_decode_length", "constrained_decoding")


class _WaveTier:
    """One decode tier (fast or careful) of every shard, stacked.

    Holds the per-shard serving objects (for caches and counters), the
    routers (for constraints, calibration, and parsing), and the
    :class:`WaveDecodeKernel` that decodes all of them at once.  Built
    against a snapshot of each service's current router; the engine rebuilds
    a tier whenever a rebalance swapped a router out from under it.
    """

    def __init__(self, services: Sequence) -> None:
        self.services = list(services)
        self.routers = [service.router for service in self.services]
        base = self.routers[0]
        for router in self.routers[1:]:
            for field in _UNIFORM_FIELDS:
                if getattr(router.config, field) != getattr(base.config, field):
                    raise ValueError(
                        f"wave decode requires uniform shard decode configs: "
                        f"{field} differs ({getattr(router.config, field)!r} "
                        f"vs {getattr(base.config, field)!r})")
            if router.source_vocabulary is not base.source_vocabulary and \
                    router.source_vocabulary.tokens() \
                    != base.source_vocabulary.tokens():
                raise ValueError("wave decode requires one shared source "
                                 "vocabulary across shards")
            if (router.target_vocabulary.bos_id != base.target_vocabulary.bos_id
                    or router.target_vocabulary.eos_id
                    != base.target_vocabulary.eos_id):
                raise ValueError("wave decode requires matching special "
                                 "token ids across shards")
        # Validates that every shard model shares the master trunk by
        # reference (raises ValueError for checkpoint-booted weight copies)
        # and that any vocabulary slices share one master head -- in which
        # case the kernel decodes in calibrated-head mode and emits exact
        # master-vocabulary scores with no post-hoc rescoring.
        self.kernel = WaveDecodeKernel(
            [router.model for router in self.routers],
            [router.vocabulary_slice for router in self.routers])
        config = base.config
        self.num_beams = config.num_beams
        if config.diverse_beam:
            self.num_groups = config.beam_groups
            self.diversity_penalty = config.diversity_penalty
        else:
            self.num_groups, self.diversity_penalty = 1, 0.0
        self.max_length = config.max_decode_length
        self.max_source_length = config.max_source_length
        self.bos_id = base.target_vocabulary.bos_id
        self.eos_id = base.target_vocabulary.eos_id
        self.pad_id = base.source_vocabulary.pad_id
        self.source_tokenizer = WordTokenizer(base.source_vocabulary)


class ClusterWaveEngine:
    """Decodes whole scatter waves through one stacked kernel stream."""

    def __init__(self, workers: Sequence) -> None:
        if not workers:
            raise ValueError("a wave engine needs at least one shard worker")
        self.workers = list(workers)
        self.has_careful_tier = all(worker.careful_service is not None
                                    for worker in self.workers)
        self._tier_lock = threading.Lock()
        self._fast: _WaveTier | None = None
        self._careful: _WaveTier | None = None
        self._stats_lock = threading.Lock()
        self._waves = 0
        self._careful_waves = 0
        self._questions = 0
        self._shard_counters = [
            {"shard_id": worker.shard_id, "steps": 0, "beam_rows": 0,
             "questions_compacted": 0}
            for worker in self.workers
        ]
        # Build tiers eagerly so an incompatible fleet (unshared trunk,
        # mismatched beam budgets) fails at construction time, where the
        # cluster service can fall back to the pool dispatcher.
        self._tier(careful=False)
        if self.has_careful_tier:
            self._tier(careful=True)

    def _tier(self, careful: bool) -> _WaveTier:
        """The requested tier, rebuilt if a rebalance swapped any router."""
        services = [(worker.careful_service if careful else worker.service)
                    for worker in self.workers]
        with self._tier_lock:
            tier = self._careful if careful else self._fast
            if tier is None or any(
                    cached is not service.router
                    for cached, service in zip(tier.routers, services)):
                tier = _WaveTier(services)
                if careful:
                    self._careful = tier
                else:
                    self._fast = tier
            return tier

    # -- request path --------------------------------------------------------
    def route_wave(self, questions: Sequence[str],
                   max_candidates: int | None = None, careful: bool = False,
                   trace=None) -> list[list[list[SchemaRoute]]]:
        """Route one wave across every shard; returns ``[shard][question]``.

        ``careful=True`` decodes through the escalation tier when every
        worker carries one (falling back to the fast tier otherwise, like
        :meth:`ShardWorker.route_batch`).  The per-shard route caches and
        metrics are consulted and updated exactly as the pool path would.
        """
        questions = list(questions)
        use_careful = careful and self.has_careful_tier
        tier = self._tier(careful=use_careful)
        started = time.monotonic()
        num_shards = len(self.workers)
        results: list[list[list[SchemaRoute] | None]] = [
            [None] * len(questions) for _ in range(num_shards)]
        # Within one wave, identical questions decode once (per shard).
        first_index: dict[str, int] = {}
        duplicate_of: list[int | None] = [None] * len(questions)
        for index, question in enumerate(questions):
            if question in first_index:
                duplicate_of[index] = first_index[question]
            else:
                first_index[question] = index
        # Per-shard cache consult, mirroring RoutingService.submit_many
        # (same counters, same cache variant keying).
        variants: list[int | None] = []
        pending_per_shard: list[list[int]] = []
        for shard, service in enumerate(tier.services):
            service.metrics.increment("requests", len(questions))
            variant = max_candidates or service.config.max_candidates
            variants.append(variant)
            pending: list[int] = []
            for index, question in enumerate(questions):
                if duplicate_of[index] is not None:
                    continue
                cached = (service.cache.get(question, variant=variant)
                          if service.cache is not None else None)
                if cached is not None:
                    service.metrics.increment("cache_hits")
                    results[shard][index] = cached
                else:
                    pending.append(index)
            pending_per_shard.append(pending)
        needed = sorted({index for pending in pending_per_shard
                         for index in pending})
        stats: dict = {}
        with maybe_span(trace, "wave_decode", shards=num_shards,
                        questions=len(questions), careful=use_careful,
                        pending=len(needed)) as span:
            # Encode each missing question once for the whole fleet: every
            # shard model shares the master encoder trunk by reference, so
            # shard 0's encoding is every shard's encoding.
            encoded_of: dict[int, object] = {}
            if needed:
                encoded_list = tier.routers[0].model.encode_numpy_batch(
                    [tier.source_tokenizer.encode_text(
                        questions[index], max_length=tier.max_source_length)
                     for index in needed],
                    pad_id=tier.pad_id)
                encoded_of = dict(zip(needed, encoded_list))
            # Stack (shard, question) pairs shard-major as virtual questions.
            virtual_encoded = []
            tags: list[int] = []
            constraints: list = []
            for shard, pending in enumerate(pending_per_shard):
                constraint = tier.routers[shard].constraint
                for index in pending:
                    virtual_encoded.append(encoded_of[index])
                    tags.append(shard)
                    constraints.append(constraint)
            hypotheses_batch: list = []
            if virtual_encoded:
                try:
                    hypotheses_batch = diverse_beam_search_batch(
                        tier.kernel, virtual_encoded, tier.bos_id, tier.eos_id,
                        num_beams=tier.num_beams, num_groups=tier.num_groups,
                        diversity_penalty=tier.diversity_penalty,
                        max_length=tier.max_length, constraint=constraints,
                        kernel="fast", stats=stats, question_tags=tags)
                except BaseException:
                    for shard, service in enumerate(tier.services):
                        service.metrics.increment(
                            "errors", len(pending_per_shard[shard]))
                    raise
            # Fallback, calibration, and parsing run per shard.  Sliced
            # shards come out of the kernel's calibrated-head decode with
            # exact master-vocabulary scores already, so rescore_hypotheses
            # only replays the (rare) greedy fallbacks; each shard's local
            # token ids are then parsed with its own sliced vocabulary.
            offset = 0
            for shard, pending in enumerate(pending_per_shard):
                rows = range(offset, offset + len(pending))
                offset += len(pending)
                router = tier.routers[shard]
                service = tier.services[shard]
                fallback_rows = [row for row in rows
                                 if not hypotheses_batch[row]]
                for row in fallback_rows:
                    hypotheses_batch[row] = router.decode_fallback(
                        virtual_encoded[row])
                if fallback_rows:
                    router.rescore_hypotheses(
                        [virtual_encoded[row] for row in fallback_rows],
                        [hypotheses_batch[row] for row in fallback_rows])
                for row, index in zip(rows, pending):
                    routes = router.combine_hypotheses(
                        hypotheses_batch[row], max_candidates=variants[shard])
                    results[shard][index] = routes
                    if service.cache is not None:
                        service.cache.put(questions[index], routes,
                                          variant=variants[shard])
                    service.metrics.increment("routed")
            if span is not None and stats:
                span.annotate(
                    steps=stats.get("steps", 0),
                    beam_rows=stats.get("beam_rows", 0),
                    questions_compacted=stats.get("questions_compacted", 0))
        for shard_results in results:
            for index, source in enumerate(duplicate_of):
                if source is not None:
                    shard_results[index] = shard_results[source]
        elapsed = time.monotonic() - started
        for service in tier.services:
            for _ in questions:
                service.metrics.observe_latency(elapsed / max(len(questions), 1))
        self._note_wave(stats, len(questions), use_careful)
        return results  # type: ignore[return-value]

    # -- introspection -------------------------------------------------------
    def _note_wave(self, stats: dict, num_questions: int, careful: bool) -> None:
        per_tag = stats.get("per_tag", {})
        with self._stats_lock:
            self._waves += 1
            if careful:
                self._careful_waves += 1
            self._questions += num_questions
            for tag, counters in per_tag.items():
                entry = self._shard_counters[tag]
                entry["steps"] += counters.get("steps", 0)
                entry["beam_rows"] += counters.get("beam_rows", 0)
                entry["questions_compacted"] += counters.get(
                    "questions_compacted", 0)

    def stats(self) -> dict:
        """Decode-volume rollup: per-shard steps / beam rows / compactions."""
        with self._stats_lock:
            shards = [dict(entry) for entry in self._shard_counters]
            return {
                "waves": self._waves,
                "careful_waves": self._careful_waves,
                "questions": self._questions,
                "steps": sum(entry["steps"] for entry in shards),
                "beam_rows": sum(entry["beam_rows"] for entry in shards),
                "questions_compacted": sum(entry["questions_compacted"]
                                           for entry in shards),
                "shards": shards,
            }
