"""Catalog-change handling: reassigning databases between live shards.

The master router defines the universe of databases the cluster *can* serve
(its trained model and vocabularies cover them); the assignment defines which
of them each shard *does* serve.  Rebalancing moves databases within that
universe without retraining:

* :meth:`ClusterRebalancer.add_database` attaches a currently-unassigned
  database (e.g. one that was detached earlier, or deliberately held back at
  cluster build time) to the least-loaded shard;
* :meth:`ClusterRebalancer.remove_database` detaches a database, so no shard
  routes questions to it any more;
* :meth:`ClusterRebalancer.move_database` relocates a database to a specific
  shard (manual hot-shard mitigation).

Every operation re-projects only the affected shard's replicas, bumps the
cluster catalog version, and invalidates only the affected shard's route
cache via ``notify_catalog_changed`` -- the other shards keep serving from
cache untouched.
"""

from __future__ import annotations

from repro.cluster.service import ClusterRoutingService


class RebalanceError(RuntimeError):
    """An invalid rebalance request (unknown database, bad shard, ...)."""


class ClusterRebalancer:
    """Applies catalog changes to a live :class:`ClusterRoutingService`."""

    def __init__(self, cluster: ClusterRoutingService) -> None:
        if cluster.master_router is None:
            raise RebalanceError("rebalancing needs the cluster's master router "
                                 "(build the cluster with from_router/load_cluster)")
        self.cluster = cluster

    # -- helpers -------------------------------------------------------------
    def _known(self, database: str) -> None:
        if database not in self.cluster.master_router.graph.catalog.database_names:
            raise RebalanceError(f"database {database!r} is outside the master "
                                 "router's catalog; retrain to add truly new data")

    def _reassign_shard(self, shard_id: int, databases: tuple[str, ...]) -> None:
        """Re-project one shard's replicas and invalidate only its cache."""
        cluster = self.cluster
        cluster.assignment = cluster.assignment.replace_shard(shard_id, databases)
        cluster.shards[shard_id].set_databases(databases, cluster.master_router)
        cluster.bump_catalog_version()

    def least_loaded_shard(self) -> int:
        """The shard with the fewest tables (ties -> lowest shard id)."""
        catalog = self.cluster.master_router.graph.catalog
        loads = []
        for shard_id, databases in enumerate(self.cluster.assignment.shards):
            loads.append((sum(catalog.database(name).num_tables for name in databases),
                          shard_id))
        return min(loads)[1]

    # -- operations ----------------------------------------------------------
    def add_database(self, database: str, shard_id: int | None = None) -> int:
        """Attach ``database`` to a shard (least-loaded unless given).

        Returns the shard id it landed on.
        """
        self._known(database)
        assigned = set(self.cluster.assignment.database_names)
        if database in assigned:
            raise RebalanceError(f"database {database!r} is already served by "
                                 f"shard {self.cluster.shard_of(database)}")
        if shard_id is None:
            shard_id = self.least_loaded_shard()
        if not 0 <= shard_id < self.cluster.num_shards:
            raise RebalanceError(f"no shard {shard_id} in a "
                                 f"{self.cluster.num_shards}-shard cluster")
        databases = self.cluster.assignment.shards[shard_id] + (database,)
        self._reassign_shard(shard_id, databases)
        return shard_id

    def remove_database(self, database: str) -> int:
        """Detach ``database`` from its shard; returns the shard id it left."""
        try:
            shard_id = self.cluster.shard_of(database)
        except KeyError as error:
            raise RebalanceError(f"database {database!r} is not currently served") from error
        databases = tuple(name for name in self.cluster.assignment.shards[shard_id]
                          if name != database)
        self._reassign_shard(shard_id, databases)
        return shard_id

    def move_database(self, database: str, shard_id: int) -> None:
        """Relocate ``database`` to ``shard_id`` (both shards re-projected)."""
        if not 0 <= shard_id < self.cluster.num_shards:
            raise RebalanceError(f"no shard {shard_id} in a "
                                 f"{self.cluster.num_shards}-shard cluster")
        try:
            source = self.cluster.shard_of(database)
        except KeyError as error:
            raise RebalanceError(f"database {database!r} is not currently served") from error
        if source == shard_id:
            return
        self.remove_database(database)
        self.add_database(database, shard_id=shard_id)
